#!/usr/bin/env python3
"""Collaborative analytics: the demo paper's multi-admin scenario (§III).

Two administrators share a sales dataset.  Admin A owns ``master``;
admin B (a vendor) may only write the ``vendorX`` branch — branch-based
access control from the architecture's semantic-view layer.  Vendor edits
are reviewed via a differential query (Fig. 5) and merged row-by-row.

Run:  python examples/collaborative_analytics.py
"""

from repro import ForkBase
from repro.api.diffview import render_diff_text
from repro.errors import AccessDeniedError
from repro.security import AccessController, Permission, SecuredForkBase
from repro.table import DataTable
from repro.workloads import generate_csv


def main() -> None:
    engine = ForkBase(author="system")

    # --- Admin A loads the shared dataset --------------------------------
    csv_text = generate_csv(3000, seed=42)
    table, report = DataTable.load_csv(engine, "Dataset-1", csv_text,
                                       primary_key="id")
    print(f"admin A loaded Dataset-1: {report.describe()}")

    # --- Access control: A is admin; B can only write vendorX -------------
    acl = AccessController()
    acl.grant("adminA", Permission.ADMIN, key="Dataset-1")
    acl.grant("adminB", Permission.READ, key="Dataset-1", branch="master")
    acl.grant("adminB", Permission.WRITE, key="Dataset-1", branch="vendorX")

    admin_a = SecuredForkBase(engine, acl, "adminA")
    admin_b = SecuredForkBase(engine, acl, "adminB")

    admin_a.branch("Dataset-1", "vendorX")
    print("admin A forked branch 'vendorX' for the vendor")

    # --- The vendor works on their branch ---------------------------------
    vendor_view = DataTable(engine, "Dataset-1")
    vendor_view.update_cells("0000100", {"note": "verified priority delivery"},
                             branch="vendorX", message="fix note")
    vendor_view.upsert_rows(
        [{
            "id": "9000000", "vendor": "globex", "product": "sprocket",
            "region": "east", "quantity": "50", "price": "19.99",
            "note": "vendor-submitted row",
        }],
        branch="vendorX", message="add new sale",
    )
    print("admin B committed 2 changes on vendorX")

    # ... but cannot touch master:
    try:
        admin_b.put("Dataset-1", engine.get("Dataset-1", branch="vendorX"),
                    branch="master")
    except AccessDeniedError as denied:
        print(f"admin B blocked on master: {denied}")

    # --- Admin A reviews the differential query (Fig. 5) ------------------
    diff = vendor_view.diff("master", "vendorX")
    print("\n" + render_diff_text(diff, "Dataset-1"))

    # --- Merge after review -------------------------------------------------
    admin_a.merge("Dataset-1", from_branch="vendorX", into_branch="master",
                  message="accept vendor changes")
    merged = vendor_view.get_row("9000000", branch="master")
    print(f"\nafter merge, master has the vendor row: {merged is not None}")

    # --- Every step is in the tamper-evident history -----------------------
    print("\nversion log (newest first):")
    for fnode in engine.history("Dataset-1", branch="master", limit=4):
        mark = "merge " if fnode.is_merge() else ""
        print(f"  {mark}{fnode.uid.base32()[:16]}…  {fnode.author:8s} {fnode.message}")

    stats = engine.storage_stats()
    print(f"\nstorage after all of this: {stats.describe()}")
    print("(branching cost ~zero bytes: versions share unchanged pages)")


if __name__ == "__main__":
    main()
