#!/usr/bin/env python3
"""Quickstart: the Git-for-data workflow in ten steps.

Covers the core API verbs from the paper's Fig. 1 — Put, Get, Branch,
Diff, Merge, History, Meta — plus tamper-evidence validation, all against
an in-memory engine.

Run:  python examples/quickstart.py
"""

from repro import ForkBase
from repro.postree.merge import resolve_theirs
from repro.security import Verifier


def main() -> None:
    db = ForkBase(author="ada")

    # 1. Put: every write stamps a tamper-evident version (Base32 uid).
    info = db.put("profile", {"name": "ada", "role": "admin"}, message="initial")
    print(f"1. put -> version {info.version[:20]}…")

    # 2. Get: read the current value of a branch head.
    print(f"2. get -> {db.get_value('profile')}")

    # 3. More versions: history accumulates immutably.
    db.put("profile", {"name": "ada", "role": "admin", "team": "storage"},
           message="add team")

    # 4. Branch: fork the object — zero bytes copied.
    db.branch("profile", "experiment")
    print("4. branched 'experiment' from master")

    # 5. Diverge: edit only the experiment branch.
    db.put("profile", {"name": "ada", "role": "analyst", "team": "storage"},
           branch="experiment", message="try analyst role")

    # 6. Diff: differential query between branches (O(D log N)).
    diff = db.diff("profile", branch_a="master", branch_b="experiment")
    print(f"6. diff master..experiment -> changed keys: {sorted(diff.changed)}")

    # 7. Merge: three-way, with a conflict resolver if needed.
    db.put("profile", {"name": "ada", "role": "admin", "team": "systems"},
           branch="master", message="move team")
    merge_info = db.merge("profile", from_branch="experiment",
                          resolver=resolve_theirs, message="adopt experiment")
    print(f"7. merged -> {db.get_value('profile')}")

    # 8. History: the version derivation graph, newest first.
    print("8. history:")
    for fnode in db.history("profile"):
        kind = "merge " if fnode.is_merge() else ""
        print(f"     {kind}{fnode.uid.base32()[:16]}… {fnode.message}")

    # 9. Meta: descriptive facts about a branch head.
    meta = db.meta("profile")
    print(f"9. meta -> type={meta['type']} branches={meta['branches']}")

    # 10. Verify: recompute every hash client-side (tamper evidence).
    report = Verifier(db.store).verify_version(db.head("profile"))
    print(f"10. verify -> {report.describe()}")

    stats = db.storage_stats()
    print(f"\nstorage: {stats.describe()}")


if __name__ == "__main__":
    main()
