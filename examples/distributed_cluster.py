#!/usr/bin/env python3
"""Running the engine over the simulated distributed chunk store.

ForkBase is a distributed storage system; this example shards an engine's
chunks across six simulated storage nodes (consistent hashing, RF=2),
kills a node mid-flight, reads through failover, and re-replicates.

Run:  python examples/distributed_cluster.py
"""

from repro import ForkBase
from repro.cluster import ClusterStore
from repro.security import Verifier
from repro.table import DataTable
from repro.workloads import generate_csv


def main() -> None:
    cluster = ClusterStore(node_count=6, replication=2)
    db = ForkBase(store=cluster, author="ops")

    # Load a dataset: chunks scatter over the ring.
    table, report = DataTable.load_csv(
        db, "events", generate_csv(4000, seed=3), primary_key="id"
    )
    print(f"loaded: {report.describe()}")
    print("chunk placement per node:")
    for name, count in cluster.placement_histogram().items():
        print(f"  {name}: {count:4d} replicas")

    # Branch + edit still work identically — the engine is oblivious.
    table.branch("analysis")
    table.update_cells("0000042", {"note": "flagged for review"}, branch="analysis")
    diff = table.diff("master", "analysis")
    print(f"\nbranch diff over the cluster: {len(diff.rows)} row(s) differ")

    # Kill a node: reads fail over to the surviving replica.
    victim = "node-02"
    cluster.kill_node(victim)
    row = table.get_row("0000042", branch="analysis")
    print(f"\nkilled {victim}; read-through-failover still works: {row is not None}")
    print(f"failover reads so far: {cluster.failovers}")

    # Verify integrity with a node down — Merkle hashes don't care where
    # chunks live.
    verify = Verifier(cluster).verify_version(db.head("events", "analysis"))
    print(f"verification with {victim} down: {verify.describe()}")

    # Re-replicate onto the survivors, then check durability.
    cluster.revive_node(victim, wipe=True)  # it comes back empty
    copies = cluster.repair()
    durability = cluster.durability_check()
    print(f"\nrepair copied {copies} replicas; durability: {durability}")

    # Scale out: add a node and rebalance.
    cluster.add_node("node-06")
    moved = cluster.rebalance()
    print(f"added node-06, rebalance copied {moved} replicas")
    print("final placement:")
    for name, count in cluster.placement_histogram().items():
        print(f"  {name}: {count:4d} replicas")


if __name__ == "__main__":
    main()
