#!/usr/bin/env python3
"""Archiving massive near-duplicate versions (the Fig. 4 demo, extended).

Loads a ~350 KB CSV, then a copy differing by a single word — the exact
walkthrough from the paper ("loading the first dataset increases
338.54 KB ... loading the second increases only 0.04 KB") — and then
archives a 25-version edit chain, comparing ForkBase's physical growth
with what a naive full-copy archive would pay.

Run:  python examples/dedup_archive.py
"""

from repro import ForkBase
from repro.table import DataTable
from repro.table.csvio import parse_csv
from repro.workloads import (
    generate_csv,
    make_edit_script,
    mutate_csv_one_word,
    rows_to_csv,
)


def main() -> None:
    engine = ForkBase(author="archivist")

    # --- The paper's two-dataset walkthrough ------------------------------
    csv_1 = generate_csv(5200, seed=7)  # ≈ the paper's ~330 KB file
    csv_2 = mutate_csv_one_word(csv_1, seed=9)
    print(f"dataset CSV size: {len(csv_1) / 1024:.2f} KB")

    _, report_1 = DataTable.load_csv(engine, "Dataset-1", csv_1, primary_key="id")
    print(f"load Dataset-1: +{report_1.physical_bytes_added / 1024:.2f} KB physical")

    _, report_2 = DataTable.load_csv(engine, "Dataset-2", csv_2, primary_key="id")
    print(
        f"load Dataset-2 (one word changed): "
        f"+{report_2.physical_bytes_added / 1024:.2f} KB physical "
        f"({report_2.dedup_savings * 100:.2f}% deduplicated)"
    )

    # --- Archive a 25-version history --------------------------------------
    print("\narchiving a 25-version edit chain (5 row edits per version):")
    _, rows = parse_csv(csv_1)
    naive_bytes = 0
    versions = 25
    for step in range(versions):
        script = make_edit_script(rows, updates=5, seed=100 + step)
        rows = script.apply(rows)
        state_csv = rows_to_csv(rows)
        naive_bytes += len(state_csv)
        table, report = DataTable.load_csv(
            engine, "Archive", state_csv, primary_key="id",
            message=f"archive step {step}",
        )
        if step % 5 == 0:
            print(
                f"  v{step:02d}: +{report.physical_bytes_added / 1024:7.2f} KB "
                f"(naive full copy would be +{len(state_csv) / 1024:.2f} KB)"
            )

    forkbase_bytes = engine.storage_stats().physical_bytes
    print(f"\nForkBase total physical: {forkbase_bytes / 1024:10.2f} KB")
    print(f"Naive full-copy archive: {naive_bytes / 1024:10.2f} KB (versions only)")
    print(f"Savings factor: {naive_bytes / forkbase_bytes:.1f}x")

    # --- Any archived version is still directly addressable ----------------
    table = DataTable(engine, "Archive")
    history = engine.history("Archive")
    old = history[-1]
    print(
        f"\ntime travel: version {old.uid.base32()[:16]}… still has "
        f"{table.row_count(version=old.uid)} rows"
    )


if __name__ == "__main__":
    main()
