#!/usr/bin/env python3
"""Tamper evidence against a malicious storage provider (Fig. 6, §III-C).

The client keeps only the branch-head uids it has committed.  The storage
provider is then compromised: it flips bytes, substitutes chunk contents,
and rewrites an old version.  Every attack is caught by recomputing
Merkle hashes client-side — no trust in the store required.

Run:  python examples/tamper_audit.py
"""

from repro import ForkBase
from repro.security import TamperingStore, Verifier
from repro.store import InMemoryStore


def main() -> None:
    # The storage provider: honest backing wrapped by adversary controls.
    provider = TamperingStore(InMemoryStore())
    db = ForkBase(store=provider, author="auditor")
    verifier = Verifier(provider)

    # --- Normal operation: each Put is stamped with a Base32 version ------
    trusted_heads = []
    for round_ in range(3):
        info = db.put(
            "ledger",
            {f"txn{i:04d}": f"amount={i * 7}" for i in range(100 * (round_ + 1))},
            message=f"settlement batch {round_}",
        )
        trusted_heads.append(info.uid)
        print(f"put -> version {info.version}")

    head = trusted_heads[-1]
    print(f"\nclient records head uid: {head.base32()[:24]}…")
    print(f"initial audit: {verifier.verify_version(head).describe()}")

    # --- Attack 1: silent bit flip in a value chunk -------------------------
    fnode = db.graph.load(head)
    provider.flip_byte(fnode.value_root)
    report = verifier.verify_version(head)
    print(f"\nattack 1 (bit flip in value):      detected={not report.ok}")
    provider.heal()

    # --- Attack 2: substitute an old value for the current one --------------
    old_fnode = db.graph.load(trusted_heads[0])
    provider.substitute(fnode.value_root, old_fnode.value_root)
    report = verifier.verify_version(head)
    print(f"attack 2 (replay old content):     detected={not report.ok}")
    provider.heal()

    # --- Attack 3: rewrite history (tamper an ancestor FNode) ---------------
    provider.flip_byte(trusted_heads[0])
    report = verifier.verify_version(head)
    print(f"attack 3 (history rewrite):        detected={not report.ok}")
    provider.heal()

    # --- Attack 4: withhold a chunk ------------------------------------------
    provider.drop_chunk(fnode.value_root)
    report = verifier.verify_version(head)
    print(f"attack 4 (withhold chunk):         detected={not report.ok}")
    provider.heal()

    # --- Exhaustive sweep: flip every page, count detections -----------------
    from repro.postree.tree import PosTree

    pages = sorted(PosTree(provider, fnode.value_root).page_uids())
    detected = 0
    for page in pages:
        provider.flip_byte(page)
        if not verifier.verify_version(head).ok:
            detected += 1
        provider.heal(page)
    print(f"\nexhaustive sweep: {detected}/{len(pages)} single-page corruptions detected")

    final = verifier.verify_version(head)
    print(f"after healing: {final.describe()}")


if __name__ == "__main__":
    main()
