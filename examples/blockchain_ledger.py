#!/usr/bin/env python3
"""A tamper-evident account ledger — the blockchain use case.

The PVLDB version of ForkBase headlines blockchain state storage; this
example shows why the substrate fits: block hashes, state roots, forks,
reorgs and audits all come straight from the engine's primitives.

Run:  python examples/blockchain_ledger.py
"""

from repro.apps import Ledger
from repro.db import ForkBase
from repro.security import TamperingStore
from repro.store import InMemoryStore


def main() -> None:
    provider = TamperingStore(InMemoryStore())  # untrusted storage
    engine = ForkBase(store=provider, author="node-0")
    ledger = Ledger(engine)

    # --- Genesis -----------------------------------------------------------
    genesis = ledger.genesis({"alice": 1_000, "bob": 500, "treasury": 100_000})
    print(f"genesis block {genesis.short_hash()}…  supply={ledger.total_supply()}")

    # --- A few blocks of transfers -----------------------------------------
    for round_ in range(3):
        ledger.transfer("treasury", "alice", 250)
        ledger.transfer("alice", "bob", 100)
        block = ledger.commit_block(proposer=f"node-{round_ % 2}")
        print(
            f"block {block.height} {block.short_hash()}…  "
            f"{len(block.transactions)} txns  state={block.state_root.short()}…"
        )
    print(f"balances: {ledger.accounts()}")

    # --- A fork: two validators extend competing chains ----------------------
    ledger.fork("fork-B")
    ledger.transfer("alice", "bob", 10)
    ledger.commit_block(branch="master", proposer="node-0")
    ledger.transfer("treasury", "carol", 5_000)
    ledger.commit_block(branch="fork-B", proposer="node-1")
    print(
        f"\nfork: master@{ledger.height('master')} vs "
        f"fork-B@{ledger.height('fork-B')} (disjoint accounts)"
    )

    # Disjoint edits merge with the stock three-way merge.
    merged = ledger.merge_fork("fork-B", proposer="node-0")
    print(
        f"merged at block {merged.height} {merged.short_hash()}…  "
        f"carol={ledger.balance('carol')}  supply={ledger.total_supply()}"
    )

    # --- Historical queries: balance at any height ---------------------------
    print("\nalice's balance by height:",
          [ledger.balance("alice", height=h) for h in range(ledger.height() + 1)])

    # --- Audit an honest provider, then a malicious one ----------------------
    print(f"\naudit (honest storage): ok={ledger.audit().ok}")

    tip = ledger.chain()[-1]
    provider.flip_byte(tip.state_root)  # storage lies about current state
    print(f"audit (tampered state root): ok={ledger.audit().ok}")
    provider.heal()

    provider.flip_byte(genesis.block_hash)  # storage rewrites history
    print(f"audit (rewritten genesis):   ok={ledger.audit().ok}")
    provider.heal()

    print(f"audit (healed):              ok={ledger.audit().ok}")


if __name__ == "__main__":
    main()
