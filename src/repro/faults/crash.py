"""Deterministic crash-point injection.

Where :class:`~repro.faults.plan.FaultPlan` models a *byzantine* store
(wrong bytes, lost writes), a :class:`CrashPlan` models the honest but
mortal process: it dies — at a write, an fsync, or a rename boundary —
and recovery must reconstruct a consistent state from whatever the dead
process left on disk.

Persistence code marks its durability boundaries by calling
:func:`crashpoint` (fsync / replace boundaries) and routing file appends
through :func:`crashing_write` (write boundaries).  Outside a
:func:`crash_zone` both are free no-ops.  Inside one, every boundary is
assigned a global index and a replay stamp hashed from ``(seed, kind,
label, index)`` — the same ``(seed, op, attempt)`` hashing discipline the
chaos suite's :class:`FaultPlan` uses — and the plan's ``crash_at``-th
boundary raises :class:`~repro.errors.SimulatedCrash`.  A crash at a
write boundary first materializes a deterministic *strict prefix* of the
data (a torn write), which is exactly the damage a real kill mid-append
leaves behind.

The torture recipe: run the workload once under ``CrashPlan()`` (census
mode — nothing raises) to learn how many boundaries it crosses, then run
it once per boundary with ``crash_at=n``, reopen, and assert recovery.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import SimulatedCrash


@dataclass(frozen=True)
class CrashPlan:
    """Which durability boundary to die at.

    ``crash_at=None`` is census mode: boundaries are counted and traced
    but the process never dies.  ``kinds`` optionally restricts which
    boundary kinds are counted at all (e.g. only ``"journal-fsync"``);
    uncounted boundaries are invisible to the plan.  ``tear_writes``
    makes a crash at a write boundary leave a deterministic strict
    prefix of the data instead of nothing.
    """

    crash_at: Optional[int] = None
    seed: int = 0
    kinds: Optional[FrozenSet[str]] = None
    tear_writes: bool = True

    def counts(self, kind: str) -> bool:
        """Is this boundary kind visible to the plan?"""
        return self.kinds is None or kind in self.kinds

    def digest(self, kind: str, label: str, index: int) -> bytes:
        """The (seed, kind, label, index) replay hash for one boundary."""
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(kind.encode("utf-8"))
        hasher.update(label.encode("utf-8"))
        hasher.update(struct.pack(">q", index))
        return hasher.digest()


@dataclass(frozen=True)
class BoundaryHit:
    """One durability boundary the workload crossed."""

    index: int
    kind: str
    label: str
    stamp: str  # replay-hash prefix: equal traces ⇔ equal executions


class CrashClock:
    """Mutable per-zone state: the boundary counter and trace."""

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self.trace: List[BoundaryHit] = []
        self.crashed: Optional[BoundaryHit] = None

    @property
    def count(self) -> int:
        """How many boundaries have been crossed so far."""
        return len(self.trace)

    def register(self, kind: str, label: str) -> Tuple[int, bool]:
        """Record one boundary; return (index, should-crash-here)."""
        index = len(self.trace)
        hit = BoundaryHit(
            index, kind, label, self.plan.digest(kind, label, index).hex()[:16]
        )
        self.trace.append(hit)
        crash = self.plan.crash_at == index
        if crash:
            self.crashed = hit
        return index, crash


_ACTIVE: Optional[CrashClock] = None


@contextmanager
def crash_zone(plan: CrashPlan) -> Iterator[CrashClock]:
    """Arm ``plan`` for the duration of the block; yields the clock."""
    global _ACTIVE
    clock = CrashClock(plan)
    previous = _ACTIVE
    _ACTIVE = clock
    try:
        yield clock
    finally:
        _ACTIVE = previous


def crashpoint(kind: str, label: str = "") -> None:
    """Mark a durability boundary (fsync, rename, …).

    Raises :class:`SimulatedCrash` when the armed plan's ``crash_at``
    lands here; the boundary's side effect (the fsync, the rename) has
    then *not* happened.  No-op outside a :func:`crash_zone`.
    """
    clock = _ACTIVE
    if clock is None or not clock.plan.counts(kind):
        return
    index, crash = clock.register(kind, label)
    if crash:
        raise SimulatedCrash(index, kind, label)


def _disk_write(handle: IO[bytes], data: bytes, label: str) -> None:
    """The actual write, routed through the disk-fault seam.

    Deferred import: :mod:`repro.store.durability` sits below this module
    in the layer DAG, but importing it at module scope would close an
    import cycle through the :mod:`repro.store` package facade.
    """
    from repro.store.durability import write_bytes

    write_bytes(handle, data, label=label)


def crashing_write(handle: IO[bytes], data: bytes, kind: str = "write", label: str = "") -> None:
    """Write ``data`` to ``handle`` through a write boundary.

    A crash here tears the write: a deterministic strict prefix of
    ``data`` (derived from the boundary's replay hash) is materialized
    and flushed before :class:`SimulatedCrash` is raised — recovery code
    must cope with the partial record.  The write itself goes through
    :func:`repro.store.durability.write_bytes`, so an armed
    :class:`~repro.faults.fs.FsFaultPlan` can fail it with ENOSPC or a
    short write even when no crash plan is active.
    """
    clock = _ACTIVE
    if clock is None or not clock.plan.counts(kind):
        _disk_write(handle, data, label)
        return
    index, crash = clock.register(kind, label)
    if crash:
        if clock.plan.tear_writes and len(data) > 1:
            keep = int.from_bytes(
                clock.plan.digest(kind, label, index)[8:16], "big"
            ) % len(data)
            handle.write(data[:keep])
            handle.flush()
        raise SimulatedCrash(index, kind, label)
    _disk_write(handle, data, label)
