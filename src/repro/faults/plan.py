"""Seeded fault plans.

A :class:`FaultPlan` is a pure description of *how often* and *how* things
go wrong.  It holds no mutable state: every decision is derived by hashing
``(seed, op kind, uid, attempt index)``, so two stores driven by the same
plan over the same workload fail in exactly the same places — the property
the chaos suite's replay assertion depends on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.chunk import Uid

_SCALE = float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Fault rates for one simulated component, reproducible from a seed.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    operation attempt:

    - ``corrupt_read_rate`` — a read returns the stored payload with one
      byte flipped (silent bit rot on the wire; the claimed uid is kept).
    - ``drop_put_rate`` — a put is acknowledged but never materialized
      (lost write).
    - ``torn_put_rate`` — a put materializes a truncated payload under the
      original uid (torn write: persistent corruption scrub must find).
    - ``transient_error_rate`` — the operation raises a transient error;
      an immediate retry re-draws and may succeed.
    - ``latency_ms`` — simulated service time accumulated per operation
      (never slept).
    """

    seed: int = 0
    corrupt_read_rate: float = 0.0
    drop_put_rate: float = 0.0
    torn_put_rate: float = 0.0
    transient_error_rate: float = 0.0
    latency_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "corrupt_read_rate",
            "drop_put_rate",
            "torn_put_rate",
            "transient_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    # -- deterministic draws -------------------------------------------------

    def _digest(self, kind: str, uid: Uid, attempt: int) -> bytes:
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(kind.encode("utf-8"))
        hasher.update(uid.digest)
        hasher.update(struct.pack(">q", attempt))
        return hasher.digest()

    def draw(self, kind: str, uid: Uid, attempt: int) -> float:
        """Uniform value in ``[0, 1)`` for one (kind, uid, attempt) event."""
        digest = self._digest(kind, uid, attempt)
        return int.from_bytes(digest[:8], "big") / _SCALE

    def corrupt_read(self, uid: Uid, attempt: int) -> bool:
        """Should this read attempt return flipped bytes?"""
        return self.draw("corrupt-read", uid, attempt) < self.corrupt_read_rate

    def drop_put(self, uid: Uid, attempt: int) -> bool:
        """Should this put be silently lost?"""
        return self.draw("drop-put", uid, attempt) < self.drop_put_rate

    def torn_put(self, uid: Uid, attempt: int) -> bool:
        """Should this put materialize a truncated payload?"""
        return self.draw("torn-put", uid, attempt) < self.torn_put_rate

    def transient_error(self, kind: str, uid: Uid, attempt: int) -> bool:
        """Should this attempt fail transiently?"""
        return (
            self.draw(f"transient-{kind}", uid, attempt) < self.transient_error_rate
        )

    def mutate(self, data: bytes, uid: Uid, attempt: int) -> bytes:
        """Deterministically flip one byte of ``data`` (never a no-op)."""
        digest = self._digest("mutation", uid, attempt)
        if not data:
            return b"\x01"
        corrupted = bytearray(data)
        offset = int.from_bytes(digest[8:16], "big") % len(corrupted)
        flip = digest[16] | 0x01  # never XOR with 0
        corrupted[offset] ^= flip
        return bytes(corrupted)

    def tear(self, data: bytes, uid: Uid, attempt: int) -> bytes:
        """Deterministically truncate ``data`` to a strict prefix."""
        digest = self._digest("tear", uid, attempt)
        if len(data) <= 1:
            return b""
        keep = int.from_bytes(digest[8:16], "big") % len(data)
        return data[:keep]

    def scoped(self, label: str) -> "FaultPlan":
        """Same rates, seed re-derived from ``label``.

        Give each simulated component (e.g. each cluster node) its own
        scope so faults decorrelate across replicas — otherwise every
        replica of a chunk fails identically and replication is useless.
        Scoping is deterministic: the same (seed, label) always yields the
        same sub-plan.
        """
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(b"scope:")
        hasher.update(label.encode("utf-8"))
        derived = int.from_bytes(hasher.digest()[:8], "big") - (1 << 63)
        return dataclasses.replace(self, seed=derived)

    # -- workload-level randomness -------------------------------------------

    def rng(self, label: str) -> random.Random:
        """A named RNG stream derived from the seed (for workload shaping)."""
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(b"rng:")
        hasher.update(label.encode("utf-8"))
        return random.Random(int.from_bytes(hasher.digest()[:8], "big"))

    def flap_schedule(
        self,
        node_names: Iterable[str],
        flaps: int,
        horizon: int,
        down_for: Optional[Tuple[int, int]] = None,
    ) -> List[Tuple[int, str, int]]:
        """Deterministic node-flap events: ``(op_index, node, down_ops)``.

        ``flaps`` events are scattered over ``[0, horizon)``; each takes a
        node down for a duration drawn from ``down_for`` (defaults to
        5–15 % of the horizon).  Sorted by op index.
        """
        rng = self.rng("flaps")
        names = sorted(node_names)
        if not names or flaps < 1 or horizon < 1:
            return []
        low, high = down_for or (max(1, horizon // 20), max(2, horizon // 7))
        events = [
            (rng.randrange(horizon), rng.choice(names), rng.randint(low, high))
            for _ in range(flaps)
        ]
        return sorted(events)
