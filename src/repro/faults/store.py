"""A ChunkStore wrapper that injects faults from a :class:`FaultPlan`.

``FaultyStore`` sits between a component and its honest backing store and
misbehaves exactly as the plan dictates: reads come back bit-flipped, puts
are silently dropped or torn, operations fail transiently, and every call
accrues simulated latency.  Fault decisions are keyed by ``(op kind, uid,
attempt number)`` so the Nth access to a chunk always behaves the same —
replays are exact, and retried operations legitimately re-draw.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Type

from repro.chunk import Chunk, Uid
from repro.errors import TransientStoreError
from repro.faults.plan import FaultPlan
from repro.store.base import ChunkStore


class FaultyStore(ChunkStore):
    """Applies a seeded :class:`FaultPlan` to every store operation."""

    def __init__(
        self,
        backing: ChunkStore,
        plan: FaultPlan,
        transient_error: Type[Exception] = TransientStoreError,
        name: str = "",
    ) -> None:
        super().__init__(verify_reads=False)
        self.backing = backing
        # A named store gets its own fault stream so that replicas of the
        # same chunk on different nodes do not fail in lockstep.
        self.plan = plan.scoped(name) if name else plan
        self.transient_error = transient_error
        self.name = name
        self._attempts: Dict[Tuple[str, Uid], int] = {}
        self.injected_corrupt_reads = 0
        self.injected_dropped_puts = 0
        self.injected_torn_puts = 0
        self.injected_transient_errors = 0
        self.simulated_ms = 0.0

    def _attempt(self, kind: str, uid: Uid) -> int:
        """Next attempt index for this (kind, uid) pair."""
        key = (kind, uid)
        index = self._attempts.get(key, 0)
        self._attempts[key] = index + 1
        return index

    def _maybe_transient(self, kind: str, uid: Uid, attempt: int) -> None:
        self.simulated_ms += self.plan.latency_ms
        if self.plan.transient_error(kind, uid, attempt):
            self.injected_transient_errors += 1
            raise self.transient_error(
                f"injected transient fault on {kind} {uid.short()}"
                + (f" at {self.name}" if self.name else "")
            )

    # -- ChunkStore primitives ------------------------------------------------

    def _insert(self, chunk: Chunk) -> None:
        attempt = self._attempt("put", chunk.uid)
        self._maybe_transient("put", chunk.uid, attempt)
        if self.plan.drop_put(chunk.uid, attempt):
            # Acknowledged but never materialized: a lost write.
            self.injected_dropped_puts += 1
            return
        if self.plan.torn_put(chunk.uid, attempt):
            # Materialized truncated under the original uid: persistent
            # corruption only a scrub (or verified read) can catch.
            self.injected_torn_puts += 1
            torn = self.plan.tear(chunk.data, chunk.uid, attempt)
            self.backing.put(Chunk(chunk.type, torn, uid=chunk.uid))
            return
        self.backing.put(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        attempt = self._attempt("get", uid)
        self._maybe_transient("get", uid, attempt)
        chunk = self.backing.get_maybe(uid)
        if chunk is None:
            return None
        if self.plan.corrupt_read(uid, attempt):
            # Bit rot on the wire: wrong bytes under the claimed uid.
            self.injected_corrupt_reads += 1
            return Chunk(chunk.type, self.plan.mutate(chunk.data, uid, attempt), uid=uid)
        return chunk

    def _contains(self, uid: Uid) -> bool:
        return self.backing.has(uid)

    def _ids(self) -> Iterator[Uid]:
        return iter(self.backing.ids())

    def _delete(self, uid: Uid) -> bool:
        return self.backing.delete(uid)

    def __len__(self) -> int:
        return len(self.backing)

    def physical_size(self) -> int:
        return self.backing.physical_size()

    def close(self) -> None:
        self.backing.close()
