"""Bounded retry with exponential backoff.

Clock and sleep are injectable so tests run instantly and deterministically;
production callers get ``time.sleep`` by default.  Retries trigger only on
:class:`~repro.errors.TransientError` subtypes — corruption and missing
chunks are *not* transient and must surface to the healing layers instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import TransientError

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How many times to retry a transient failure, and how to wait.

    ``attempts`` counts total tries (so ``attempts=1`` means no retry).
    Delays grow as ``base_delay * multiplier**n`` capped at ``max_delay``.
    ``sleep`` is the waiting primitive — inject a no-op for instant tests.
    """

    attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    #: Operations retried so far (diagnostic; shared across calls).
    retries: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    @classmethod
    def instant(cls, attempts: int = 4) -> "RetryPolicy":
        """A policy that never actually sleeps (for tests and simulation)."""
        return cls(attempts=attempts, sleep=lambda _seconds: None)

    def delays(self) -> Iterator[float]:
        """The backoff delay before each retry, in order."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
    ) -> T:
        """Invoke ``fn``, retrying transient failures with backoff.

        The last failure is re-raised unchanged once attempts run out, so
        callers keep their typed error (e.g. ``NodeDownError``).
        """
        last: Optional[BaseException] = None
        for index, delay in enumerate(list(self.delays()) + [None]):
            try:
                return fn()
            except retry_on as error:  # type: ignore[misc]
                last = error
                if delay is None:
                    break
                self.retries += 1
                self.sleep(delay)
        assert last is not None
        raise last


def with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
) -> T:
    """Functional form of :meth:`RetryPolicy.call` (default policy if None)."""
    return (policy or RetryPolicy()).call(fn, retry_on=retry_on)
