"""Bounded retry with exponential backoff and deterministic seeded jitter.

Clock and sleep are injectable so tests run instantly and deterministically;
production callers get ``time.sleep`` by default.  Retries trigger only on
:class:`~repro.errors.TransientError` subtypes — corruption and missing
chunks are *not* transient and must surface to the healing layers instead.

Jitter exists because pure exponential backoff keeps concurrent clients in
lockstep: every client that failed at t=0 retries at exactly t=base,
t=base*m, ... — a transient fault amplifies into a synchronized retry
storm.  Each policy therefore derates every delay by a deterministic
factor drawn from ``(seed, attempt index)``, so two clients with different
seeds spread out while any single schedule stays exactly replayable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, Tuple, Type, TypeVar

from repro.errors import DeadlineExceededError, TransientError

T = TypeVar("T")


class DeadlineLike(Protocol):
    """What :meth:`RetryPolicy.call` needs from a deadline: a remaining
    budget, in whatever unit the caller's clock ticks in.  The concrete
    :class:`repro.cluster.latency.Deadline` lives two layers up; this
    structural type keeps the retry helper below it in the layer DAG."""

    def remaining(self) -> int: ...  # pragma: no cover - protocol

_SCALE = float(1 << 64)


@dataclass
class RetryPolicy:
    """How many times to retry a transient failure, and how to wait.

    ``attempts`` counts total tries (so ``attempts=1`` means no retry).
    Delays grow as ``base_delay * multiplier**n`` capped at ``max_delay``,
    then shrink by up to ``jitter`` (a fraction in ``[0, 1]``) using a
    draw derived from ``(seed, attempt index)`` — give each concurrent
    client its own ``seed`` to decorrelate their retry schedules.
    ``sleep`` is the waiting primitive — inject a no-op for instant tests.
    """

    attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.1
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    #: Operations retried so far (diagnostic; shared across calls).
    retries: int = 0
    #: Retry loops cut short because a deadline budget ran out.
    deadline_stops: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def instant(cls, attempts: int = 4, seed: int = 0) -> "RetryPolicy":
        """A policy that never actually sleeps (for tests and simulation)."""
        return cls(attempts=attempts, seed=seed, sleep=lambda _seconds: None)

    def _jitter_unit(self, index: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one delay slot."""
        digest = hashlib.sha256(struct.pack(">qq", self.seed, index)).digest()
        return int.from_bytes(digest[:8], "big") / _SCALE

    def delays(self) -> Iterator[float]:
        """The backoff delay before each retry, in order (jitter applied)."""
        delay = self.base_delay
        for index in range(self.attempts - 1):
            capped = min(delay, self.max_delay)
            if self.jitter:
                capped *= 1.0 - self.jitter * self._jitter_unit(index)
            yield capped
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
        deadline: Optional[DeadlineLike] = None,
    ) -> T:
        """Invoke ``fn``, retrying transient failures with backoff.

        The last failure is re-raised unchanged once attempts run out, so
        callers keep their typed error (e.g. ``NodeDownError``).

        With a ``deadline``, the retry loop stops early — raising
        :class:`~repro.errors.DeadlineExceededError` — when the budget is
        already spent, or when the remaining budget cannot cover another
        attempt as expensive as the one that just failed.  An exhausted
        budget is not a reason to hang on retries that cannot finish.
        """
        last: Optional[BaseException] = None
        for index, delay in enumerate(list(self.delays()) + [None]):
            before = deadline.remaining() if deadline is not None else None
            if before is not None and before <= 0:
                self.deadline_stops += 1
                raise DeadlineExceededError(
                    f"deadline spent before attempt {index + 1}/{self.attempts}"
                ) from last
            try:
                return fn()
            except retry_on as error:  # type: ignore[misc]
                last = error
                if delay is None:
                    break
                if deadline is not None and before is not None:
                    spent = before - deadline.remaining()
                    if deadline.remaining() <= max(spent, 0):
                        self.deadline_stops += 1
                        raise DeadlineExceededError(
                            f"{deadline.remaining()} ticks left cannot cover "
                            f"another ~{spent}-tick attempt "
                            f"({index + 1}/{self.attempts} tried)"
                        ) from error
                self.retries += 1
                self.sleep(delay)
        assert last is not None
        raise last


def with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
    seed: Optional[int] = None,
) -> T:
    """Functional form of :meth:`RetryPolicy.call` (default policy if None).

    ``seed`` re-seeds the policy's jitter stream for this caller, so
    concurrent clients passing distinct seeds (a worker id, a request id)
    do not retry in lockstep.
    """
    policy = policy or RetryPolicy()
    if seed is not None:
        policy = dataclasses.replace(policy, seed=seed)
    return policy.call(fn, retry_on=retry_on)
