"""Deterministic network fault model: partitions, loss, delay, duplication.

The cluster layer simulates distribution in-process, so the "network"
between a client and a storage node (or between two nodes) is just a
function call.  :class:`PartitionedTransport` turns that call into a
message send that can fail the way real networks fail — partitioned,
dropped, delayed past the sender's deadline, or duplicated — with every
fault drawn from a :class:`NetworkPlan` by hashing ``(seed, fault kind,
src, dst, op kind, uid, attempt)``: the same discipline as
:class:`~repro.faults.plan.FaultPlan`, so a workload replayed against the
same plan sees byte-identical network weather.

Time is a logical tick counter (every send is a tick; tests may also call
:meth:`PartitionedTransport.tick`), never the wall clock: delayed messages
are queued with a due tick and pumped deterministically, which keeps the
whole model FB-DETERM-clean and replayable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import struct
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.chunk import Uid
from repro.errors import (
    ForkBaseError,
    MessageDroppedError,
    NetworkPartitionedError,
    NetworkTimeoutError,
)

T = TypeVar("T")

_SCALE = float(1 << 64)

#: A partition layout: each endpoint name maps to the index of its side.
Groups = Tuple[FrozenSet[str], ...]


@dataclass(frozen=True)
class NetworkPlan:
    """Fault rates for the simulated network, reproducible from a seed.

    Rates are independent probabilities per message attempt:

    - ``drop_rate`` — the message vanishes; the sender gets a timeout.
    - ``delay_rate`` — the message is delivered late (after a tick count
      drawn from ``delay_ticks``); the sender still times out, so the
      effect is a *stale* delivery racing the sender's retry.
    - ``dup_rate`` — the message is applied twice (retransmission after a
      lost ack).  Content-addressed puts make duplication harmless; the
      counter proves it happened.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    dup_rate: float = 0.0
    delay_ticks: Tuple[int, int] = (1, 8)
    #: Range of per-endpoint slowdown factors :meth:`slow_schedule` draws
    #: from (graded slowness — the gray-failure dimension).
    slow_factors: Tuple[int, int] = (8, 128)

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "dup_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        low, high = self.delay_ticks
        if not 1 <= low <= high:
            raise ValueError(f"delay_ticks must satisfy 1 <= low <= high, got {self.delay_ticks}")
        low, high = self.slow_factors
        if not 1 <= low <= high:
            raise ValueError(f"slow_factors must satisfy 1 <= low <= high, got {self.slow_factors}")

    # -- deterministic draws -------------------------------------------------

    def _digest(self, fault: str, src: str, dst: str, op: str, uid: Uid, attempt: int) -> bytes:
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(fault.encode("utf-8"))
        hasher.update(src.encode("utf-8"))
        hasher.update(b"->")
        hasher.update(dst.encode("utf-8"))
        hasher.update(op.encode("utf-8"))
        hasher.update(uid.digest)
        hasher.update(struct.pack(">q", attempt))
        return hasher.digest()

    def draw(self, fault: str, src: str, dst: str, op: str, uid: Uid, attempt: int) -> float:
        """Uniform value in ``[0, 1)`` for one message event."""
        digest = self._digest(fault, src, dst, op, uid, attempt)
        return int.from_bytes(digest[:8], "big") / _SCALE

    def drop(self, src: str, dst: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this message be silently lost?"""
        return self.draw("drop", src, dst, op, uid, attempt) < self.drop_rate

    def delay(self, src: str, dst: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this message arrive after the sender's deadline?"""
        return self.draw("delay", src, dst, op, uid, attempt) < self.delay_rate

    def duplicate(self, src: str, dst: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this message be applied twice?"""
        return self.draw("dup", src, dst, op, uid, attempt) < self.dup_rate

    def delay_for(self, src: str, dst: str, op: str, uid: Uid, attempt: int) -> int:
        """How many ticks a delayed message stays in flight."""
        digest = self._digest("delay-ticks", src, dst, op, uid, attempt)
        low, high = self.delay_ticks
        return low + int.from_bytes(digest[8:16], "big") % (high - low + 1)

    def service_ticks(
        self, src: str, dst: str, op: str, uid: Uid, attempt: int, factor: int
    ) -> int:
        """Service time, in ticks, for one message on a slowed link.

        A gray-failed endpoint does not fail messages — it *serves* them,
        roughly ``factor`` times slower than the healthy 1-tick baseline,
        with a deterministic jitter of up to +25% drawn from the same
        ``(seed, src, dst, op, uid, attempt)`` hash discipline as every
        other fault, so slow schedules replay bit-identically.
        """
        if factor <= 1:
            return 1
        digest = self._digest("slow-service", src, dst, op, uid, attempt)
        jitter = int.from_bytes(digest[8:16], "big") % max(1, factor // 4)
        return factor + jitter

    def scoped(self, label: str) -> "NetworkPlan":
        """Same rates, seed re-derived from ``label`` (per-link decorrelation)."""
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(b"net-scope:")
        hasher.update(label.encode("utf-8"))
        derived = int.from_bytes(hasher.digest()[:8], "big") - (1 << 63)
        return dataclasses.replace(self, seed=derived)

    # -- schedule generation -------------------------------------------------

    def rng(self, label: str) -> random.Random:
        """A named RNG stream derived from the seed (schedule shaping)."""
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(b"net-rng:")
        hasher.update(label.encode("utf-8"))
        return random.Random(int.from_bytes(hasher.digest()[:8], "big"))

    def partition_schedule(
        self,
        endpoints: Iterable[str],
        events: int,
        horizon: int,
    ) -> List[Tuple[int, Optional[Groups]]]:
        """Deterministic partition/heal events: ``(op_index, groups | None)``.

        ``None`` means heal; otherwise the endpoints are split into two
        non-empty sides.  Events are sorted by op index, alternate between
        split and heal (a split while split re-partitions), and the same
        ``(seed, endpoints, events, horizon)`` always yields the same
        schedule.
        """
        names = sorted(endpoints)
        if len(names) < 2 or events < 1 or horizon < 1:
            return []
        rng = self.rng("partitions")
        schedule: List[Tuple[int, Optional[Groups]]] = []
        partitioned = False
        for at in sorted(rng.randrange(horizon) for _ in range(events)):
            if partitioned and rng.random() < 0.5:
                schedule.append((at, None))
                partitioned = False
                continue
            cut = rng.randint(1, len(names) - 1)
            members = list(names)
            rng.shuffle(members)
            groups: Groups = (frozenset(members[:cut]), frozenset(members[cut:]))
            schedule.append((at, groups))
            partitioned = True
        return schedule

    def slow_schedule(
        self,
        endpoints: Iterable[str],
        events: int,
        horizon: int,
    ) -> List[Tuple[int, Optional[Dict[str, int]]]]:
        """Deterministic gray-failure events: ``(op_index, factors | None)``.

        ``None`` means every endpoint recovers to full speed; otherwise the
        dict maps one victim endpoint to its slowdown factor (drawn from
        ``slow_factors``).  Events are sorted by op index and alternate
        between slowing and recovering with the same discipline as
        :meth:`partition_schedule`; the same ``(seed, endpoints, events,
        horizon)`` always yields the same schedule.
        """
        names = sorted(endpoints)
        if not names or events < 1 or horizon < 1:
            return []
        rng = self.rng("slowness")
        low, high = self.slow_factors
        schedule: List[Tuple[int, Optional[Dict[str, int]]]] = []
        slowed = False
        for at in sorted(rng.randrange(horizon) for _ in range(events)):
            if slowed and rng.random() < 0.5:
                schedule.append((at, None))
                slowed = False
                continue
            victim = names[rng.randrange(len(names))]
            schedule.append((at, {victim: rng.randint(low, high)}))
            slowed = True
        return schedule


class PartitionedTransport:
    """The message layer between named cluster endpoints.

    Endpoints are plain strings — node names plus any number of client
    names.  A partition assigns endpoints to sides; endpoints never named
    in a partition call default to side 0 (they stay with the first
    group).  ``heal()`` reconnects everyone; messages that were delayed
    in flight still deliver on later ticks, which is exactly the stale
    packet a healed network replays.
    """

    def __init__(self, plan: Optional[NetworkPlan] = None) -> None:
        self.plan = plan if plan is not None else NetworkPlan()
        #: Logical time: advanced once per send and per explicit tick.
        self.clock = 0
        self._sides: Dict[str, int] = {}
        #: Graded slowness: endpoint name -> slowdown factor (>1).  A slow
        #: endpoint *serves* every message, just late — the gray failure a
        #: liveness probe cannot see.
        self._slow: Dict[str, int] = {}
        self._attempts: Dict[Tuple[str, str, str, Uid], int] = {}
        #: Delayed deliveries: (due tick, sequence number, thunk).
        self._in_flight: List[Tuple[int, int, Callable[[], object]]] = []
        self._sequence = 0
        self.partitions = 0
        self.heals = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.messages_duplicated = 0
        self.partition_rejections = 0
        #: Delayed deliveries whose late execution failed (dead host etc.).
        self.late_failures = 0
        self.slow_events = 0
        self.slow_recoveries = 0
        #: Messages serviced on a slowed link, and the extra ticks burned.
        self.slow_services = 0
        self.slow_ticks = 0
        #: Sends abandoned at the caller's ``timeout_ticks`` while the slow
        #: service was still in progress (delivered late, like a delay).
        self.timeout_abandons = 0

    # -- topology ------------------------------------------------------------

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network: endpoints in different groups cannot talk.

        Endpoints absent from every group implicitly join group 0.
        """
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        sides: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in sides:
                    raise ValueError(f"endpoint {name!r} appears in two groups")
                sides[name] = index
        self._sides = sides
        self.partitions += 1

    def heal(self) -> None:
        """Reconnect every endpoint (in-flight delays still deliver late)."""
        self._sides = {}
        self.heals += 1

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return bool(self._sides)

    def slow(self, endpoint: str, factor: int) -> None:
        """Gray-fail an endpoint: every message it serves takes ~``factor``
        ticks instead of 1.  ``factor=1`` restores full speed."""
        if factor < 1:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        if factor == 1:
            self._slow.pop(endpoint, None)
        else:
            self._slow[endpoint] = factor
            self.slow_events += 1

    def recover(self, endpoint: Optional[str] = None) -> None:
        """Restore one endpoint (or, with no argument, every endpoint)."""
        if endpoint is None:
            if self._slow:
                self.slow_recoveries += 1
            self._slow.clear()
        elif self._slow.pop(endpoint, None) is not None:
            self.slow_recoveries += 1

    def slow_factor(self, endpoint: str) -> int:
        """Current slowdown factor for an endpoint (1 = healthy)."""
        return self._slow.get(endpoint, 1)

    def slowed(self) -> Dict[str, int]:
        """Currently slowed endpoints and their factors."""
        return dict(self._slow)

    def side_of(self, endpoint: str) -> int:
        """Which side of the current partition an endpoint sits on."""
        return self._sides.get(endpoint, 0)

    def reachable(self, src: str, dst: str) -> bool:
        """Can ``src`` currently exchange messages with ``dst``?"""
        return self.side_of(src) == self.side_of(dst)

    # -- message delivery ----------------------------------------------------

    def _next_attempt(self, src: str, dst: str, op: str, uid: Uid) -> int:
        key = (src, dst, op, uid)
        index = self._attempts.get(key, 0)
        self._attempts[key] = index + 1
        return index

    def _pump(self) -> None:
        """Deliver every in-flight message whose due tick has passed."""
        if not self._in_flight:
            return
        due = [entry for entry in self._in_flight if entry[0] <= self.clock]
        if not due:
            return
        self._in_flight = [entry for entry in self._in_flight if entry[0] > self.clock]
        for _, _, thunk in sorted(due):
            try:
                thunk()
            except ForkBaseError:
                # A late packet hitting a dead or partitioned host: the
                # original sender timed out long ago, nobody is listening
                # for this failure — count it and move on.  Only taxonomy
                # failures are expected here; anything else (TypeError &
                # co.) is a harness bug and must propagate.
                self.late_failures += 1

    def tick(self, ticks: int = 1) -> None:
        """Advance logical time and deliver due in-flight messages."""
        for _ in range(ticks):
            self.clock += 1
            self._pump()

    def send(
        self,
        src: str,
        dst: str,
        op: str,
        uid: Uid,
        fn: Callable[[], T],
        timeout_ticks: Optional[int] = None,
    ) -> T:
        """One request/response exchange from ``src`` to ``dst``.

        Applies, in order: partition check, drop, delay (executes ``fn``
        on a later tick but raises a timeout now), graded slowness
        (service ticks charged to the logical clock), duplication (``fn``
        applied twice), then normal delivery.  All faults raise
        :class:`~repro.errors.TransientError` subtypes so the cluster's
        retry/hint machinery handles them like any flaky component.

        ``timeout_ticks`` is the sender's remaining patience (deadline
        propagation): when a slowed service would run past it, the sender
        waits exactly that long, gives up with a timeout, and the service
        still completes on its due tick as a stale late delivery — the
        client stopped waiting, the server never knew.
        """
        self.clock += 1
        self._pump()
        self.messages_sent += 1
        if not self.reachable(src, dst):
            self.partition_rejections += 1
            raise NetworkPartitionedError(
                f"{src} cannot reach {dst}: partition "
                f"(side {self.side_of(src)} vs {self.side_of(dst)})"
            )
        attempt = self._next_attempt(src, dst, op, uid)
        if self.plan.drop(src, dst, op, uid, attempt):
            self.messages_dropped += 1
            raise MessageDroppedError(f"{op} {src}->{dst} lost in transit")
        if self.plan.delay(src, dst, op, uid, attempt):
            self.messages_delayed += 1
            self._sequence += 1
            due = self.clock + self.plan.delay_for(src, dst, op, uid, attempt)
            self._in_flight.append((due, self._sequence, fn))
            raise NetworkTimeoutError(
                f"{op} {src}->{dst} delayed past deadline (due tick {due})"
            )
        factor = max(self.slow_factor(src), self.slow_factor(dst))
        if factor > 1:
            extra = self.plan.service_ticks(src, dst, op, uid, attempt, factor) - 1
            self.slow_services += 1
            self.slow_ticks += extra
            if timeout_ticks is not None and extra + 1 > timeout_ticks:
                # The sender's budget runs out mid-service: it waits out
                # the rest of its patience, times out, and the response
                # lands later as a stale delivery (nobody is listening).
                self.timeout_abandons += 1
                self._sequence += 1
                self._in_flight.append((self.clock + extra, self._sequence, fn))
                self.clock += max(timeout_ticks - 1, 0)
                raise NetworkTimeoutError(
                    f"{op} {src}->{dst} abandoned after {timeout_ticks} ticks "
                    f"(gray service needed {extra + 1})"
                )
            self.clock += extra
            self._pump()
        if self.plan.duplicate(src, dst, op, uid, attempt):
            self.messages_duplicated += 1
            result = fn()
            fn()
            return result
        return fn()

    # -- diagnostics ---------------------------------------------------------

    def in_flight(self) -> int:
        """Messages currently queued for late delivery."""
        return len(self._in_flight)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (torture-suite assertions)."""
        return {
            "clock": self.clock,
            "sent": self.messages_sent,
            "dropped": self.messages_dropped,
            "delayed": self.messages_delayed,
            "duplicated": self.messages_duplicated,
            "partition_rejections": self.partition_rejections,
            "late_failures": self.late_failures,
            "in_flight": len(self._in_flight),
            "partitions": self.partitions,
            "heals": self.heals,
            "slow_events": self.slow_events,
            "slow_recoveries": self.slow_recoveries,
            "slow_services": self.slow_services,
            "slow_ticks": self.slow_ticks,
            "timeout_abandons": self.timeout_abandons,
            "slowed_endpoints": len(self._slow),
        }

    def __repr__(self) -> str:
        state = "partitioned" if self.partitioned else "connected"
        return f"PartitionedTransport({state}, tick={self.clock}, sent={self.messages_sent})"


def apply_schedule_event(
    transport: PartitionedTransport, groups: Optional[Sequence[Iterable[str]]]
) -> None:
    """Apply one :meth:`NetworkPlan.partition_schedule` event."""
    if groups is None:
        transport.heal()
    else:
        transport.partition(*groups)


def apply_slow_event(
    transport: PartitionedTransport, factors: Optional[Dict[str, int]]
) -> None:
    """Apply one :meth:`NetworkPlan.slow_schedule` event.

    ``None`` recovers every endpoint; a dict slows (or re-grades) the
    named endpoints while leaving everyone else as they were.
    """
    if factors is None:
        transport.recover()
    else:
        for endpoint, factor in sorted(factors.items()):
            transport.slow(endpoint, factor)
