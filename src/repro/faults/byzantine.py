"""Byzantine-node fault injection (the fifth fault dimension).

The other planes model *honest* failures: :class:`~repro.faults.plan.FaultPlan`
rots bytes, :class:`~repro.faults.crash.CrashPlan` kills processes,
:class:`~repro.faults.network.NetworkPlan` cuts links, and
:class:`~repro.faults.fs.FsFaultPlan` breaks the disk.  A byzantine node is
different in kind: it is *up*, *responsive*, and **lying** — the untrusted
storage provider of the paper's threat model (§III-C), scaled from one
local store (:class:`~repro.security.tamper.TamperingStore`) to a cluster
replica that other machinery trusts for reads, write acks, anti-entropy
digests, and hint replays.

A :class:`ByzantinePlan` is a pure description of *how* a node lies.  Every
decision is derived by hashing ``(seed, node, behavior, op, uid, attempt)``
— the same discipline as the other planes, so a byzantine run replays
bit-identically from its seed.  :class:`ByzantineStore` applies the plan to
one node's backing store; :func:`make_byzantine` installs it on a cluster
:class:`~repro.cluster.node.StorageNode` in place.

Behaviors (each with its own rate):

- **flip** — serve well-formed-but-wrong bytes under the claimed uid;
- **substitute** — serve another held chunk's content under the claimed
  uid (the replay attack);
- **withhold** — claim not-found for a chunk the node holds;
- **fake ack** — acknowledge a write without storing anything;
- **conceal / forge index** — misreport holdings to anti-entropy: hide
  held uids (fabricated divergence, wasted transfers) or claim fake-acked
  uids (masked divergence behind agreeing digests);
- **corrupt hint** — replay a hinted-handoff payload with flipped bytes
  (see :func:`corrupt_queued_hints`).

The defense stack lives in :mod:`repro.cluster.accountability` and the
hardened :mod:`repro.cluster.antientropy`; this module is only the attack.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.chunk import Chunk, Uid
from repro.store.base import ChunkStore

_SCALE = float(1 << 64)

_RATE_FIELDS = (
    "flip_rate",
    "substitute_rate",
    "withhold_rate",
    "fake_ack_rate",
    "conceal_rate",
    "hint_corrupt_rate",
)


def flip_at(data: bytes, offset: int, mask: int = 0xFF) -> bytes:
    """Flip one byte of ``data`` at ``offset`` (never a no-op).

    The shared corruption primitive: :class:`ByzantinePlan` derives the
    offset and mask from its replay hash, and
    :meth:`~repro.security.tamper.TamperingStore.flip_byte` passes them
    explicitly — one definition of "wrong bytes under the right uid".
    """
    if not data:
        return b"\x01"
    corrupted = bytearray(data)
    corrupted[offset % len(corrupted)] ^= (mask | 0x01) & 0xFF
    return bytes(corrupted)


@dataclass(frozen=True)
class ByzantinePlan:
    """Seeded description of how a chosen node lies, one rate per behavior.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    operation attempt; ``forge_index`` additionally makes the node claim
    fake-acked uids to anti-entropy so its digests *agree* while its
    holdings diverge (the masked-divergence forgery the spot-check audit
    exists to catch).
    """

    seed: int = 0
    flip_rate: float = 0.0
    substitute_rate: float = 0.0
    withhold_rate: float = 0.0
    fake_ack_rate: float = 0.0
    conceal_rate: float = 0.0
    hint_corrupt_rate: float = 0.0
    forge_index: bool = False

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    # -- deterministic draws -------------------------------------------------

    def _digest(
        self, node: str, behavior: str, op: str, uid: Uid, attempt: int
    ) -> bytes:
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(node.encode("utf-8"))
        hasher.update(behavior.encode("utf-8"))
        hasher.update(op.encode("utf-8"))
        hasher.update(uid.digest)
        hasher.update(struct.pack(">q", attempt))
        return hasher.digest()

    def draw(
        self, node: str, behavior: str, op: str, uid: Uid, attempt: int
    ) -> float:
        """Uniform ``[0, 1)`` for one (node, behavior, op, uid, attempt)."""
        digest = self._digest(node, behavior, op, uid, attempt)
        return int.from_bytes(digest[:8], "big") / _SCALE

    def flip(self, node: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this read serve flipped bytes under the claimed uid?"""
        return self.draw(node, "flip", op, uid, attempt) < self.flip_rate

    def substitute(self, node: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this read serve another chunk's content (replay)?"""
        return self.draw(node, "substitute", op, uid, attempt) < self.substitute_rate

    def withhold(self, node: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this read claim not-found for a held chunk?"""
        return self.draw(node, "withhold", op, uid, attempt) < self.withhold_rate

    def fake_ack(self, node: str, op: str, uid: Uid, attempt: int) -> bool:
        """Should this write be acknowledged but never stored?"""
        return self.draw(node, "fake-ack", op, uid, attempt) < self.fake_ack_rate

    def conceal(self, node: str, uid: Uid) -> bool:
        """Should this uid be hidden from the node's claimed index?"""
        return self.draw(node, "conceal", "index", uid, 0) < self.conceal_rate

    def corrupt_hint(self, node: str, uid: Uid, attempt: int) -> bool:
        """Should this queued hint payload be replayed corrupted?"""
        return (
            self.draw(node, "corrupt-hint", "hint", uid, attempt)
            < self.hint_corrupt_rate
        )

    def mutate(
        self, node: str, op: str, data: bytes, uid: Uid, attempt: int
    ) -> bytes:
        """Deterministically flip one byte of ``data`` (never a no-op)."""
        digest = self._digest(node, "mutation", op, uid, attempt)
        offset = int.from_bytes(digest[8:16], "big")
        return flip_at(data, offset, mask=digest[16])

    def pick(
        self, node: str, behavior: str, op: str, uid: Uid, attempt: int, n: int
    ) -> int:
        """A deterministic index in ``[0, n)`` (donor selection)."""
        if n < 1:
            raise ValueError("pick needs n >= 1")
        digest = self._digest(node, behavior, op, uid, attempt)
        return int.from_bytes(digest[8:16], "big") % n

    def lying(self) -> bool:
        """Does this plan misbehave at all? (All-zero plans are honest.)"""
        return self.forge_index or any(
            getattr(self, name) > 0.0 for name in _RATE_FIELDS
        )


class ByzantineStore(ChunkStore):
    """One node's store under a :class:`ByzantinePlan`'s control.

    Wraps the node's honest backing store the way
    :class:`~repro.faults.store.FaultyStore` wraps a rotting one, but the
    lies are *adversarial*: wrong bytes arrive well-formed under the
    claimed uid, withheld chunks are claimed not-found, fake-acked writes
    vanish, and :meth:`claimed_ids` misreports holdings to anti-entropy.
    Per-``(kind, uid)`` attempt counters make every draw reproducible and
    let retries land on fresh decisions, exactly like the honest planes.
    """

    def __init__(
        self, backing: ChunkStore, plan: ByzantinePlan, node: str = ""
    ) -> None:
        super().__init__(verify_reads=False)
        self.backing = backing
        self.plan = plan
        self.node = node
        self._attempts: dict[Tuple[str, Uid], int] = {}
        #: Writes acknowledged but never materialized (and, with
        #: ``forge_index``, still *claimed* to anti-entropy).
        self._fake_acked: Set[Uid] = set()
        self.lies_served = 0
        self.reads_withheld = 0
        self.writes_faked = 0
        self.index_forgeries = 0

    def _attempt(self, kind: str, uid: Uid) -> int:
        key = (kind, uid)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        return attempt

    def _donor(self, uid: Uid) -> Optional[Chunk]:
        """A deterministically chosen *other* held chunk (replay source)."""
        others = sorted(u for u in self.backing.ids() if u != uid)
        if not others:
            return None
        choice = others[self.plan.pick(self.node, "donor", "get", uid, 0, len(others))]
        return self.backing.get_maybe(choice)

    # -- ChunkStore primitives -----------------------------------------------

    def _insert(self, chunk: Chunk) -> None:
        attempt = self._attempt("put", chunk.uid)
        if self.plan.fake_ack(self.node, "put", chunk.uid, attempt):
            self.writes_faked += 1
            self._fake_acked.add(chunk.uid)
            return
        self._fake_acked.discard(chunk.uid)
        self.backing.put(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        chunk = self.backing.get_maybe(uid)
        if chunk is None:
            return None
        attempt = self._attempt("get", uid)
        if self.plan.withhold(self.node, "get", uid, attempt):
            self.reads_withheld += 1
            return None
        if self.plan.substitute(self.node, "get", uid, attempt):
            donor = self._donor(uid)
            if donor is not None:
                self.lies_served += 1
                return Chunk(donor.type, donor.data, uid=uid)
        if self.plan.flip(self.node, "get", uid, attempt):
            self.lies_served += 1
            lie = self.plan.mutate(self.node, "get", chunk.data, uid, attempt)
            return Chunk(chunk.type, lie, uid=uid)
        return chunk

    def _contains(self, uid: Uid) -> bool:
        held = self.backing.has(uid)
        if held and self.plan.withhold(
            self.node, "has", uid, self._attempt("has", uid)
        ):
            self.reads_withheld += 1
            return False
        return held

    def _ids(self) -> Iterator[Uid]:
        return iter(self.backing.ids())

    def _delete(self, uid: Uid) -> bool:
        self._fake_acked.discard(uid)
        return self.backing.delete(uid)

    # -- the anti-entropy forgery surface -------------------------------------

    def claimed_ids(self) -> List[Uid]:
        """The holdings this node *reports* to Merkle anti-entropy.

        Honest nodes have no such hook: their index is built by verified
        local reads.  A byzantine node self-reports — with ``forge_index``
        it claims fake-acked uids it never stored (digests agree, bytes
        don't exist: masked divergence), and ``conceal_rate`` hides held
        uids (digests differ where holdings agree: fabricated divergence
        that induces wasted transfers).  The seeded spot-check audit in
        :func:`~repro.cluster.antientropy.anti_entropy_pass` is the
        defense: sampled claims must be substantiated by verifying bytes.
        """
        claimed = set(self.backing.ids())
        if self.plan.forge_index and self._fake_acked:
            self.index_forgeries += len(self._fake_acked - claimed)
            claimed |= self._fake_acked
        if self.plan.conceal_rate > 0.0:
            kept: Set[Uid] = set()
            for uid in claimed:
                if self.plan.conceal(self.node, uid):
                    self.index_forgeries += 1
                else:
                    kept.add(uid)
            claimed = kept
        return sorted(claimed)

    def physical_size(self) -> int:
        return self.backing.physical_size()

    def close(self) -> None:
        self.backing.close()


def make_byzantine(node: object, plan: ByzantinePlan) -> ByzantineStore:
    """Turn a cluster ``StorageNode`` adversarial in place.

    Duck-typed on ``node.name``/``node.store`` so this layer needs no
    cluster import.  Returns the installed wrapper; undo with
    :func:`heal_node`.
    """
    adversary = ByzantineStore(
        node.store, plan, node=str(node.name)  # type: ignore[attr-defined]
    )
    node.store = adversary  # type: ignore[attr-defined]
    return adversary


def heal_node(node: object) -> bool:
    """Remove a node's byzantine wrapper (the adversary gives up).

    The honest backing store — including any real divergence the lies
    caused — is restored as ``node.store``.  Returns False when the node
    was not wrapped.
    """
    store = getattr(node, "store", None)
    if not isinstance(store, ByzantineStore):
        return False
    node.store = store.backing  # type: ignore[attr-defined]
    return True


def corrupt_queued_hints(cluster: object, plan: ByzantinePlan) -> int:
    """Replay-corrupt pending hinted-handoff payloads per the plan.

    Models a byzantine *hint holder*: hints live in the writer's memory
    (see ``ClusterStore.drop_hints``), so a compromised writer can replay
    them with flipped bytes under the original uid.  Works through the
    cluster's public ``pending_hint_chunks``/``replace_hint`` surface;
    the receiving-side verification in ``_replay_hints`` is the defense.
    Returns the number of hints corrupted.
    """
    corrupted = 0
    pending = cluster.pending_hint_chunks()  # type: ignore[attr-defined]
    for name, chunks in sorted(pending.items()):
        for chunk in sorted(chunks, key=lambda c: c.uid):
            if not plan.corrupt_hint(name, chunk.uid, 0):
                continue
            lie = plan.mutate(name, "hint", chunk.data, chunk.uid, 0)
            forged = Chunk(chunk.type, lie, uid=chunk.uid)
            if cluster.replace_hint(name, forged):  # type: ignore[attr-defined]
                corrupted += 1
    return corrupted
