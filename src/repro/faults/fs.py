"""Deterministic filesystem-fault injection (the fourth fault dimension).

Where :class:`~repro.faults.plan.FaultPlan` models a byzantine store,
:class:`~repro.faults.network.NetworkPlan` a faulty network, and
:class:`~repro.faults.crash.CrashPlan` a mortal process, an
:class:`FsFaultPlan` models the **disk that stops cooperating**: writes
fail with ENOSPC (sometimes after materializing a short prefix), reads
and fsyncs fail with EIO, and — the fsyncgate bug class — a failed fsync
silently *drops the unsynced dirty pages* and then falsely reports
success if retried on the same descriptor.

The shim (:class:`FaultyOS`) subclasses the no-op
:class:`~repro.store.durability.DiskInjector` that every persistence
path already routes its syscalls through, so the journal, FileStore,
PackStore, gc swap, and heads-snapshot paths are all injectable without
monkeypatching.  Every decision is a pure function of ``(seed, syscall,
path, attempt)`` — the same hashing discipline as the other planners —
so a schedule replays bit-identically.

Two modes, mirroring :class:`CrashPlan`:

- **rate mode** (census when all rates are 0): each boundary draws a
  deterministic uniform number and compares it to the per-syscall rate;
- **targeted mode** (``fail_at=n, flavor=...``): exactly the ``n``-th
  boundary faults, with the requested flavor — how the torture suite
  walks every persistence boundary × {ENOSPC, EIO, fsync-fail}.
"""

from __future__ import annotations

import errno
import hashlib
import os
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, Dict, Iterator, List, Optional, Tuple

from repro.store.durability import DiskInjector, install_injector

_SCALE = float(1 << 64)

#: Which fault flavors a targeted plan can land on each syscall kind.
TARGETED_FLAVORS: Dict[str, Tuple[str, ...]] = {
    "write": ("enospc", "short"),
    "fsync": ("fsync",),
    "read": ("eio",),
    "replace": ("enospc", "eio"),
}


@dataclass(frozen=True)
class FsFaultPlan:
    """Seeded description of how the filesystem misbehaves.

    Rates apply per syscall kind: ``enospc_rate`` to writes and renames,
    ``short_write_rate`` stacks on top for writes (a strict prefix lands
    before the ENOSPC), ``eio_read_rate`` to read probes, and
    ``fsync_fail_rate`` to fsyncs (EIO with fsyncgate page loss).
    ``fail_at``/``flavor`` switch to targeted mode: exactly that global
    boundary index faults and every rate is ignored.
    """

    seed: int = 0
    enospc_rate: float = 0.0
    short_write_rate: float = 0.0
    eio_read_rate: float = 0.0
    fsync_fail_rate: float = 0.0
    fail_at: Optional[int] = None
    flavor: str = "enospc"

    def digest(self, syscall: str, label: str, attempt: int) -> bytes:
        """The (seed, syscall, path-label, attempt) replay hash."""
        hasher = hashlib.sha256()
        hasher.update(struct.pack(">q", self.seed))
        hasher.update(syscall.encode("utf-8"))
        hasher.update(label.encode("utf-8"))
        hasher.update(struct.pack(">q", attempt))
        return hasher.digest()

    def draw(self, syscall: str, label: str, attempt: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one boundary."""
        digest = self.digest(syscall, label, attempt)
        return int.from_bytes(digest[:8], "big") / _SCALE

    def decide(self, syscall: str, label: str, attempt: int, index: int) -> Optional[str]:
        """The fault flavor for one boundary, or ``None`` for clean."""
        if self.fail_at is not None:
            if index != self.fail_at:
                return None
            if self.flavor in TARGETED_FLAVORS.get(syscall, ()):
                return self.flavor
            return None
        value = self.draw(syscall, label, attempt)
        if syscall == "write":
            if value < self.enospc_rate:
                return "enospc"
            if value < self.enospc_rate + self.short_write_rate:
                return "short"
        elif syscall == "fsync":
            if value < self.fsync_fail_rate:
                return "fsync"
        elif syscall == "read":
            if value < self.eio_read_rate:
                return "eio"
        elif syscall == "replace":
            if value < self.enospc_rate:
                return "enospc"
        return None


@dataclass(frozen=True)
class FsBoundary:
    """One filesystem boundary the workload crossed."""

    index: int
    syscall: str
    label: str
    fault: Optional[str]
    stamp: str  # replay-hash prefix: equal traces ⇔ equal executions


class FaultyOS(DiskInjector):
    """The armed disk shim: applies an :class:`FsFaultPlan` per syscall.

    Public counters the suites assert on:

    - ``trace`` / ``injected`` — every boundary crossed / faulted;
    - ``false_fsyncs`` — fsync calls on a descriptor whose previous
      fsync already failed.  A real kernel reports success there while
      the data is gone, so the shim does the same; library code must
      keep this at **zero** (never retry a failed fsync on the same
      descriptor — reopen and rewrite instead);
    - ``dropped_bytes`` — bytes the fsyncgate simulation discarded.
    """

    def __init__(self, plan: FsFaultPlan) -> None:
        self.plan = plan
        self.trace: List[FsBoundary] = []
        self.injected: List[FsBoundary] = []
        self.false_fsyncs = 0
        self.dropped_bytes = 0
        self._attempts: Dict[Tuple[str, str], int] = {}
        #: id(handle) -> (handle, durable offset).  The handle reference
        #: pins the id so it cannot be recycled while tracked.
        self._marks: Dict[int, Tuple[IO[bytes], int]] = {}
        self._gated: Dict[int, IO[bytes]] = {}

    # -- bookkeeping ---------------------------------------------------------

    @property
    def count(self) -> int:
        """How many boundaries have been crossed so far."""
        return len(self.trace)

    def _label(self, handle_or_path: object, label: str) -> str:
        if label:
            return label
        name = getattr(handle_or_path, "name", handle_or_path)
        return os.path.basename(str(name))

    def _register(self, syscall: str, label: str) -> Optional[str]:
        key = (syscall, label)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        index = len(self.trace)
        fault = self.plan.decide(syscall, label, attempt, index)
        stamp = self.plan.digest(syscall, label, attempt).hex()[:16]
        hit = FsBoundary(index, syscall, label, fault, stamp)
        self.trace.append(hit)
        if fault is not None:
            self.injected.append(hit)
        return fault

    # -- DiskInjector overrides ----------------------------------------------

    def write(self, handle: IO[bytes], data: bytes, label: str = "") -> None:
        label = self._label(handle, label)
        # First sight of a handle fixes its durable floor: everything
        # below this offset predates the zone and counts as on-platter.
        self._marks.setdefault(id(handle), (handle, handle.tell()))
        fault = self._register("write", label)
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device", label)
        if fault == "short":
            keep = 0
            if len(data) > 1:
                digest = self.plan.digest("write", label, self._attempts[("write", label)])
                keep = int.from_bytes(digest[8:16], "big") % len(data)
            handle.write(data[:keep])
            handle.flush()
            raise OSError(
                errno.ENOSPC, f"injected: short write ({keep}/{len(data)}B)", label
            )
        handle.write(data)

    def fsync_handle(self, handle: IO[bytes], label: str = "") -> None:
        label = self._label(handle, label)
        key = id(handle)
        if key in self._gated:
            # fsyncgate: the kernel cleared the error flag when the first
            # fsync failed; a retry on the same descriptor reports success
            # for pages that are already gone.
            self.false_fsyncs += 1
            return
        fault = self._register("fsync", label)
        if fault is None:
            os.fsync(handle.fileno())
            self._marks[key] = (handle, handle.tell())
            return
        # The failed fsync drops every dirty page since the durable floor.
        entry = self._marks.get(key)
        mark = entry[1] if entry is not None else handle.tell()
        position = handle.tell()
        if position > mark:
            os.ftruncate(handle.fileno(), mark)
            handle.seek(0, os.SEEK_END)
            self.dropped_bytes += position - mark
        self._gated[key] = handle
        raise OSError(errno.EIO, "injected: fsync failed", label)

    def fsync_fd(self, fd: int, path: str) -> None:
        # Directory fsyncs are labelled by role, not name: the store root's
        # basename is the (random) temp dir in tests, and replay stamps
        # must be identical across directories.
        label = "<dir>" if os.path.isdir(path) else self._label(path, "")
        fault = self._register("fsync", label)
        if fault is None:
            os.fsync(fd)
            return
        raise OSError(errno.EIO, "injected: fsync failed", path)

    def replace(self, source: str, destination: str) -> None:
        label = self._label(destination, "")
        fault = self._register("replace", label)
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device", destination)
        if fault == "eio":
            raise OSError(errno.EIO, "injected: rename failed", destination)
        os.replace(source, destination)

    def read_probe(self, path: str, label: str = "") -> None:
        label = self._label(path, label)
        fault = self._register("read", label)
        if fault == "eio":
            raise OSError(errno.EIO, "injected: read failed", path)


_ACTIVE: Optional[FaultyOS] = None


def active_zone() -> Optional[FaultyOS]:
    """The armed shim, if any (for tests asserting on its counters)."""
    return _ACTIVE


@contextmanager
def fs_zone(plan: FsFaultPlan) -> Iterator[FaultyOS]:
    """Arm ``plan`` for the duration of the block; yields the shim.

    The census recipe mirrors :func:`~repro.faults.crash.crash_zone`:
    run the workload once under ``FsFaultPlan()`` (all rates zero) to
    enumerate boundaries, then once per boundary × flavor with
    ``fail_at=n`` and assert recovery.
    """
    global _ACTIVE
    shim = FaultyOS(plan)
    previous_active = _ACTIVE
    previous = install_injector(shim)
    _ACTIVE = shim
    try:
        yield shim
    finally:
        _ACTIVE = previous_active
        install_injector(previous)
