"""Deterministic fault injection.

The paper's threat model (§III-C) treats storage as potentially faulty or
malicious; the tamper-evident uid exists to *detect* bad bytes.  This
package supplies the adversary: a seeded :class:`~repro.faults.plan.FaultPlan`
describing fault rates, a :class:`~repro.faults.store.FaultyStore` wrapper
that applies the plan to any :class:`~repro.store.base.ChunkStore`, and a
:class:`~repro.faults.retry.RetryPolicy` with injectable clock/sleep so the
healing machinery can be tested instantly and reproducibly.

Every injected fault is a pure function of ``(seed, op kind, uid, attempt
number)`` — replaying the same workload against the same plan yields the
same faults, which is what makes the chaos suite assertable.
"""

from repro.faults.byzantine import (
    ByzantinePlan,
    ByzantineStore,
    corrupt_queued_hints,
    flip_at,
    heal_node,
    make_byzantine,
)
from repro.faults.crash import CrashPlan, crash_zone, crashing_write, crashpoint
from repro.faults.fs import FaultyOS, FsFaultPlan, fs_zone
from repro.faults.network import (
    NetworkPlan,
    PartitionedTransport,
    apply_schedule_event,
    apply_slow_event,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, with_retry
from repro.faults.store import FaultyStore

__all__ = [
    "ByzantinePlan",
    "ByzantineStore",
    "CrashPlan",
    "FaultPlan",
    "FaultyOS",
    "FaultyStore",
    "FsFaultPlan",
    "NetworkPlan",
    "PartitionedTransport",
    "RetryPolicy",
    "apply_schedule_event",
    "apply_slow_event",
    "corrupt_queued_hints",
    "crash_zone",
    "crashing_write",
    "crashpoint",
    "flip_at",
    "fs_zone",
    "heal_node",
    "make_byzantine",
    "with_retry",
]
