"""ForkBase itself behind the baseline interface, for apples-to-apples
measurement in the Table I benchmark."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import BaselineStore, Capabilities, Rows
from repro.db.engine import ForkBase
from repro.types import FMap


class ForkBaseAdapter(BaselineStore):
    """Loads dataset states as map versions in a real engine."""

    capabilities = Capabilities(
        name="ForkBase (this work)",
        data_model="structured/unstructured, immutable",
        dedup="page level (POS-Tree)",
        tamper_evidence="root hash of Merkle DAG",
        branching="Git-like",
    )

    def __init__(self) -> None:
        self.engine = ForkBase(author="bench", clock=lambda: 0.0)
        self._order: Dict[str, List[str]] = {}

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        mapping = {pk.encode("utf-8"): value for pk, value in rows.items()}
        value = FMap.from_dict(self.engine.store, mapping)
        info = self.engine.put(dataset, value, message="bench load")
        self._order.setdefault(dataset, []).append(info.version)
        return info.version

    def checkout(self, dataset: str, version: str) -> Rows:
        obj = self.engine.get(dataset, version=version)
        assert isinstance(obj, FMap)
        return {pk.decode("utf-8"): value for pk, value in obj.items()}

    def physical_bytes(self) -> int:
        return self.engine.store.stats.physical_bytes

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
