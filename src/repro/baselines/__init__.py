"""Comparison systems for Table I and the dedup-strategy ablation.

Each baseline models the storage strategy of one family from the paper's
related-work table, implemented against the same workload interface so
the benchmark can measure logical-vs-physical bytes for all of them:

- :class:`~repro.baselines.snapshot.SnapshotStore` — full copy per
  version (the naive strawman every versioning paper starts from).
- :class:`~repro.baselines.tupledelta.TupleDedupStore` — tuple-oriented
  dedup with per-version rid lists (OrpheusDB-style "table oriented").
- :class:`~repro.baselines.deltachain.DeltaChainStore` — per-version
  forward deltas against a parent (Decibel/DataHub-style), checkout
  walks the chain.
- :class:`~repro.baselines.gitfile.GitFileStore` — file-granularity
  content addressing (plain Git semantics: dedup only identical files).
- :class:`~repro.baselines.fixedchunk.FixedChunkStore` — fixed-size
  chunking with content addressing; shows the boundary-shift pathology
  that content-defined chunking (POS-Tree) avoids.

None of them is tamper evident and none shares pages between logically
equal but differently-edited instances — the two columns where ForkBase
differs in Table I.
"""

from repro.baselines.base import BaselineStore, Capabilities
from repro.baselines.deltachain import DeltaChainStore
from repro.baselines.fixedchunk import FixedChunkStore
from repro.baselines.gitfile import GitFileStore
from repro.baselines.snapshot import SnapshotStore
from repro.baselines.tupledelta import TupleDedupStore

__all__ = [
    "BaselineStore",
    "Capabilities",
    "DeltaChainStore",
    "FixedChunkStore",
    "GitFileStore",
    "SnapshotStore",
    "TupleDedupStore",
]
