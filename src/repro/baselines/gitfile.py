"""File-granularity content addressing (plain Git semantics).

The whole dataset state is serialized to one "file" blob stored by its
hash.  Two versions dedup only when byte-identical end to end — the
"data at the file granule ... too coarse-grained" problem the paper's
introduction motivates ForkBase with.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineStore, Capabilities, Rows


def serialize_rows(rows: Rows) -> bytes:
    """Canonical whole-file serialization of a dataset state.

    Length-prefixed records (values may contain arbitrary bytes).
    """
    parts = []
    for pk in sorted(rows):
        key = pk.encode("utf-8")
        value = rows[pk]
        parts.append(len(key).to_bytes(4, "big"))
        parts.append(key)
        parts.append(len(value).to_bytes(4, "big"))
        parts.append(value)
    return b"".join(parts)


def deserialize_rows(data: bytes) -> Rows:
    """Inverse of :func:`serialize_rows`."""
    out: Rows = {}
    position = 0
    while position < len(data):
        key_len = int.from_bytes(data[position : position + 4], "big")
        position += 4
        key = data[position : position + key_len]
        position += key_len
        value_len = int.from_bytes(data[position : position + 4], "big")
        position += 4
        value = data[position : position + value_len]
        position += value_len
        out[key.decode("utf-8")] = value
    return out


class GitFileStore(BaselineStore):
    """Whole-file blobs addressed by content hash."""

    capabilities = Capabilities(
        name="Git (file-level)",
        data_model="unstructured (file), immutable",
        dedup="file level",
        tamper_evidence="blob hash (file granule)",
        branching="Git-like",
    )

    def __init__(self) -> None:
        self._blobs: Dict[bytes, bytes] = {}
        self._versions: Dict[Tuple[str, str], bytes] = {}
        self._order: Dict[str, List[str]] = {}
        self._counter = 0

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        blob = serialize_rows(rows)
        digest = hashlib.sha256(blob).digest()
        if digest not in self._blobs:
            self._blobs[digest] = blob
        self._counter += 1
        version = f"v{self._counter}"
        self._versions[(dataset, version)] = digest
        self._order.setdefault(dataset, []).append(version)
        return version

    def checkout(self, dataset: str, version: str) -> Rows:
        return deserialize_rows(self._blobs[self._versions[(dataset, version)]])

    def physical_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
