"""Full-copy snapshot baseline: every version stores the whole dataset."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineStore, Capabilities, Rows


class SnapshotStore(BaselineStore):
    """The strawman: no sharing at all between versions."""

    capabilities = Capabilities(
        name="Snapshot (naive)",
        data_model="structured (table), mutable",
        dedup="none",
        tamper_evidence="none",
        branching="ad-hoc",
    )

    def __init__(self) -> None:
        self._snapshots: Dict[Tuple[str, str], Rows] = {}
        self._order: Dict[str, List[str]] = {}
        self._counter = 0

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        self._counter += 1
        version = f"v{self._counter}"
        self._snapshots[(dataset, version)] = dict(rows)
        self._order.setdefault(dataset, []).append(version)
        return version

    def checkout(self, dataset: str, version: str) -> Rows:
        return dict(self._snapshots[(dataset, version)])

    def physical_bytes(self) -> int:
        total = 0
        for rows in self._snapshots.values():
            for pk, value in rows.items():
                total += len(pk.encode("utf-8")) + len(value)
        return total

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
