"""Common interface for versioned-storage baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

Rows = Dict[str, bytes]  # primary key -> encoded row


@dataclass(frozen=True)
class Capabilities:
    """Table I's feature columns for one system."""

    name: str
    data_model: str
    dedup: str
    tamper_evidence: str
    branching: str


class BaselineStore:
    """A versioned dataset store measured by physical bytes.

    ``load_version`` ingests a full dataset state and returns a version
    id; ``checkout`` materializes a version; ``physical_bytes`` is the
    storage footprint the comparison benchmarks report.
    """

    capabilities: Capabilities = Capabilities(
        name="abstract", data_model="-", dedup="-", tamper_evidence="-", branching="-"
    )

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        raise NotImplementedError

    def checkout(self, dataset: str, version: str) -> Rows:
        raise NotImplementedError

    def physical_bytes(self) -> int:
        raise NotImplementedError

    def versions(self, dataset: str) -> List[str]:
        raise NotImplementedError


def rows_logical_bytes(rows: Rows) -> int:
    """Logical payload size of one dataset state (keys + values)."""
    return sum(len(pk.encode("utf-8")) + len(value) for pk, value in rows.items())
