"""Tuple-oriented dedup baseline (OrpheusDB-style).

Every distinct tuple is stored once in a global tuple table; each version
is a list of tuple record ids (4 bytes per rid, matching OrpheusDB's
rlist representation).  Dedup granularity is the tuple: any in-tuple edit
stores a whole new tuple, and the per-version rid list always costs
O(dataset size), not O(change size).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineStore, Capabilities, Rows

_RID_BYTES = 4


class TupleDedupStore(BaselineStore):
    """Tuple-level sharing with per-version rid lists."""

    capabilities = Capabilities(
        name="TupleDedup (OrpheusDB-like)",
        data_model="structured (table), mutable",
        dedup="table oriented (tuple)",
        tamper_evidence="none",
        branching="ad-hoc",
    )

    def __init__(self) -> None:
        self._tuples: Dict[bytes, bytes] = {}  # tuple hash -> payload
        self._versions: Dict[Tuple[str, str], List[bytes]] = {}
        self._order: Dict[str, List[str]] = {}
        self._counter = 0

    @staticmethod
    def _tuple_id(pk: str, value: bytes) -> bytes:
        return hashlib.sha256(pk.encode("utf-8") + b"\x00" + value).digest()

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        rids: List[bytes] = []
        for pk in sorted(rows):
            value = rows[pk]
            rid = self._tuple_id(pk, value)
            if rid not in self._tuples:
                self._tuples[rid] = pk.encode("utf-8") + b"\x00" + value
            rids.append(rid)
        self._counter += 1
        version = f"v{self._counter}"
        self._versions[(dataset, version)] = rids
        self._order.setdefault(dataset, []).append(version)
        return version

    def checkout(self, dataset: str, version: str) -> Rows:
        out: Rows = {}
        for rid in self._versions[(dataset, version)]:
            payload = self._tuples[rid]
            pk, _, value = payload.partition(b"\x00")
            out[pk.decode("utf-8")] = value
        return out

    def physical_bytes(self) -> int:
        tuple_bytes = sum(len(payload) for payload in self._tuples.values())
        rid_bytes = sum(len(rids) * _RID_BYTES for rids in self._versions.values())
        return tuple_bytes + rid_bytes

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
