"""Fixed-size chunking baseline.

Serializes the dataset to one byte stream and dedups fixed-size chunks by
content hash.  Works for in-place overwrites, but any *insertion or
deletion* shifts every later chunk boundary, destroying dedup from the
edit point onward — the precise pathology content-defined slicing
(POS-Tree's pattern rule) exists to avoid.  The ablation benchmark puts
the two side by side.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineStore, Capabilities, Rows
from repro.baselines.gitfile import deserialize_rows, serialize_rows


class FixedChunkStore(BaselineStore):
    """Content-addressed fixed-size chunks over the serialized dataset."""

    capabilities = Capabilities(
        name="FixedChunk",
        data_model="unstructured (byte stream), immutable",
        dedup="fixed-size chunk",
        tamper_evidence="chunk hashes (no tree)",
        branching="ad-hoc",
    )

    def __init__(self, chunk_size: int = 1024) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self._chunks: Dict[bytes, bytes] = {}
        self._versions: Dict[Tuple[str, str], List[bytes]] = {}
        self._order: Dict[str, List[str]] = {}
        self._counter = 0

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        blob = serialize_rows(rows)
        manifest: List[bytes] = []
        for offset in range(0, len(blob), self.chunk_size):
            piece = blob[offset : offset + self.chunk_size]
            digest = hashlib.sha256(piece).digest()
            if digest not in self._chunks:
                self._chunks[digest] = piece
            manifest.append(digest)
        self._counter += 1
        version = f"v{self._counter}"
        self._versions[(dataset, version)] = manifest
        self._order.setdefault(dataset, []).append(version)
        return version

    def checkout(self, dataset: str, version: str) -> Rows:
        manifest = self._versions[(dataset, version)]
        blob = b"".join(self._chunks[digest] for digest in manifest)
        return deserialize_rows(blob)

    def physical_bytes(self) -> int:
        chunk_bytes = sum(len(piece) for piece in self._chunks.values())
        manifest_bytes = sum(
            len(manifest) * 32 for manifest in self._versions.values()
        )
        return chunk_bytes + manifest_bytes

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
