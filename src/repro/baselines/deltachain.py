"""Forward-delta baseline (Decibel/DataHub-style table versioning).

Each version stores only the rows that changed against its parent (plus
tombstones).  Storage is proportional to change size — competitive with
ForkBase on that axis — but checkout must replay the whole chain, diff
between arbitrary versions is O(chain), and nothing is content-addressed,
so equal states reached along different paths are stored twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import BaselineStore, Capabilities, Rows

_TOMBSTONE_BYTES = 8  # per deleted key bookkeeping


class DeltaChainStore(BaselineStore):
    """Per-version forward deltas with chain replay on checkout."""

    capabilities = Capabilities(
        name="DeltaChain (Decibel-like)",
        data_model="structured (table), mutable",
        dedup="table oriented (delta)",
        tamper_evidence="none",
        branching="ad-hoc",
    )

    def __init__(self) -> None:
        # version -> (parent, puts, deletes)
        self._deltas: Dict[
            Tuple[str, str], Tuple[Optional[str], Rows, Set[str]]
        ] = {}
        self._order: Dict[str, List[str]] = {}
        self._counter = 0
        self.replay_steps = 0  # checkout work accounting

    def load_version(
        self, dataset: str, rows: Rows, parent: Optional[str] = None
    ) -> str:
        base: Rows = self.checkout(dataset, parent) if parent else {}
        puts: Rows = {}
        for pk, value in rows.items():
            if base.get(pk) != value:
                puts[pk] = value
        deletes = {pk for pk in base if pk not in rows}
        self._counter += 1
        version = f"v{self._counter}"
        self._deltas[(dataset, version)] = (parent, puts, deletes)
        self._order.setdefault(dataset, []).append(version)
        return version

    def checkout(self, dataset: str, version: str) -> Rows:
        chain: List[Tuple[Rows, Set[str]]] = []
        cursor: Optional[str] = version
        while cursor is not None:
            parent, puts, deletes = self._deltas[(dataset, cursor)]
            chain.append((puts, deletes))
            cursor = parent
            self.replay_steps += 1
        state: Rows = {}
        for puts, deletes in reversed(chain):
            for pk in deletes:
                state.pop(pk, None)
            state.update(puts)
        return state

    def physical_bytes(self) -> int:
        total = 0
        for _, puts, deletes in self._deltas.values():
            for pk, value in puts.items():
                total += len(pk.encode("utf-8")) + len(value)
            total += len(deletes) * _TOMBSTONE_BYTES
        return total

    def versions(self, dataset: str) -> List[str]:
        return list(self._order.get(dataset, []))
