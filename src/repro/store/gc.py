"""Mark-and-sweep garbage collection for chunk stores.

Immutability means nothing is ever overwritten, so space is reclaimed the
Git way: chunks unreachable from any live root (branch heads, plus their
full histories and value trees) can be swept.  Because all references are
content addresses, the marker only needs to know how to enumerate each
chunk type's children — there are no back-references or ref-counts to
maintain on the write path.

Typical use::

    from repro.store.gc import collect_garbage
    report = collect_garbage(engine)            # sweep in place
    report = collect_garbage(engine, dry_run=True)   # just measure
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Set

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import StoreError
from repro.postree.listtree import ListIndexNode
from repro.postree.node import IndexNode
from repro.store.base import ChunkStore
from repro.store.memory import InMemoryStore
from repro.vcs.fnode import FNode

if TYPE_CHECKING:
    from repro.db.engine import Engine


def chunk_children(chunk: Chunk) -> List[Uid]:
    """The uids a chunk references (its Merkle children)."""
    if chunk.type == ChunkType.INDEX:
        return [entry.child for entry in IndexNode.from_chunk(chunk).entries]
    if chunk.type == ChunkType.LIST_INDEX:
        return [entry.child for entry in ListIndexNode.from_chunk(chunk).entries]
    if chunk.type == ChunkType.FNODE:
        fnode = FNode.decode(chunk)
        return [fnode.value_root, *fnode.bases]
    # LEAF / LIST_LEAF / BLOB / PRIMITIVE / SCHEMA / META are terminal.
    return []


@dataclass
class GcReport:
    """Outcome of one collection."""

    live_chunks: int
    live_bytes: int
    swept_chunks: int
    swept_bytes: int
    dry_run: bool

    @property
    def reclaim_fraction(self) -> float:
        """Share of bytes that were (or would be) reclaimed."""
        total = self.live_bytes + self.swept_bytes
        if total == 0:
            return 0.0
        return self.swept_bytes / total


def mark_live(store: ChunkStore, roots: Iterable[Uid]) -> Set[Uid]:
    """Every chunk reachable from ``roots`` (missing chunks are skipped)."""
    live: Set[Uid] = set()
    stack = list(roots)
    while stack:
        uid = stack.pop()
        if uid in live:
            continue
        chunk = store.get_maybe(uid)
        if chunk is None:
            continue
        live.add(uid)
        stack.extend(chunk_children(chunk))
    return live


def collect_garbage(
    engine: Engine,
    extra_roots: Iterable[Uid] = (),
    dry_run: bool = False,
) -> GcReport:
    """Sweep chunks unreachable from the engine's branch heads.

    Only :class:`InMemoryStore`-backed engines support in-place sweeping;
    other stores should use :func:`compact_into` (copy-live-out), which
    matches how append-only storage actually reclaims space.
    """
    store = engine.store
    roots = [head for _, _, head in engine.branch_table.all_heads()]
    roots.extend(extra_roots)
    live = mark_live(store, roots)

    live_bytes = 0
    swept_chunks = 0
    swept_bytes = 0
    doomed: List[Uid] = []
    for uid in store.ids():
        chunk = store.get_maybe(uid)
        if chunk is None:
            continue
        if uid in live:
            live_bytes += chunk.size()
        else:
            doomed.append(uid)
            swept_chunks += 1
            swept_bytes += chunk.size()

    if not dry_run and doomed:
        if not isinstance(store, InMemoryStore):
            raise StoreError(
                "in-place sweep requires an InMemoryStore; use compact_into()"
            )
        for uid in doomed:
            store.delete(uid)

    return GcReport(
        live_chunks=len(live),
        live_bytes=live_bytes,
        swept_chunks=swept_chunks,
        swept_bytes=swept_bytes,
        dry_run=dry_run,
    )


def compact_into(
    engine: Engine, target: ChunkStore, extra_roots: Iterable[Uid] = ()
) -> GcReport:
    """Copy every live chunk into ``target`` (append-only reclamation).

    The engine keeps working against its old store; callers swap stores
    (or reopen) once compaction finishes — the same offline-compaction
    pattern log-structured stores use.
    """
    store = engine.store
    roots = [head for _, _, head in engine.branch_table.all_heads()]
    roots.extend(extra_roots)
    live = mark_live(store, roots)

    live_bytes = 0
    for uid in live:
        chunk = store.get_maybe(uid)
        if chunk is not None:
            target.put(chunk)
            live_bytes += chunk.size()

    total_bytes = store.physical_size()
    return GcReport(
        live_chunks=len(live),
        live_bytes=live_bytes,
        swept_chunks=max(0, len(store.ids()) - len(live)),
        swept_bytes=max(0, total_bytes - live_bytes),
        dry_run=True,  # the source store is untouched
    )
