"""Mark-and-sweep garbage collection for chunk stores.

Immutability means nothing is ever overwritten, so space is reclaimed the
Git way: chunks unreachable from any live root (branch heads, plus their
full histories and value trees) can be swept.  Because all references are
content addresses, the marker only needs to know how to enumerate each
chunk type's children — there are no back-references or ref-counts to
maintain on the write path.

Typical use::

    from repro.store.gc import collect_garbage
    report = collect_garbage(engine)            # sweep in place
    report = collect_garbage(engine, dry_run=True)   # just measure
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Set

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import StoreError
from repro.postree.listtree import ListIndexNode
from repro.postree.node import IndexNode
from repro.store.base import ChunkStore, physical_store
from repro.store.memory import InMemoryStore
from repro.vcs.fnode import FNode

if TYPE_CHECKING:
    from repro.db.engine import Engine


def chunk_children(chunk: Chunk) -> List[Uid]:
    """The uids a chunk references (its Merkle children)."""
    if chunk.type == ChunkType.INDEX:
        return [entry.child for entry in IndexNode.from_chunk(chunk).entries]
    if chunk.type == ChunkType.LIST_INDEX:
        return [entry.child for entry in ListIndexNode.from_chunk(chunk).entries]
    if chunk.type == ChunkType.FNODE:
        fnode = FNode.decode(chunk)
        return [fnode.value_root, *fnode.bases]
    # LEAF / LIST_LEAF / BLOB / PRIMITIVE / SCHEMA / META are terminal.
    return []


@dataclass
class GcReport:
    """Outcome of one collection."""

    live_chunks: int
    live_bytes: int
    swept_chunks: int
    swept_bytes: int
    dry_run: bool
    #: Pack segments that existed before / survived a segment compaction
    #: (both zero when the backend has no segments or ``compact=False``).
    segments_before: int = 0
    segments_after: int = 0
    #: On-disk bytes reclaimed by rewriting pack segments.
    compacted_bytes: int = 0

    @property
    def reclaim_fraction(self) -> float:
        """Share of bytes that were (or would be) reclaimed."""
        total = self.live_bytes + self.swept_bytes
        if total == 0:
            return 0.0
        return self.swept_bytes / total


def _unwrap(store: ChunkStore) -> ChunkStore:
    """Peel cache wrappers down to the physical store.

    Alias of :func:`repro.store.base.physical_store`, kept under the
    name this module has always exported.
    """
    return physical_store(store)


def mark_live(store: ChunkStore, roots: Iterable[Uid]) -> Set[Uid]:
    """Every chunk reachable from ``roots`` (missing chunks are skipped)."""
    live: Set[Uid] = set()
    stack = list(roots)
    while stack:
        uid = stack.pop()
        if uid in live:
            continue
        chunk = store.get_maybe(uid)
        if chunk is None:
            continue
        live.add(uid)
        stack.extend(chunk_children(chunk))
    return live


def collect_garbage(
    engine: Engine,
    extra_roots: Iterable[Uid] = (),
    dry_run: bool = False,
    compact: bool = False,
) -> GcReport:
    """Sweep chunks unreachable from the engine's branch heads.

    In-place sweeping needs a store whose ``delete`` reclaims durably
    (``supports_in_place_sweep``): the dict-backed store frees memory
    immediately, and the pack store drops index entries whose bytes die
    at the next segment compaction.  One-file-per-record stores should
    use :func:`compact_into` (copy-live-out) instead.

    With ``compact=True``, a pack-backed store additionally rewrites its
    live records into fresh segments after the sweep and unlinks the dead
    ones, so the report's ``compacted_bytes`` shows actual disk space
    returned to the OS — the pack-aware reclamation the append-only
    layout calls for.
    """
    store = engine.store
    roots = [head for _, _, head in engine.branch_table.all_heads()]
    roots.extend(extra_roots)
    live = mark_live(store, roots)

    live_bytes = 0
    swept_chunks = 0
    swept_bytes = 0
    doomed: List[Uid] = []
    for uid in store.ids():
        chunk = store.get_maybe(uid)
        if chunk is None:
            continue
        if uid in live:
            live_bytes += chunk.size()
        else:
            doomed.append(uid)
            swept_chunks += 1
            swept_bytes += chunk.size()

    if not dry_run and doomed:
        if not (store.supports_in_place_sweep or isinstance(store, InMemoryStore)):
            raise StoreError(
                "in-place sweep requires a store with durable deletes; "
                "use compact_into()"
            )
        for uid in doomed:
            # Delete through the top of the stack so cache layers evict.
            store.delete(uid)
        # The engine's own stack evicted via delete(); *sibling* wrappers
        # sharing this physical store (another client's cache over the
        # same backing) hear about the sweep through the subscription bus
        # so they cannot keep serving chunks the store no longer holds.
        physical_store(store).notify_swept(doomed)

    segments_before = 0
    segments_after = 0
    compacted_bytes = 0
    if compact and not dry_run:
        physical = _unwrap(store)
        compactor = getattr(physical, "compact_segments", None)
        if callable(compactor):
            outcome = compactor()
            segments_before = outcome["segments_before"]
            segments_after = outcome["segments_after"]
            compacted_bytes = max(0, outcome["bytes_before"] - outcome["bytes_after"])

    return GcReport(
        live_chunks=len(live),
        live_bytes=live_bytes,
        swept_chunks=swept_chunks,
        swept_bytes=swept_bytes,
        dry_run=dry_run,
        segments_before=segments_before,
        segments_after=segments_after,
        compacted_bytes=compacted_bytes,
    )


def compact_into(
    engine: Engine, target: ChunkStore, extra_roots: Iterable[Uid] = ()
) -> GcReport:
    """Copy every live chunk into ``target`` (append-only reclamation).

    The engine keeps working against its old store; callers swap stores
    (or reopen) once compaction finishes — the same offline-compaction
    pattern log-structured stores use.
    """
    store = engine.store
    roots = [head for _, _, head in engine.branch_table.all_heads()]
    roots.extend(extra_roots)
    live = mark_live(store, roots)

    live_bytes = 0
    for uid in live:
        chunk = store.get_maybe(uid)
        if chunk is not None:
            target.put(chunk)
            live_bytes += chunk.size()

    total_bytes = store.physical_size()
    return GcReport(
        live_chunks=len(live),
        live_bytes=live_bytes,
        swept_chunks=max(0, len(store.ids()) - len(live)),
        swept_bytes=max(0, total_bytes - live_bytes),
        dry_run=True,  # the source store is untouched
    )
