"""LRU read-through cache over another chunk store.

Chunks are immutable, so the cache never needs invalidation — the single
nicest systems consequence of content addressing.

Read verification is **inherited from the backing store** by default:
for years-of-PRs this layer hardcoded ``verify_reads=False``, which meant
wrapping a verifying store in a cache silently disabled the client-side
tamper check on every cache hit (a miss was verified by the backing
store; a hit returned the cached chunk unexamined).  FB-TAMPER now flags
that class of bypass; pass ``verify_reads`` explicitly to opt out.

The cache is also the first store layer prepared for the multi-client
serving work (ROADMAP item 1): the LRU map and its counters are guarded
by a lock with the discipline declared via ``# guarded-by:`` annotations
that FB-LOCKED checks against the CFG.  The backing store is deliberately
called *outside* the lock — device reads must not serialize cache hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.chunk import Chunk, Uid
from repro.store.base import ChunkStore, physical_store
from repro.store.stats import StoreStats


class CachedStore(ChunkStore):
    """Wraps a backing store with an LRU cache of raw chunks."""

    def __init__(
        self,
        backing: ChunkStore,
        capacity: int = 4096,
        verify_reads: Optional[bool] = None,
    ) -> None:
        if verify_reads is None:
            verify_reads = backing.verify_reads
        super().__init__(verify_reads=verify_reads)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.backing = backing
        self.capacity = capacity
        self.supports_in_place_sweep = backing.supports_in_place_sweep
        self._lock = threading.Lock()
        self._cache: "OrderedDict[Uid, Chunk]" = OrderedDict()  # guarded-by: self._lock
        self.hits = 0  # guarded-by: self._lock
        self.lookups = 0  # guarded-by: self._lock
        # GC and quarantine resync remove chunks at the physical layer; a
        # sibling wrapper's delete path never passes through this cache,
        # so sweep notifications are how those entries get evicted.
        physical_store(backing).subscribe_sweeps(self)

    def _remember(self, chunk: Chunk) -> None:  # holds-lock: self._lock
        cache = self._cache
        cache[chunk.uid] = chunk
        cache.move_to_end(chunk.uid)
        while len(cache) > self.capacity:
            cache.popitem(last=False)

    def _insert(self, chunk: Chunk) -> None:
        self.backing.put(chunk)
        with self._lock:
            self._remember(chunk)

    def _insert_many(self, chunks: List[Chunk]) -> None:
        """Pass the whole batch down so durable backends batch fsyncs."""
        self.backing.put_many(chunks)
        with self._lock:
            for chunk in chunks:
                self._remember(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        with self._lock:
            self.lookups += 1
            cached = self._cache.get(uid)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(uid)
                return cached
        chunk = self.backing.get_maybe(uid)
        if chunk is not None:
            with self._lock:
                self._remember(chunk)
        return chunk

    def _contains(self, uid: Uid) -> bool:
        with self._lock:
            if uid in self._cache:
                return True
        return self.backing.has(uid)

    def _ids(self) -> Iterator[Uid]:
        return iter(self.backing.ids())

    def _delete(self, uid: Uid) -> bool:
        with self._lock:
            self._cache.pop(uid, None)
        return self.backing.delete(uid)

    def invalidate_swept(self, uids: List[Uid]) -> None:
        """Evict entries whose backing copies were swept elsewhere."""
        with self._lock:
            for uid in uids:
                self._cache.pop(uid, None)

    def __len__(self) -> int:
        return len(self.backing)

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from cache."""
        with self._lock:
            if self.lookups == 0:
                return 0.0
            return self.hits / self.lookups

    def physical_size(self) -> int:
        return self.backing.physical_size()

    def stats_snapshot(self) -> StoreStats:
        """The backing store's snapshot plus this layer's cache counters."""
        snap = self.backing.stats_snapshot()
        with self._lock:
            snap.cache_hits += self.hits
            snap.cache_lookups += self.lookups
        return snap

    def close(self) -> None:
        self.backing.close()

    def abandon(self) -> None:
        self.backing.abandon()
