"""LRU read-through cache over another chunk store.

Chunks are immutable, so the cache never needs invalidation — the single
nicest systems consequence of content addressing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.chunk import Chunk, Uid
from repro.store.base import ChunkStore
from repro.store.stats import StoreStats


class CachedStore(ChunkStore):
    """Wraps a backing store with an LRU cache of decoded chunks."""

    def __init__(self, backing: ChunkStore, capacity: int = 4096) -> None:
        super().__init__(verify_reads=False)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.backing = backing
        self.capacity = capacity
        self.supports_in_place_sweep = backing.supports_in_place_sweep
        self._cache: "OrderedDict[Uid, Chunk]" = OrderedDict()
        self.hits = 0
        self.lookups = 0

    def _remember(self, chunk: Chunk) -> None:
        cache = self._cache
        cache[chunk.uid] = chunk
        cache.move_to_end(chunk.uid)
        while len(cache) > self.capacity:
            cache.popitem(last=False)

    def _insert(self, chunk: Chunk) -> None:
        self.backing.put(chunk)
        self._remember(chunk)

    def _insert_many(self, chunks: List[Chunk]) -> None:
        """Pass the whole batch down so durable backends batch fsyncs."""
        self.backing.put_many(chunks)
        for chunk in chunks:
            self._remember(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        self.lookups += 1
        cached = self._cache.get(uid)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(uid)
            return cached
        chunk = self.backing.get_maybe(uid)
        if chunk is not None:
            self._remember(chunk)
        return chunk

    def _contains(self, uid: Uid) -> bool:
        return uid in self._cache or self.backing.has(uid)

    def _ids(self) -> Iterator[Uid]:
        return iter(self.backing.ids())

    def _delete(self, uid: Uid) -> bool:
        self._cache.pop(uid, None)
        return self.backing.delete(uid)

    def __len__(self) -> int:
        return len(self.backing)

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def physical_size(self) -> int:
        return self.backing.physical_size()

    def stats_snapshot(self) -> StoreStats:
        """The backing store's snapshot plus this layer's cache counters."""
        snap = self.backing.stats_snapshot()
        snap.cache_hits += self.hits
        snap.cache_lookups += self.lookups
        return snap

    def close(self) -> None:
        self.backing.close()

    def abandon(self) -> None:
        self.backing.abandon()
