"""Background integrity scrubbing for chunk stores.

The uid *is* the checksum: a scrub pass re-hashes every materialized
payload against its content address — the same primitive as client-side
verification (§III-C), but run server-side over the whole store so bit rot
is found before a client trips over it.  Corrupt copies are quarantined
(deleted, so reads turn into honest misses instead of wrong bytes) and,
when the store is a replicated :class:`~repro.cluster.cluster.ClusterStore`,
re-copied from a healthy replica on the spot.

Transient wire corruption is filtered by re-reading once before declaring
rot; transient store errors are retried through an (injectable, instant by
default) :class:`~repro.faults.retry.RetryPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.chunk import Chunk, Uid
from repro.errors import (
    ChunkCorruptionError,
    StoreError,
    TransientError,
    TransientStoreError,
)
from repro.faults.retry import RetryPolicy
from repro.store.base import ChunkStore


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    scanned: int = 0
    ok: int = 0
    #: Copies whose bytes did not hash to their uid (after a re-read).
    corrupt: int = 0
    #: Corrupt copies replaced from a healthy replica (cluster only).
    repaired: int = 0
    #: Corrupt copies removed with no healthy source available.
    quarantined: int = 0
    #: Ids the store listed but could not produce bytes for.
    missing: int = 0
    #: Copies skipped because every read attempt failed transiently.
    unreadable: int = 0
    #: First-read mismatches that a re-read resolved (wire corruption).
    transient_mismatches: int = 0
    seconds: float = 0.0
    corrupt_uids: List[Uid] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when nothing was found corrupt, missing, or unreadable."""
        return self.corrupt == 0 and self.missing == 0 and self.unreadable == 0

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"scrub: {self.scanned} copies in {self.seconds:.3f}s — "
            f"{self.ok} ok, {self.corrupt} corrupt "
            f"({self.repaired} repaired, {self.quarantined} quarantined), "
            f"{self.missing} missing, {self.unreadable} unreadable"
        )


def _read_copy_once(
    store: ChunkStore, uid: Uid, retry: RetryPolicy
) -> Tuple[str, Optional[Chunk]]:
    """One verified read: ('ok'|'corrupt'|'missing'|'unreadable', chunk)."""
    try:
        chunk = retry.call(lambda: store.get_maybe(uid))
    except ChunkCorruptionError:
        return "corrupt", None
    except TransientError:
        return "unreadable", None
    except StoreError:
        # e.g. a torn record on disk: bytes exist but cannot be framed.
        return "corrupt", None
    if chunk is None:
        return "missing", None
    if not chunk.is_valid():
        return "corrupt", chunk
    return "ok", chunk


def _frame_verdict(store: ChunkStore, uid: Uid) -> Optional[str]:
    """Ask the physical layer for an on-disk frame diagnosis, if it has one.

    Pack-style backends expose ``diagnose_record`` returning
    ``'ok' | 'missing' | 'torn' | 'crc' | 'codec'``; cache wrappers are
    peeled via their public ``backing`` attribute.  None when no layer
    understands record frames (dict- and file-per-segment stores).
    """
    depth = 0
    while depth < 8:
        probe = getattr(store, "diagnose_record", None)
        if callable(probe):
            verdict = probe(uid)
            return verdict if isinstance(verdict, str) else None
        backing = getattr(store, "backing", None)
        if not isinstance(backing, ChunkStore):
            return None
        store = backing
        depth += 1
    return None


def diagnose_copy(
    store: ChunkStore,
    uid: Uid,
    retry: Optional[RetryPolicy] = None,
    reread_on_mismatch: bool = True,
) -> Tuple[str, Optional[Chunk], bool]:
    """Verify one stored copy against its content address.

    Returns ``(status, chunk, resolved)`` where ``status`` is one of
    ``'ok' | 'corrupt' | 'missing' | 'unreadable'`` and ``resolved`` is
    True when the first read mismatched but a re-read verified — wire
    corruption, not rot on disk.  This is the shared verification
    primitive: the scrubber, the cluster's ``durability_check``, and
    Merkle anti-entropy all discriminate wire from disk the same way.

    On a packed backend the wire-vs-disk question has a cheaper, sharper
    answer than a re-read: the record frame's CRC on disk.  When the
    physical layer reports deterministic frame damage (``'crc'`` or
    ``'torn'``), the copy is rot — no re-read can resolve it, so none is
    spent; only an intact frame falls back to the re-read heuristic.
    """
    retry = retry if retry is not None else RetryPolicy.instant()
    status, chunk = _read_copy_once(store, uid, retry)
    if status == "corrupt":
        if _frame_verdict(store, uid) in ("crc", "torn"):
            return status, chunk, False
        if reread_on_mismatch:
            second_status, second_chunk = _read_copy_once(store, uid, retry)
            if second_status == "ok":
                return second_status, second_chunk, True
    return status, chunk, False


class Scrubber:
    """Walks a store re-hashing every copy; quarantines and repairs rot."""

    def __init__(
        self,
        store: ChunkStore,
        reread_on_mismatch: bool = True,
        retry: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,  # fbcheck: ignore[FB-DETERM]
    ) -> None:
        self.store = store
        self.reread_on_mismatch = reread_on_mismatch
        self.retry = retry if retry is not None else RetryPolicy.instant()
        self.clock = clock

    # -- read helpers --------------------------------------------------------

    def _read_copy(self, store: ChunkStore, uid: Uid) -> Tuple[str, Optional[Chunk]]:
        """One verified read: ('ok'|'corrupt'|'missing'|'unreadable', chunk)."""
        return _read_copy_once(store, uid, self.retry)

    def _diagnose(
        self, store: ChunkStore, uid: Uid, report: ScrubReport
    ) -> Tuple[str, Optional[Chunk]]:
        """Read a copy, re-reading once to filter transient mismatches."""
        status, chunk, resolved = diagnose_copy(
            store, uid, retry=self.retry, reread_on_mismatch=self.reread_on_mismatch
        )
        if resolved:
            report.transient_mismatches += 1
        return status, chunk

    # -- scrub entry points ---------------------------------------------------

    def scrub(self) -> ScrubReport:
        """Scrub the configured store (replica-aware for clusters)."""
        from repro.cluster.cluster import ClusterStore

        start = self.clock()
        if isinstance(self.store, ClusterStore):
            report = self._scrub_cluster(self.store)
        else:
            report = self._scrub_flat(self.store)
        report.seconds = self.clock() - start
        return report

    def _scrub_flat(self, store: ChunkStore) -> ScrubReport:
        """Scrub a single-copy store: quarantine rot (no repair source)."""
        report = ScrubReport()
        for uid in store.ids():
            report.scanned += 1
            status, _ = self._diagnose(store, uid, report)
            if status == "ok":
                report.ok += 1
            elif status == "missing":
                report.missing += 1
            elif status == "unreadable":
                report.unreadable += 1
            else:
                report.corrupt += 1
                report.corrupt_uids.append(uid)
                store.delete(uid)
                report.quarantined += 1
        return report

    def _scrub_cluster(self, cluster: "ClusterStore") -> ScrubReport:
        """Scrub each live node's copies; repair rot from healthy replicas.

        QUARANTINED nodes are skipped on both sides: their copies are not
        worth repairing in place (re-admission re-verifies everything),
        and they are never used as a repair source.
        """
        report = ScrubReport()
        for node in cluster.trusted_nodes():
            for uid in node.store.ids():
                report.scanned += 1
                status, _ = self._diagnose(node.store, uid, report)
                if status == "ok":
                    report.ok += 1
                    continue
                if status == "missing":
                    report.missing += 1
                    continue
                if status == "unreadable":
                    report.unreadable += 1
                    continue
                report.corrupt += 1
                report.corrupt_uids.append(uid)
                node.store.delete(uid)
                healthy = self._healthy_copy(cluster, uid, exclude=node)
                if healthy is not None:
                    try:
                        self.retry.call(lambda: self._put_verified(node.store, healthy))
                    except TransientError:
                        # Copy stays quarantined; the next repair() places it.
                        report.quarantined += 1
                        continue
                    report.repaired += 1
                else:
                    report.quarantined += 1
        return report

    @staticmethod
    def _put_verified(store: ChunkStore, chunk: Chunk) -> None:
        """Write a repair copy and confirm the stored bytes hash to the uid
        (a torn repair write must not replace rot with fresh rot)."""
        store.put(chunk)
        got = store.get_maybe(chunk.uid)
        if got is None or not got.is_valid():
            # put() dedups on uid: evict the torn copy or the retry no-ops.
            store.delete(chunk.uid)
            raise TransientStoreError(
                f"repair write of {chunk.uid.short()} did not verify"
            )

    def _healthy_copy(
        self, cluster: "ClusterStore", uid: Uid, exclude: object
    ) -> Optional[Chunk]:
        """A verified copy from any other trusted live node (placement
        first) — never from a QUARANTINED replica."""
        trusted = cluster.trusted_nodes()
        candidates = [
            node
            for node in cluster.replica_nodes(uid)
            if node in trusted and node is not exclude
        ]
        candidates.extend(
            node
            for node in trusted
            if node is not exclude and node not in candidates
        )
        for node in candidates:
            if not node.store.has(uid):
                continue
            status, chunk = self._read_copy(node.store, uid)
            if status == "ok" and chunk is not None:
                return chunk
        return None


def scrub(store: ChunkStore, **kwargs: object) -> ScrubReport:
    """Convenience: one scrub pass over ``store`` with default settings."""
    return Scrubber(store, **kwargs).scrub()  # type: ignore[arg-type]
