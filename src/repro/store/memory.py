"""Dict-backed chunk store (the default substrate for tests and benches)."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.chunk import Chunk, Uid
from repro.store.base import ChunkStore


class InMemoryStore(ChunkStore):
    """Chunks held in a process-local dict keyed by uid."""

    supports_in_place_sweep = True

    def __init__(self, verify_reads: bool = False) -> None:
        super().__init__(verify_reads=verify_reads)
        self._chunks: Dict[Uid, Chunk] = {}

    def _insert(self, chunk: Chunk) -> None:
        self._chunks[chunk.uid] = chunk

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        return self._chunks.get(uid)

    def _contains(self, uid: Uid) -> bool:
        return uid in self._chunks

    def _ids(self) -> Iterator[Uid]:
        return iter(list(self._chunks.keys()))

    def _delete(self, uid: Uid) -> bool:
        return self._chunks.pop(uid, None) is not None

    def __len__(self) -> int:
        return len(self._chunks)

    def physical_size(self) -> int:
        return sum(chunk.size() for chunk in self._chunks.values())

    def clear(self) -> None:
        """Drop every chunk (testing helper; violates immutability on purpose)."""
        self._chunks.clear()
