"""LRU cache of *decoded* POS-Tree nodes over another chunk store.

:class:`~repro.store.cached.CachedStore` caches raw chunks, which saves
the device read but still pays entry decoding on every descent.  At tree
fan-outs of ~60 the decode dominates a hot lookup, so this wrapper caches
the decoded node objects themselves — a hot descent touches no codec, no
CRC, and no disk.  Content addressing makes this safe: a uid names one
immutable byte string forever, so a decoded node never needs
invalidation, and sharing the cached object across readers is sound
because nodes are sealed (FB-IMMUT).

The cache is consumed through the duck-typed :meth:`get_node` hook: tree
handles probe ``getattr(store, "get_node", None)`` and fall back to
``get`` + decode when absent.  That keeps :mod:`repro.postree` (layer 5)
ignorant of this module (layer 9, beside gc/scrub) — the tree knows only
that *some* stores can hand it pre-decoded nodes.

This is the shared cache ROADMAP item 1 puts in front of concurrent
clients, so the node map and its counters are lock-guarded with the
discipline declared via ``# guarded-by:`` annotations (FB-LOCKED proves
every access sits under a dominating ``with self._lock``).  Decoding and
backing-store reads happen outside the lock: a cache miss must not stall
every hit behind the codec.  Read verification is inherited from the
backing store unless overridden — wrapping a verifying store must not
silently disable its tamper checks (the CachedStore regression class).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, List, Optional, Union

from repro.chunk import Chunk, ChunkType, Uid
from repro.postree.listtree import ListIndexNode, ListLeafNode
from repro.postree.node import IndexNode, LeafNode, load_node
from repro.store.base import ChunkStore, physical_store
from repro.store.stats import StoreStats

#: Everything ``get_node`` can hand back: keyed-tree nodes, list-tree
#: nodes, or the raw chunk itself for types with no richer decoding
#: (BLOB, FNODE, META, ...).
DecodedNode = Union[LeafNode, IndexNode, ListLeafNode, ListIndexNode, Chunk]


def decode_chunk(chunk: Chunk) -> DecodedNode:
    """Decode one chunk into its natural in-memory node form."""
    if chunk.type in (ChunkType.LEAF, ChunkType.INDEX):
        return load_node(chunk)
    if chunk.type == ChunkType.LIST_LEAF:
        return ListLeafNode.from_chunk(chunk)
    if chunk.type == ChunkType.LIST_INDEX:
        return ListIndexNode.from_chunk(chunk)
    return chunk


class NodeCacheStore(ChunkStore):
    """Wraps a backing store with an LRU cache of decoded tree nodes."""

    def __init__(
        self,
        backing: ChunkStore,
        capacity: int = 4096,
        verify_reads: Optional[bool] = None,
    ) -> None:
        if verify_reads is None:
            verify_reads = backing.verify_reads
        super().__init__(verify_reads=verify_reads)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.backing = backing
        self.capacity = capacity
        self.supports_in_place_sweep = backing.supports_in_place_sweep
        self._lock = threading.Lock()
        self._nodes: "OrderedDict[Uid, DecodedNode]" = OrderedDict()  # guarded-by: self._lock
        self.node_hits = 0  # guarded-by: self._lock
        self.node_lookups = 0  # guarded-by: self._lock
        # Decoded nodes outlive their chunks unless the physical layer
        # tells us it swept them (gc, quarantine resync): a descent must
        # not keep resolving through storage that no longer holds it.
        physical_store(backing).subscribe_sweeps(self)

    # -- the decoded-node surface --------------------------------------------

    def get_node(self, uid: Uid) -> DecodedNode:
        """Fetch a chunk decoded to its node form, via the LRU cache.

        Raises :class:`~repro.errors.ChunkNotFoundError` like ``get``.
        """
        with self._lock:
            self.node_lookups += 1
            cached = self._nodes.get(uid)
            if cached is not None:
                self.node_hits += 1
                self._nodes.move_to_end(uid)
                return cached
        decoded = decode_chunk(self.backing.get(uid))
        with self._lock:
            self._remember(uid, decoded)
        return decoded

    def _remember(self, uid: Uid, decoded: DecodedNode) -> None:  # holds-lock: self._lock
        nodes = self._nodes
        nodes[uid] = decoded
        nodes.move_to_end(uid)
        while len(nodes) > self.capacity:
            nodes.popitem(last=False)

    # -- primitives delegate to the backing store ----------------------------

    def _insert(self, chunk: Chunk) -> None:
        self.backing.put(chunk)

    def _insert_many(self, chunks: List[Chunk]) -> None:
        self.backing.put_many(chunks)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        return self.backing.get_maybe(uid)

    def _contains(self, uid: Uid) -> bool:
        return self.backing.has(uid)

    def _ids(self) -> Iterator[Uid]:
        return iter(self.backing.ids())

    def _delete(self, uid: Uid) -> bool:
        with self._lock:
            self._nodes.pop(uid, None)
        return self.backing.delete(uid)

    def invalidate_swept(self, uids: List[Uid]) -> None:
        """Evict decoded nodes whose backing chunks were swept elsewhere."""
        with self._lock:
            for uid in uids:
                self._nodes.pop(uid, None)

    def __len__(self) -> int:
        return len(self.backing)

    @property
    def node_hit_rate(self) -> float:
        """Fraction of ``get_node`` calls served without decoding."""
        with self._lock:
            if self.node_lookups == 0:
                return 0.0
            return self.node_hits / self.node_lookups

    def physical_size(self) -> int:
        return self.backing.physical_size()

    def stats_snapshot(self) -> StoreStats:
        """The backing store's snapshot plus this layer's cache counters."""
        snap = self.backing.stats_snapshot()
        with self._lock:
            snap.cache_hits += self.node_hits
            snap.cache_lookups += self.node_lookups
        return snap

    def close(self) -> None:
        self.backing.close()

    def abandon(self) -> None:
        self.backing.abandon()
