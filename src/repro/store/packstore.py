"""Append-only pack-file chunk store: the inode-frugal durable backend.

Where :class:`~repro.store.filestore.FileStore` pays an open/seek/read/
close syscall trio per fetch, a PackStore serves reads from mmap-backed
pack segments — one file per ~64 MB of chunks instead of one file per
chunk family — with three additions the indexing-structure survey
(arXiv:2003.02090) shows matter at scale:

- **CRC-framed records with per-record compression.**  Each record is
  ``[tag][codec][stored_len][raw_len][digest][crc32]`` followed by the
  stored payload.  The codec byte is negotiated per record: ``zstd`` when
  the optional ``zstandard`` module is importable, stdlib ``zlib``
  otherwise, raw whenever compression does not shrink the payload.  The
  CRC covers header and payload, so frame rot is detected before bytes
  are ever decompressed; the embedded digest lets index rebuilds recover
  uids without decompressing.
- **A durable FBPX offset index** with per-segment watermarks, written
  with the same fsync-before-rename discipline as every other snapshot in
  the repo (:mod:`repro.store.durability`) and instrumented with
  crash-points so the torture suite can kill the store at every append
  and index-save boundary.  Torn tails truncate on recovery; interior rot
  raises the :mod:`repro.errors` taxonomy errors.
- **A bloom existence filter** over the uid space so negative ``has()``
  probes are answered from a few bit tests — no index probe, no disk.
  Content addresses are already uniform SHA-256 output, so the filter's
  hash functions are just four 64-bit slices of the digest.

Deletes drop the index entry (durable at the next index snapshot, exactly
like FileStore); dead bytes are reclaimed by :meth:`PackStore.compact_segments`,
which rewrites live records into fresh segments and unlinks the old ones —
the pack-aware sweep :mod:`repro.store.gc` drives.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import (
    ChunkCorruptionError,
    DiskFaultError,
    DiskFullError,
    StoreClosedError,
    StoreError,
    TransientStoreError,
    map_os_error,
)
from repro.faults.crash import crashing_write, crashpoint
from repro.faults.retry import RetryPolicy
from repro.store.base import ChunkStore
from repro.store.durability import (
    durable_replace,
    fsync_dir,
    fsync_file,
    fsync_path,
    read_check,
    write_bytes,
)

try:  # optional accelerator: per-record zstd compression
    import zstandard as _zstd
except ImportError:  # pragma: no cover - optional dependency
    _zstd = None  # type: ignore[assignment]

#: Record frame: type tag, codec id, stored length, raw length, digest.
#: A >I crc32 over these fields plus the stored payload follows.
_FRAME = struct.Struct(">BBII32s")
_CRC = struct.Struct(">I")
_FRAME_SIZE = _FRAME.size + _CRC.size

#: Codec ids carried in the frame's second byte.
_CODEC_RAW = 0
_CODEC_ZLIB = 1
_CODEC_ZSTD = 2

_INDEX_MAGIC = b"FBPX0001"
_INDEX_ENTRY = struct.Struct(">32sIQI")  # digest, segment, offset, record length
_WATERMARK_ENTRY = struct.Struct(">IQ")  # segment number, indexed length

#: Hot-path tag decode: a dict probe is ~10x cheaper than ChunkType(tag).
_TAG_TO_TYPE: Dict[int, ChunkType] = {int(member): member for member in ChunkType}


class _Bloom:
    """Bit-array existence filter keyed on SHA-256 digests.

    uids are already uniform hash output, so k=4 independent hash
    functions fall out of slicing the digest into four big-endian 64-bit
    words — no extra hashing, fully deterministic across runs.
    """

    __slots__ = ("_bits", "_mask", "count")

    #: Target bits per key; 16 bits/key at k=4 gives ~0.24% false positives.
    BITS_PER_KEY = 16

    def __init__(self, capacity: int = 1024) -> None:
        size = 1024
        while size < capacity * self.BITS_PER_KEY:
            size <<= 1
        self._bits = bytearray(size // 8)
        self._mask = size - 1
        self.count = 0

    def add(self, uid: Uid) -> None:
        bits = self._bits
        mask = self._mask
        for word in struct.unpack(">4Q", uid.digest):
            position = word & mask
            bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def __contains__(self, uid: Uid) -> bool:
        bits = self._bits
        mask = self._mask
        for word in struct.unpack(">4Q", uid.digest):
            position = word & mask
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def saturated(self) -> bool:
        """True once additions exceed the sizing target (rebuild time)."""
        return self.count * self.BITS_PER_KEY > (self._mask + 1)


class PackStore(ChunkStore):
    """Durable chunk store over compressed, CRC-framed pack files."""

    supports_in_place_sweep = True

    #: Unsynced appends kept in memory for fsync-failure recovery; once
    #: the buffer exceeds this, the store forces a durable point.
    _TAIL_LIMIT = 4 * 1024 * 1024

    def __init__(
        self,
        directory: str,
        verify_reads: bool = False,
        segment_limit: int = 64 * 1024 * 1024,
        compression: str = "auto",
        compress_min: int = 64,
    ) -> None:
        super().__init__(verify_reads=verify_reads)
        self._dir = directory
        self._pack_dir = os.path.join(directory, "packs")
        self._segment_limit = segment_limit
        self._compress_min = compress_min
        self._codec = self._resolve_codec(compression)
        #: uid -> (segment, offset, record length incl. frame)
        self._index: Dict[Uid, Tuple[int, int, int]] = {}
        self._maps: Dict[int, mmap.mmap] = {}
        self._closed = False
        self._poisoned = False
        #: Record blobs appended since the last successful fsync: the
        #: rewrite buffer for fsyncgate recovery (reopen-and-rewrite).
        self._tail: List[bytes] = []
        self._tail_bytes = 0
        #: Bounded backoff for transient ENOSPC on the append path only;
        #: a failed *fsync* is never retried (see :meth:`_recover_fsync`).
        self._disk_retry = RetryPolicy(attempts=3, base_delay=0.002, max_delay=0.01)
        self._dead_records = 0
        self._dead_bytes = 0
        self.bloom_negatives = 0
        os.makedirs(self._pack_dir, exist_ok=True)
        self._segments = sorted(
            int(name[5:-4])
            for name in os.listdir(self._pack_dir)
            if name.startswith("pack-") and name.endswith(".dat")
        )
        if not self._segments:
            self._segments = [0]
            open(self._segment_path(0), "ab").close()
        self._active = self._segments[-1]
        if not self._load_index():
            self._rebuild_index()
        # Recovery may truncate a torn tail off the active segment, and
        # os.truncate does not move an already-open handle's position.
        # Open the O_APPEND writer only now, so tell() equals true EOF
        # and appended records are indexed at the offset they land on.
        self._active = self._segments[-1]
        self._writer = open(self._segment_path(self._active), "ab")
        #: Segment offset at the last successful fsync (durable floor).
        self._synced = self._writer.tell()
        self._bloom = self._rebuild_bloom()

    @property
    def poisoned(self) -> bool:
        """True once an unrecoverable disk fault disabled the writer."""
        return self._poisoned

    # -- codec negotiation ---------------------------------------------------

    @staticmethod
    def _resolve_codec(compression: str) -> Optional[int]:
        """Map the requested policy to a codec id (None = store raw)."""
        if compression == "none":
            return None
        if compression == "zlib":
            return _CODEC_ZLIB
        if compression == "zstd":
            if _zstd is None:
                raise ValueError("compression='zstd' but zstandard is not importable")
            return _CODEC_ZSTD
        if compression == "auto":
            return _CODEC_ZSTD if _zstd is not None else _CODEC_ZLIB
        raise ValueError(f"unknown compression policy {compression!r}")

    @staticmethod
    def _compress(codec: int, raw: bytes) -> bytes:
        if codec == _CODEC_ZSTD:
            return _zstd.ZstdCompressor().compress(raw)  # type: ignore[union-attr]
        return zlib.compress(raw, 6)

    @staticmethod
    def _decompress(codec: int, stored: bytes, uid: Uid) -> bytes:
        if codec == _CODEC_RAW:
            return stored
        if codec == _CODEC_ZLIB:
            try:
                return zlib.decompress(stored)
            except zlib.error as exc:
                raise ChunkCorruptionError(
                    f"pack record for {uid.short()} fails zlib inflate: {exc}"
                ) from exc
        if codec == _CODEC_ZSTD:
            if _zstd is None:
                # The data is (probably) fine; this environment cannot read
                # it.  Transient, not rot: do not let a scrub quarantine it.
                raise TransientStoreError(
                    f"record for {uid.short()} is zstd-compressed but "
                    f"zstandard is not importable here"
                )
            try:
                return _zstd.ZstdDecompressor().decompress(stored)
            except _zstd.ZstdError as exc:
                raise ChunkCorruptionError(
                    f"pack record for {uid.short()} fails zstd inflate: {exc}"
                ) from exc
        raise ChunkCorruptionError(
            f"pack record for {uid.short()} carries unknown codec {codec}"
        )

    # -- paths ---------------------------------------------------------------

    def _segment_path(self, number: int) -> str:
        return os.path.join(self._pack_dir, f"pack-{number:06d}.dat")

    def _index_path(self) -> str:
        return os.path.join(self._dir, "pack-index.dat")

    # -- record framing ------------------------------------------------------

    def _encode_record(self, chunk: Chunk) -> bytes:
        raw = chunk.data
        codec = _CODEC_RAW
        stored = raw
        if self._codec is not None and len(raw) >= self._compress_min:
            candidate = self._compress(self._codec, raw)
            if len(candidate) < len(raw):
                codec = self._codec
                stored = candidate
        fields = _FRAME.pack(
            int(chunk.type), codec, len(stored), len(raw), chunk.uid.digest
        )
        return fields + _CRC.pack(zlib.crc32(fields + stored)) + stored

    @staticmethod
    def _parse_frame(frame: bytes) -> Tuple[int, int, int, int, bytes, int]:
        tag, codec, stored_len, raw_len, digest = _FRAME.unpack(frame[: _FRAME.size])
        (crc,) = _CRC.unpack(frame[_FRAME.size : _FRAME_SIZE])
        return tag, codec, stored_len, raw_len, digest, crc

    def _decode_record(self, record: bytes, uid: Uid) -> Chunk:
        """Frame-check, decompress, and rehydrate one packed record."""
        tag, codec, stored_len, raw_len, digest = _FRAME.unpack_from(record)
        (crc,) = _CRC.unpack_from(record, _FRAME.size)
        stored = record[_FRAME_SIZE : _FRAME_SIZE + stored_len]
        if len(stored) != stored_len:
            raise StoreError(f"torn pack record for {uid.short()}")
        # Chained crc32 equals crc32(fields + stored) without the concat.
        if zlib.crc32(stored, zlib.crc32(record[: _FRAME.size])) != crc:
            raise ChunkCorruptionError(
                f"pack record for {uid.short()} fails frame CRC"
            )
        if digest != uid.digest:
            raise ChunkCorruptionError(
                f"pack record for {uid.short()} carries digest "
                f"{Uid(digest).short()}"
            )
        if codec == _CODEC_RAW:
            raw = stored
        else:
            raw = self._decompress(codec, stored, uid)
        if len(raw) != raw_len:
            raise ChunkCorruptionError(
                f"pack record for {uid.short()} inflates to {len(raw)}B, "
                f"frame says {raw_len}B"
            )
        chunk_type = _TAG_TO_TYPE.get(tag)
        if chunk_type is None:
            raise ChunkCorruptionError(
                f"pack record for {uid.short()} carries unknown tag {tag}"
            )
        return Chunk(chunk_type, raw, uid=uid)

    # -- index persistence ---------------------------------------------------

    def _load_index(self) -> bool:
        """Load the FBPX snapshot; False if absent, corrupt, or stale.

        Same staleness rules as FileStore's FBIX (every watermarked
        segment must exist, none may have shrunk, every entry must fall
        inside its watermark), plus two pack-specific steps: segment files
        *below* the newest watermarked segment but absent from the table
        are compaction leftovers from a crash and are unlinked; segment
        files *above* it post-date the snapshot and are scanned from zero.
        """
        path = self._index_path()
        if not os.path.exists(path):
            return False
        watermarks: Dict[int, int] = {}
        try:
            with open(path, "rb") as handle:
                magic = handle.read(len(_INDEX_MAGIC))
                if magic != _INDEX_MAGIC:
                    return False
                (count,) = struct.unpack(">Q", handle.read(8))
                (seg_count,) = struct.unpack(">Q", handle.read(8))
                for _ in range(seg_count):
                    raw = handle.read(_WATERMARK_ENTRY.size)
                    if len(raw) != _WATERMARK_ENTRY.size:
                        return False
                    segment, length = _WATERMARK_ENTRY.unpack(raw)
                    watermarks[segment] = length
                for _ in range(count):
                    raw = handle.read(_INDEX_ENTRY.size)
                    if len(raw) != _INDEX_ENTRY.size:
                        return False
                    digest, segment, offset, length = _INDEX_ENTRY.unpack(raw)
                    self._index[Uid(digest)] = (segment, offset, length)
                self.stats.record_io(read=handle.tell())
        except (OSError, struct.error):
            self._index.clear()
            return False
        if not watermarks:
            self._index.clear()
            return False
        known = set(self._segments)
        for segment, watermark in watermarks.items():
            if segment not in known:
                self._index.clear()
                return False  # indexed segment vanished
            if os.path.getsize(self._segment_path(segment)) < watermark:
                self._index.clear()
                return False  # segment shrank: offsets can dangle
        for segment, offset, length in self._index.values():
            if segment not in watermarks:
                self._index.clear()
                return False  # entry points into an untracked segment
            if offset + length > watermarks[segment]:
                self._index.clear()
                return False  # record past the indexed region
        newest = max(watermarks)
        survivors: List[int] = []
        for segment in self._segments:
            if segment not in watermarks and segment < newest:
                # A segment older than the snapshot that the snapshot does
                # not track: compaction rewrote its live records and died
                # before the unlink.  Finishing the unlink is safe.
                self._drop_segment_file(segment)
            else:
                survivors.append(segment)
        self._segments = survivors
        for segment in self._segments:
            self._scan_segment(segment, start=watermarks.get(segment, 0))
        return True

    def _rebuild_index(self) -> None:
        """Reconstruct the index by scanning every pack segment."""
        self._index.clear()
        for segment in self._segments:
            self._scan_segment(segment)

    def _scan_segment(self, segment: int, start: int = 0) -> None:
        """Index records from ``start``; truncate tears, raise on rot.

        A *torn tail* — an incomplete frame or payload at EOF, the
        signature of a crashed append — is truncated away so the segment
        ends on a record boundary again.  A *complete* record that fails
        its CRC (or carries an unknown tag) is interior rot: appends are
        prefix writes, so damage inside a full frame cannot be a crash
        artifact, and recovery stops loudly rather than silently dropping
        indexed history.  The embedded digest means no decompression is
        needed here, so even zstd-packed segments rebuild in an
        environment without zstandard.
        """
        path = self._segment_path(segment)
        end = os.path.getsize(path)
        with open(path, "rb") as handle:
            handle.seek(start)
            offset = start
            torn = False
            while True:
                frame = handle.read(_FRAME_SIZE)
                if not frame:
                    break  # clean EOF
                if len(frame) < _FRAME_SIZE:
                    torn = True  # partial frame at EOF
                    break
                tag, codec, stored_len, raw_len, digest, crc = self._parse_frame(frame)
                stored = handle.read(stored_len)
                if len(stored) < stored_len:
                    torn = True  # partial payload at EOF
                    break
                if zlib.crc32(frame[: _FRAME.size] + stored) != crc:
                    raise ChunkCorruptionError(
                        f"pack segment {segment} has a rotten record at "
                        f"offset {offset} (frame CRC mismatch)"
                    )
                try:
                    ChunkType(tag)
                except ValueError as exc:
                    raise ChunkCorruptionError(
                        f"pack segment {segment} has a rotten record at "
                        f"offset {offset} (unknown tag {tag})"
                    ) from exc
                length = _FRAME_SIZE + stored_len
                self._index[Uid(digest)] = (segment, offset, length)
                offset += length
            self.stats.record_io(read=offset - start)
        if torn and offset < end:
            os.truncate(path, offset)
            fsync_path(path)

    def _save_index(self) -> None:
        """Write the FBPX snapshot durably (fsync before rename).

        Instrumented as the ``packindex-write`` / ``packindex-fsync`` /
        ``packindex-replace`` crash boundaries so the torture suite can
        kill the store around every step.
        """
        path = self._index_path()
        tmp = path + ".tmp"
        parts: List[bytes] = [_INDEX_MAGIC]
        parts.append(struct.pack(">Q", len(self._index)))
        parts.append(struct.pack(">Q", len(self._segments)))
        for segment in self._segments:
            try:
                length = os.path.getsize(self._segment_path(segment))
            except FileNotFoundError:
                length = 0  # never-flushed fresh segment: watermark at zero
            except OSError as exc:
                raise map_os_error(exc, "stat", self._segment_path(segment)) from exc
            parts.append(_WATERMARK_ENTRY.pack(segment, length))
        for uid, (segment, offset, length) in self._index.items():
            parts.append(_INDEX_ENTRY.pack(uid.digest, segment, offset, length))
        payload = b"".join(parts)
        with open(tmp, "wb") as handle:
            crashing_write(handle, payload, kind="packindex-write", label="pack-index")
            crashpoint("packindex-fsync", "pack-index")
            fsync_file(handle)
        crashpoint("packindex-replace", "pack-index")
        durable_replace(tmp, path)
        self.stats.record_io(written=len(payload))

    def _rebuild_bloom(self) -> _Bloom:
        bloom = _Bloom(capacity=max(1024, len(self._index)))
        for uid in self._index:
            bloom.add(uid)
        return bloom

    # -- mmap read path ------------------------------------------------------

    def _view(self, segment: int, offset: int, length: int) -> bytes:
        """Slice ``length`` bytes out of a segment through its mmap.

        Maps lazily and remaps when the active segment has grown past the
        cached map.  An empty or shrunken segment yields a torn-record
        error rather than wrong bytes.
        """
        mapped = self._maps.get(segment)
        if mapped is None or offset + length > len(mapped):
            if mapped is not None:
                mapped.close()
                self._maps.pop(segment, None)
            path = self._segment_path(segment)
            if segment == self._active and not self._writer.closed:
                try:
                    self._writer.flush()
                except OSError as exc:
                    raise map_os_error(exc, "write", path) from exc
            try:
                read_check(path, label=f"pack:{segment}")
                size = os.path.getsize(path)
            except FileNotFoundError as exc:
                raise StoreError(f"pack segment {segment} vanished") from exc
            except OSError as exc:
                raise map_os_error(exc, "read", path) from exc
            if offset + length > size:
                raise StoreError(
                    f"pack segment {segment} holds {size}B, record needs "
                    f"{offset + length}"
                )
            try:
                with open(path, "rb") as handle:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except OSError as exc:
                raise map_os_error(exc, "read", path) from exc
            self._maps[segment] = mapped
        return mapped[offset : offset + length]

    def _drop_maps(self) -> None:
        for mapped in self._maps.values():
            mapped.close()
        self._maps.clear()

    def _drop_segment_file(self, segment: int) -> None:
        mapped = self._maps.pop(segment, None)
        if mapped is not None:
            mapped.close()
        try:
            os.remove(self._segment_path(segment))
        except FileNotFoundError:
            pass  # already gone: unlink is idempotent across crashes
        except OSError as exc:
            raise map_os_error(exc, "unlink", self._segment_path(segment)) from exc

    # -- primitives ----------------------------------------------------------

    def _check_writer(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")
        if self._poisoned:
            raise DiskFaultError(
                f"{self._dir}: writer poisoned by an unrecoverable disk fault",
                syscall="write",
                path=self._segment_path(self._active),
            )

    def _roll_segment(self) -> None:
        """Retire the active segment and open the next one.

        The retiring segment gets watermarked at its full size by the
        next index snapshot; fsync (with fsync-failure recovery) before
        closing so a power loss cannot shrink it below that watermark.
        """
        self._sync_writer(f"roll:{self._active}")
        self._writer.close()
        self._active += 1
        self._segments.append(self._active)
        self._writer = open(self._segment_path(self._active), "ab")
        self._synced = 0
        self._tail = []
        self._tail_bytes = 0

    def _unwind_append(self, offset: int) -> None:
        """Un-ack a failed append: truncate the partial record away.

        A short write may have materialized a strict prefix; the index
        and bloom have not been touched yet, so truncating back to
        ``offset`` keeps the segment ending on a record boundary.  If
        even the truncate fails the writer is poisoned.
        """
        try:
            self._writer.flush()
            os.ftruncate(self._writer.fileno(), offset)
            self._writer.seek(0, os.SEEK_END)
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "truncate", self._segment_path(self._active)) from exc

    def _sync_writer(self, label: str) -> None:
        """Fsync the active segment, recovering a failed fsync safely."""
        try:
            fsync_file(self._writer, label)
        except (DiskFullError, DiskFaultError) as exc:
            self._recover_fsync(exc)
        self._synced = self._writer.tell()
        self._tail = []
        self._tail_bytes = 0

    def _recover_fsync(self, cause: StoreError) -> None:
        """Reopen-and-rewrite after a failed fsync (fsyncgate discipline).

        The failed descriptor may have dropped the unsynced tail and
        would falsely report success if fsynced again, so it is never
        reused: open a fresh descriptor, truncate to the durable floor,
        rewrite the tail records, and fsync *that*.  Failing twice
        poisons the writer, un-indexes the records that never made it to
        the platter, and rebuilds the bloom over the pruned index.
        """
        path = self._segment_path(self._active)
        self._writer.close()
        last: StoreError = cause
        for _ in range(2):
            try:
                handle = open(path, "r+b")
            except OSError as exc:
                last = map_os_error(exc, "open", path)
                break
            try:
                handle.truncate(self._synced)
                handle.seek(self._synced)
                for blob in self._tail:
                    write_bytes(handle, blob)
                fsync_file(handle, "fsync-recovery")
            except (DiskFullError, DiskFaultError) as exc:
                last = exc
                handle.close()
                continue
            except OSError as exc:
                last = map_os_error(exc, "write", path)
                handle.close()
                continue
            self._writer = handle
            return
        self._poisoned = True
        doomed = [
            uid
            for uid, (segment, offset, _length) in self._index.items()
            if segment == self._active and offset >= self._synced
        ]
        for uid in doomed:
            del self._index[uid]
        self._bloom = self._rebuild_bloom()
        raise DiskFaultError(
            f"{path}: writer poisoned after failed fsync recovery "
            f"({len(doomed)} unsynced records un-acked): {last}",
            syscall="fsync",
            path=path,
        ) from last

    def _append(self, chunk: Chunk) -> None:
        """Append one framed record (write boundary; no flush)."""
        record = self._encode_record(chunk)
        if self._writer.tell() >= self._segment_limit:
            self._roll_segment()
        offset = self._writer.tell()
        try:
            crashing_write(
                self._writer, record, kind="pack-write", label=chunk.uid.short()
            )
        except (DiskFullError, DiskFaultError):
            self._unwind_append(offset)
            raise
        self._index[chunk.uid] = (self._active, offset, len(record))
        self._bloom.add(chunk.uid)
        if self._bloom.saturated:
            self._bloom = self._rebuild_bloom()
        self._tail.append(record)
        self._tail_bytes += len(record)
        self.stats.record_io(written=len(record))
        if self._tail_bytes > self._TAIL_LIMIT:
            # Bound the rewrite buffer: force a durable point so the
            # fsync-recovery tail cannot grow without limit.
            self._sync_writer("tail-limit")

    def _flush_writer(self) -> None:
        try:
            self._writer.flush()
        except OSError as exc:
            # Buffer state is unknowable after a failed flush: poison.
            self._poisoned = True
            raise map_os_error(exc, "write", self._segment_path(self._active)) from exc

    def _insert(self, chunk: Chunk) -> None:
        self._check_writer()
        self._disk_retry.call(lambda: self._append(chunk), retry_on=(DiskFullError,))
        self._flush_writer()

    def _insert_many(self, chunks: List[Chunk]) -> None:
        """Batched append: one fsync and one index snapshot per batch."""
        self._check_writer()
        for chunk in chunks:
            self._disk_retry.call(lambda c=chunk: self._append(c), retry_on=(DiskFullError,))
        crashpoint("pack-fsync", f"batch:{len(chunks)}")
        self._sync_writer(f"batch:{len(chunks)}")
        self._save_index()

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        if self._closed:
            raise StoreClosedError("store is closed")
        # The in-RAM index probe is cheaper than four bloom hashes, so on
        # the hit path skip the filter; it still screens every miss.
        location = self._index.get(uid)
        if location is None:
            if uid not in self._bloom:
                self.bloom_negatives += 1
            return None
        segment, offset, length = location
        record = self._view(segment, offset, length)
        self.stats.record_io(read=length)
        return self._decode_record(record, uid)

    def _contains(self, uid: Uid) -> bool:
        if uid not in self._bloom:
            self.bloom_negatives += 1
            return False
        return uid in self._index

    def _delete(self, uid: Uid) -> bool:
        """Drop the index entry; pack bytes die at the next compaction.

        Durable across reopen once an index snapshot lands (batch put,
        compaction, or close): the watermark table keeps dead records
        below the watermark from being rescanned back in.
        """
        location = self._index.pop(uid, None)
        if location is None:
            return False
        self._dead_records += 1
        self._dead_bytes += location[2]
        return True

    def _ids(self) -> Iterator[Uid]:
        return iter(list(self._index.keys()))

    def __len__(self) -> int:
        return len(self._index)

    # -- diagnostics ---------------------------------------------------------

    def diagnose_record(self, uid: Uid) -> str:
        """Frame-level verdict for one packed record (scrub integration).

        Returns ``'ok' | 'missing' | 'torn' | 'crc' | 'codec'`` without
        raising: the scrubber uses this to tell deterministic on-disk
        frame rot from transient wire trouble, skipping the pointless
        re-read it would otherwise spend on a packed store.
        """
        location = self._index.get(uid)
        if location is None:
            return "missing"
        segment, offset, length = location
        try:
            record = self._view(segment, offset, length)
        except StoreError:
            return "torn"
        try:
            self._decode_record(record, uid)
        except TransientStoreError:
            return "codec"
        except StoreError:  # ChunkCorruptionError is a ChunkError, not Store
            return "torn"
        except ChunkCorruptionError:
            return "crc"
        return "ok"

    def dead_space(self) -> Tuple[int, int]:
        """(records, bytes) deleted but not yet compacted away."""
        return self._dead_records, self._dead_bytes

    def disk_size(self) -> int:
        """Bytes currently occupied on disk by pack segments."""
        total = 0
        for segment in self._segments:
            try:
                total += os.path.getsize(self._segment_path(segment))
            except FileNotFoundError:
                pass  # fresh segment not yet materialized
            except OSError as exc:
                raise map_os_error(exc, "stat", self._segment_path(segment)) from exc
        return total

    # -- compaction ----------------------------------------------------------

    def compact_segments(self) -> Dict[str, int]:
        """Rewrite live records into fresh segments; unlink dead ones.

        Records are copied verbatim (no recompression), so uids, codecs,
        and CRCs are preserved bit-for-bit.  The new index snapshot is
        durable *before* the old segments are unlinked; a crash anywhere
        in between leaves either the old layout (new segments are simply
        rescanned or cleaned) or the new one — never data loss.
        """
        self._check_writer()
        old_segments = list(self._segments)
        bytes_before = self.disk_size()
        # Establish a durable floor before retiring the old writer: the
        # rewrite buffer must be empty when the handle goes away.
        self._sync_writer("compact-prep")
        self._writer.close()

        ordered = sorted(self._index.items(), key=lambda kv: (kv[1][0], kv[1][1]))
        next_segment = self._active + 1
        new_segments: List[int] = [next_segment]
        writer = open(self._segment_path(next_segment), "ab")
        new_index: Dict[Uid, Tuple[int, int, int]] = {}
        try:
            for uid, (segment, offset, length) in ordered:
                record = self._view(segment, offset, length)
                position = writer.tell()
                if position >= self._segment_limit:
                    fsync_file(writer)
                    writer.close()
                    next_segment += 1
                    new_segments.append(next_segment)
                    writer = open(self._segment_path(next_segment), "ab")
                    position = 0
                crashing_write(writer, record, kind="pack-write", label=f"compact:{uid.short()}")
                new_index[uid] = (next_segment, position, length)
                self.stats.record_io(written=length)
            crashpoint("pack-fsync", "compact")
            fsync_file(writer)
            fsync_dir(self._pack_dir)
        except (DiskFullError, DiskFaultError, OSError) as exc:
            # The old layout is untouched on disk: drop the half-built
            # segments and resume appending to the old active one.  The
            # failed descriptor is never fsynced again (fsyncgate).
            if not writer.closed:
                writer.close()
            for segment in new_segments:
                self._drop_segment_file(segment)
            self._writer = open(self._segment_path(self._active), "ab")
            self._synced = self._writer.tell()
            self._tail = []
            self._tail_bytes = 0
            if isinstance(exc, OSError):
                raise map_os_error(
                    exc, "write", self._segment_path(next_segment)
                ) from exc
            raise

        self._index = new_index
        self._segments = new_segments
        self._active = new_segments[-1]
        self._writer = writer
        self._synced = writer.tell()
        self._tail = []
        self._tail_bytes = 0
        self._save_index()
        # The snapshot no longer references the old segments: unlink them.
        for segment in old_segments:
            self._drop_segment_file(segment)
        self._dead_records = 0
        self._dead_bytes = 0
        self._bloom = self._rebuild_bloom()
        return {
            "segments_before": len(old_segments),
            "segments_after": len(new_segments),
            "bytes_before": bytes_before,
            "bytes_after": self.disk_size(),
            "live_records": len(self._index),
        }

    # -- lifecycle -----------------------------------------------------------

    def physical_size(self) -> int:
        """Total *logical* payload bytes currently indexed (pre-compression)."""
        total = 0
        for segment, offset, length in self._index.values():
            frame = self._view(segment, offset, _FRAME.size)
            total += _FRAME.unpack(frame)[3]  # raw_len
        return total

    def close(self) -> None:
        if self._closed:
            return
        if self._poisoned:
            # The writer is disabled and the in-memory index already had
            # its un-durable entries removed; persisting a snapshot would
            # launder the poisoned state into "clean close".  Abandon and
            # let reopen rebuild from the watermark scan.
            self.abandon()
            return
        self._sync_writer("close")
        self._writer.close()
        self._save_index()
        self._drop_maps()
        self._closed = True

    def abandon(self) -> None:
        """Release OS handles without persisting the index (crash sim)."""
        if self._closed:
            return
        try:
            self._writer.close()
        except OSError:
            pass  # a SIGKILL simulator must not raise on teardown
        self._drop_maps()
        self._closed = True
