"""Physical chunk storage.

The key-value physical layer of Fig. 1: "chunks are materialized into the
key-value based physical storage so that each distinct chunk is stored
exactly once" (§II-C).  All stores share a :class:`~repro.store.base.ChunkStore`
interface and a :class:`~repro.store.stats.StoreStats` accounting object —
the stats are what the Fig. 4 / Table I benchmarks read to report logical
vs physical bytes and dedup hits.

Implementations:

- :class:`~repro.store.memory.InMemoryStore` — dict-backed, the default.
- :class:`~repro.store.filestore.FileStore` — append-only segment files
  with a persisted index; survives close/reopen.
- :class:`~repro.store.packstore.PackStore` — append-only pack files with
  CRC-framed compressed records, mmap reads, a bloom filter, and segment
  compaction; the throughput-oriented durable backend.
- :class:`~repro.store.cached.CachedStore` — LRU read-through cache of
  raw chunks over any other store.
- :class:`~repro.store.nodecache.NodeCacheStore` — LRU cache of *decoded*
  POS-Tree nodes, so hot descents skip parsing entirely.

Maintenance: :mod:`repro.store.scrub` re-hashes every materialized copy
against its content address, quarantining (and, on replicated stores,
repairing) silent corruption; :mod:`repro.store.gc` sweeps unreachable
chunks and drives pack segment compaction.
"""

from repro.store.base import ChunkStore, physical_store
from repro.store.cached import CachedStore
from repro.store.filestore import FileStore
from repro.store.memory import InMemoryStore
from repro.store.nodecache import NodeCacheStore
from repro.store.packstore import PackStore
from repro.store.scrub import ScrubReport, Scrubber, scrub
from repro.store.stats import StoreStats

__all__ = [
    "ChunkStore",
    "CachedStore",
    "FileStore",
    "InMemoryStore",
    "NodeCacheStore",
    "PackStore",
    "ScrubReport",
    "Scrubber",
    "StoreStats",
    "physical_store",
    "scrub",
]
