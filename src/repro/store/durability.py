"""Fsync discipline and the disk-fault injection seam for persistence paths.

An ``os.replace`` only makes a rename atomic; it says nothing about the
*contents* of the source file reaching the platter, nor about the rename
itself surviving a power cut.  Every write-snapshot-then-rename sequence
in this repo therefore goes through these helpers:

1. write the temp file, :func:`fsync_file` it while still open;
2. :func:`durable_replace` it over the destination, which fsyncs the
   source path once more (cheap: no dirty pages remain) and then the
   parent directory so the rename is itself durable.

The FB-DURABLE fbcheck rule enforces that no persistence module calls
``os.replace`` without a preceding fsync of the source.

Beyond fsync ordering, this module is also the **single seam through
which the filesystem is touched**: writes, fsyncs, renames, and read
probes all route through the installed :class:`DiskInjector`.  The
default injector performs the real syscall; the fs-fault harness
(:mod:`repro.faults.fs`) installs a seeded shim that injects ENOSPC,
EIO, short writes, and fsyncgate semantics — so the journal, FileStore,
PackStore, gc swap, and heads-snapshot paths are all fault-injectable
without monkeypatching.  Failures (injected or real) surface as the
:mod:`repro.errors` disk taxonomy (:class:`~repro.errors.DiskFullError`
/ :class:`~repro.errors.DiskFaultError`), never raw ``OSError``.
"""

from __future__ import annotations

import os
from typing import IO, Optional

from repro.errors import map_os_error


def _handle_path(handle: IO[bytes]) -> str:
    return str(getattr(handle, "name", "<handle>"))


class DiskInjector:
    """The no-fault disk shim: performs the real syscall, nothing else.

    Fault harnesses subclass this and install themselves via
    :func:`install_injector`; every override either performs the syscall
    or raises an ``OSError`` carrying the injected errno.  The wrappers
    below translate any ``OSError`` (injected or real) into the
    :mod:`repro.errors` disk taxonomy.
    """

    def write(self, handle: IO[bytes], data: bytes, label: str = "") -> None:
        handle.write(data)

    def fsync_handle(self, handle: IO[bytes], label: str = "") -> None:
        os.fsync(handle.fileno())

    def fsync_fd(self, fd: int, path: str) -> None:
        os.fsync(fd)

    def replace(self, source: str, destination: str) -> None:
        # The raw syscall primitive durable_replace builds its fsync
        # discipline around — the discipline lives in the caller.
        os.replace(source, destination)  # fbcheck: ignore[FB-DURABLE]

    def read_probe(self, path: str, label: str = "") -> None:
        """Hook before a read path touches ``path`` (no-op when healthy)."""


_injector: DiskInjector = DiskInjector()


def install_injector(injector: Optional[DiskInjector]) -> DiskInjector:
    """Install a disk shim; returns the previous one (``None`` resets)."""
    global _injector
    previous = _injector
    _injector = injector if injector is not None else DiskInjector()
    return previous


def active_injector() -> DiskInjector:
    """The currently installed disk shim."""
    return _injector


def write_bytes(handle: IO[bytes], data: bytes, label: str = "") -> None:
    """Write ``data`` through the disk shim; classify any failure.

    A short-write injection materializes a strict prefix of ``data``
    before raising, exactly the damage a real ENOSPC mid-write leaves —
    callers own the un-ack discipline (truncate back to the watermark).
    """
    try:
        _injector.write(handle, data, label)
    except OSError as exc:
        raise map_os_error(exc, "write", _handle_path(handle)) from exc


def fsync_file(handle: IO[bytes], label: str = "") -> None:
    """Flush a writable file object and fsync its descriptor.

    Raises :class:`~repro.errors.DiskFaultError` on failure.  Callers
    must treat the descriptor as tainted afterwards: the kernel drops
    dirty pages on a failed fsync, so the only sound recovery is to
    reopen and rewrite from the last durable watermark — never to fsync
    the same descriptor again (fsyncgate).
    """
    try:
        handle.flush()
        _injector.fsync_handle(handle, label)
    except OSError as exc:
        raise map_os_error(exc, "fsync", _handle_path(handle)) from exc


def fsync_path(path: str) -> None:
    """Fsync a path (file or directory) by descriptor.

    Directory fsync degrades to a no-op only where directories cannot be
    opened as descriptors (no ``os.O_DIRECTORY``: Windows) — rename
    durability is the filesystem's problem there, as it always was.
    Everywhere else a failure (EIO above all) is a real durability loss
    and propagates as a classified disk fault instead of being swallowed.
    """
    is_dir = os.path.isdir(path)
    if is_dir and not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - Windows
        return
    flags = os.O_RDONLY
    if is_dir:
        flags |= os.O_DIRECTORY
    try:
        fd = os.open(path, flags)
    except OSError as exc:
        raise map_os_error(exc, "open", path) from exc
    try:
        _injector.fsync_fd(fd, path)
    except OSError as exc:
        raise map_os_error(exc, "fsync", path) from exc
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Fsync a directory so a rename/creation within it is durable."""
    fsync_path(path if path else ".")


def durable_replace(source: str, destination: str) -> None:
    """``os.replace`` with the full fsync discipline around it.

    Fsyncs ``source`` (file or directory tree root) before the rename and
    the destination's parent directory after it, so neither the contents
    nor the rename can be lost to a crash.
    """
    fsync_path(source)
    try:
        _injector.replace(source, destination)
    except OSError as exc:
        raise map_os_error(exc, "replace", destination) from exc
    fsync_dir(os.path.dirname(os.path.abspath(destination)))


def read_check(path: str, label: str = "") -> None:
    """Probe the disk shim before a read path touches ``path``.

    Free outside a fault zone; inside one, an injected EIO surfaces as
    :class:`~repro.errors.DiskFaultError` so the read-side taxonomy is
    exercised without monkeypatching ``open``.
    """
    try:
        _injector.read_probe(path, label)
    except OSError as exc:
        raise map_os_error(exc, "read", path) from exc
