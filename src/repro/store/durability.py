"""Fsync discipline for the persistence paths.

An ``os.replace`` only makes a rename atomic; it says nothing about the
*contents* of the source file reaching the platter, nor about the rename
itself surviving a power cut.  Every write-snapshot-then-rename sequence
in this repo therefore goes through these helpers:

1. write the temp file, :func:`fsync_file` it while still open;
2. :func:`durable_replace` it over the destination, which fsyncs the
   source path once more (cheap: no dirty pages remain) and then the
   parent directory so the rename is itself durable.

The FB-DURABLE fbcheck rule enforces that no persistence module calls
``os.replace`` without a preceding fsync of the source.
"""

from __future__ import annotations

import os
from typing import IO


def fsync_file(handle: IO[bytes]) -> None:
    """Flush a writable file object and fsync its descriptor."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_path(path: str) -> None:
    """Fsync a path (file or directory) by descriptor.

    On platforms where directories cannot be opened/fsynced (Windows),
    the directory case degrades to a no-op — rename durability is then
    the filesystem's problem, as it always was there.
    """
    flags = os.O_RDONLY
    if hasattr(os, "O_DIRECTORY") and os.path.isdir(path):
        flags |= os.O_DIRECTORY
    try:
        fd = os.open(path, flags)
    except OSError:
        if os.path.isdir(path):
            return
        raise
    try:
        os.fsync(fd)
    except OSError:
        if not os.path.isdir(path):
            raise
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Fsync a directory so a rename/creation within it is durable."""
    fsync_path(path if path else ".")


def durable_replace(source: str, destination: str) -> None:
    """``os.replace`` with the full fsync discipline around it.

    Fsyncs ``source`` (file or directory tree root) before the rename and
    the destination's parent directory after it, so neither the contents
    nor the rename can be lost to a crash.
    """
    fsync_path(source)
    os.replace(source, destination)
    fsync_dir(os.path.dirname(os.path.abspath(destination)))
