"""Storage accounting.

Every benchmark number about storage efficiency in this reproduction comes
from here: Fig. 4's "+338.54 KB then +0.04 KB" is
``delta(physical_bytes)`` across two loads, and Table I's dedup comparison
is ``dedup_ratio`` across systems.  The indexing-structure survey
(arXiv:2003.02090) adds two more axes the pack backend is judged on —
read and write *amplification*, the ratio of device I/O to useful payload
bytes — so durable stores also account raw device traffic here
(``io_read_bytes`` / ``io_write_bytes``) and caches report their hit rate
in the same snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StoreStats:
    """Counters maintained by every :class:`~repro.store.base.ChunkStore`."""

    #: put() calls that inserted a new chunk.
    puts_new: int = 0
    #: put() calls whose chunk already existed (deduplicated writes).
    puts_dup: int = 0
    #: Bytes of new chunk payloads actually materialized.
    physical_bytes: int = 0
    #: Bytes offered across all put() calls (new + duplicate).
    logical_bytes: int = 0
    #: get() calls that found the chunk.
    gets: int = 0
    #: get() calls that missed.
    misses: int = 0
    #: Payload bytes returned by successful get() calls.
    served_bytes: int = 0
    #: Raw bytes read from the device (record frames, index loads).
    io_read_bytes: int = 0
    #: Raw bytes written to the device (record frames, index snapshots).
    io_write_bytes: int = 0
    #: Lookups served from a cache layer (decoded nodes or raw chunks).
    cache_hits: int = 0
    #: Lookups that consulted a cache layer at all.
    cache_lookups: int = 0
    #: Payload bytes currently materialized (filled by ``stats_snapshot``).
    materialized_bytes: int = 0
    #: New-chunk counts per ChunkType name (where do bytes go?).
    by_type: Dict[str, int] = field(default_factory=dict)

    def record_put(self, type_name: str, size: int, new: bool) -> None:
        """Account one put() of ``size`` payload bytes."""
        self.logical_bytes += size
        if new:
            self.puts_new += 1
            self.physical_bytes += size
            self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        else:
            self.puts_dup += 1

    def record_get(self, hit: bool, size: int = 0) -> None:
        """Account one get() that served ``size`` payload bytes."""
        if hit:
            self.gets += 1
            self.served_bytes += size
        else:
            self.misses += 1

    def record_io(self, read: int = 0, written: int = 0) -> None:
        """Account raw device traffic (durable backends only)."""
        self.io_read_bytes += read
        self.io_write_bytes += written

    @property
    def dedup_ratio(self) -> float:
        """logical / physical bytes; 1.0 means no sharing at all."""
        if self.physical_bytes == 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of put() calls that were absorbed by deduplication."""
        total = self.puts_new + self.puts_dup
        if total == 0:
            return 0.0
        return self.puts_dup / total

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 when no cache layer)."""
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    @property
    def read_amplification(self) -> float:
        """Device bytes read per payload byte served (arXiv:2003.02090)."""
        if self.served_bytes == 0:
            return 0.0
        return self.io_read_bytes / self.served_bytes

    @property
    def write_amplification(self) -> float:
        """Device bytes written per payload byte materialized."""
        if self.physical_bytes == 0:
            return 0.0
        return self.io_write_bytes / self.physical_bytes

    def snapshot(self) -> "StoreStats":
        """Copy the counters (for before/after deltas)."""
        return StoreStats(
            puts_new=self.puts_new,
            puts_dup=self.puts_dup,
            physical_bytes=self.physical_bytes,
            logical_bytes=self.logical_bytes,
            gets=self.gets,
            misses=self.misses,
            served_bytes=self.served_bytes,
            io_read_bytes=self.io_read_bytes,
            io_write_bytes=self.io_write_bytes,
            cache_hits=self.cache_hits,
            cache_lookups=self.cache_lookups,
            materialized_bytes=self.materialized_bytes,
            by_type=dict(self.by_type),
        )

    def delta(self, earlier: "StoreStats") -> "StoreStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        by_type = {
            name: count - earlier.by_type.get(name, 0)
            for name, count in self.by_type.items()
            if count - earlier.by_type.get(name, 0)
        }
        return StoreStats(
            puts_new=self.puts_new - earlier.puts_new,
            puts_dup=self.puts_dup - earlier.puts_dup,
            physical_bytes=self.physical_bytes - earlier.physical_bytes,
            logical_bytes=self.logical_bytes - earlier.logical_bytes,
            gets=self.gets - earlier.gets,
            misses=self.misses - earlier.misses,
            served_bytes=self.served_bytes - earlier.served_bytes,
            io_read_bytes=self.io_read_bytes - earlier.io_read_bytes,
            io_write_bytes=self.io_write_bytes - earlier.io_write_bytes,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_lookups=self.cache_lookups - earlier.cache_lookups,
            materialized_bytes=self.materialized_bytes - earlier.materialized_bytes,
            by_type=by_type,
        )

    def summary(self) -> Dict[str, object]:
        """The one-shot backend report the storage benches consume."""
        return {
            "physical_size": self.materialized_bytes,
            "physical_bytes": self.physical_bytes,
            "logical_bytes": self.logical_bytes,
            "dedup_ratio": round(self.dedup_ratio, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "read_amplification": round(self.read_amplification, 4),
            "write_amplification": round(self.write_amplification, 4),
            "io_read_bytes": self.io_read_bytes,
            "io_write_bytes": self.io_write_bytes,
        }

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"physical={self.physical_bytes}B logical={self.logical_bytes}B "
            f"dedup_ratio={self.dedup_ratio:.2f} "
            f"new={self.puts_new} dup={self.puts_dup}"
        )
