"""Storage accounting.

Every benchmark number about storage efficiency in this reproduction comes
from here: Fig. 4's "+338.54 KB then +0.04 KB" is
``delta(physical_bytes)`` across two loads, and Table I's dedup comparison
is ``dedup_ratio`` across systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StoreStats:
    """Counters maintained by every :class:`~repro.store.base.ChunkStore`."""

    #: put() calls that inserted a new chunk.
    puts_new: int = 0
    #: put() calls whose chunk already existed (deduplicated writes).
    puts_dup: int = 0
    #: Bytes of new chunk payloads actually materialized.
    physical_bytes: int = 0
    #: Bytes offered across all put() calls (new + duplicate).
    logical_bytes: int = 0
    #: get() calls that found the chunk.
    gets: int = 0
    #: get() calls that missed.
    misses: int = 0
    #: New-chunk counts per ChunkType name (where do bytes go?).
    by_type: Dict[str, int] = field(default_factory=dict)

    def record_put(self, type_name: str, size: int, new: bool) -> None:
        """Account one put() of ``size`` payload bytes."""
        self.logical_bytes += size
        if new:
            self.puts_new += 1
            self.physical_bytes += size
            self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        else:
            self.puts_dup += 1

    def record_get(self, hit: bool) -> None:
        """Account one get()."""
        if hit:
            self.gets += 1
        else:
            self.misses += 1

    @property
    def dedup_ratio(self) -> float:
        """logical / physical bytes; 1.0 means no sharing at all."""
        if self.physical_bytes == 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of put() calls that were absorbed by deduplication."""
        total = self.puts_new + self.puts_dup
        if total == 0:
            return 0.0
        return self.puts_dup / total

    def snapshot(self) -> "StoreStats":
        """Copy the counters (for before/after deltas)."""
        return StoreStats(
            puts_new=self.puts_new,
            puts_dup=self.puts_dup,
            physical_bytes=self.physical_bytes,
            logical_bytes=self.logical_bytes,
            gets=self.gets,
            misses=self.misses,
            by_type=dict(self.by_type),
        )

    def delta(self, earlier: "StoreStats") -> "StoreStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        by_type = {
            name: count - earlier.by_type.get(name, 0)
            for name, count in self.by_type.items()
            if count - earlier.by_type.get(name, 0)
        }
        return StoreStats(
            puts_new=self.puts_new - earlier.puts_new,
            puts_dup=self.puts_dup - earlier.puts_dup,
            physical_bytes=self.physical_bytes - earlier.physical_bytes,
            logical_bytes=self.logical_bytes - earlier.logical_bytes,
            gets=self.gets - earlier.gets,
            misses=self.misses - earlier.misses,
            by_type=by_type,
        )

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"physical={self.physical_bytes}B logical={self.logical_bytes}B "
            f"dedup_ratio={self.dedup_ratio:.2f} "
            f"new={self.puts_new} dup={self.puts_dup}"
        )
