"""Append-only file-backed chunk store.

Layout under the store directory::

    segments/seg-000000.dat   length-prefixed records: [tag][len][payload]
    index.dat                 uid -> (segment, offset) snapshot

Chunks are immutable, so segments are strictly append-only; the index file
is rewritten on close and reconstructed by scanning segments if missing or
stale (crash tolerance).  A new segment is rolled when the active one
exceeds ``segment_limit`` bytes.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import (
    DiskFaultError,
    DiskFullError,
    StoreClosedError,
    StoreError,
    map_os_error,
)
from repro.faults.retry import RetryPolicy
from repro.store.base import ChunkStore
from repro.store.durability import durable_replace, fsync_file, read_check, write_bytes

_RECORD_HEADER = struct.Struct(">BI")  # type tag, payload length
_INDEX_ENTRY = struct.Struct(">32sII")  # digest, segment number, offset
_WATERMARK_ENTRY = struct.Struct(">IQ")  # segment number, indexed length
_INDEX_MAGIC = b"FBIX0002"  # 0002 added the per-segment watermark table


class FileStore(ChunkStore):
    """Durable chunk store over append-only segment files."""

    #: Unsynced appends kept in memory for fsync-failure recovery; once
    #: the buffer exceeds this, the store forces a durable point.
    _TAIL_LIMIT = 4 * 1024 * 1024

    def __init__(
        self,
        directory: str,
        verify_reads: bool = False,
        segment_limit: int = 64 * 1024 * 1024,
    ) -> None:
        super().__init__(verify_reads=verify_reads)
        self._dir = directory
        self._seg_dir = os.path.join(directory, "segments")
        self._segment_limit = segment_limit
        self._index: Dict[Uid, Tuple[int, int]] = {}
        self._closed = False
        self._poisoned = False
        #: Record blobs appended since the last successful fsync: the
        #: rewrite buffer for fsyncgate recovery (reopen-and-rewrite).
        self._tail: List[bytes] = []
        self._tail_bytes = 0
        #: Bounded backoff for transient ENOSPC on the append path only;
        #: a failed *fsync* is never retried (see :meth:`_recover_fsync`).
        self._disk_retry = RetryPolicy(attempts=3, base_delay=0.002, max_delay=0.01)
        os.makedirs(self._seg_dir, exist_ok=True)
        self._segments = sorted(
            int(name[4:-4])
            for name in os.listdir(self._seg_dir)
            if name.startswith("seg-") and name.endswith(".dat")
        )
        if not self._segments:
            self._segments = [0]
            open(self._segment_path(0), "ab").close()
        self._active = self._segments[-1]
        self._writer = open(self._segment_path(self._active), "ab")
        #: Segment offset at the last successful fsync (durable floor).
        self._synced = self._writer.tell()
        if not self._load_index():
            self._rebuild_index()

    @property
    def poisoned(self) -> bool:
        """True once an unrecoverable disk fault disabled the writer."""
        return self._poisoned

    def _segment_path(self, number: int) -> str:
        return os.path.join(self._seg_dir, f"seg-{number:06d}.dat")

    def _index_path(self) -> str:
        return os.path.join(self._dir, "index.dat")

    # -- index persistence --------------------------------------------------

    def _load_index(self) -> bool:
        """Load the index snapshot; False if absent, corrupt, or stale.

        Staleness check: every indexed segment must still exist on disk,
        no segment may have shrunk below its recorded watermark (that
        would leave dangling offsets), and every entry's offset must fall
        inside its segment's indexed region.  Any violation falls back to
        :meth:`_rebuild_index`; records appended after the snapshot (a
        crash before ``close``) are picked up by scanning each segment
        from its watermark.
        """
        path = self._index_path()
        if not os.path.exists(path):
            return False
        watermarks: Dict[int, int] = {}
        try:
            with open(path, "rb") as handle:
                magic = handle.read(len(_INDEX_MAGIC))
                if magic != _INDEX_MAGIC:
                    return False
                (count,) = struct.unpack(">Q", handle.read(8))
                (seg_count,) = struct.unpack(">Q", handle.read(8))
                for _ in range(seg_count):
                    raw = handle.read(_WATERMARK_ENTRY.size)
                    if len(raw) != _WATERMARK_ENTRY.size:
                        return False
                    segment, length = _WATERMARK_ENTRY.unpack(raw)
                    watermarks[segment] = length
                for _ in range(count):
                    raw = handle.read(_INDEX_ENTRY.size)
                    if len(raw) != _INDEX_ENTRY.size:
                        return False
                    digest, segment, offset = _INDEX_ENTRY.unpack(raw)
                    self._index[Uid(digest)] = (segment, offset)
        except (OSError, struct.error):
            self._index.clear()
            return False
        known = set(self._segments)
        for segment, watermark in watermarks.items():
            if segment not in known:
                self._index.clear()
                return False  # indexed segment vanished
            if os.path.getsize(self._segment_path(segment)) < watermark:
                self._index.clear()
                return False  # segment shrank: offsets can dangle
        for segment, offset in self._index.values():
            if segment not in watermarks:
                self._index.clear()
                return False  # entry points into an untracked segment
            if offset + _RECORD_HEADER.size > watermarks[segment]:
                self._index.clear()
                return False  # offset past the indexed region
        self._scan_unindexed(watermarks)
        return True

    def _rebuild_index(self) -> None:
        """Reconstruct the index by scanning every segment file."""
        self._index.clear()
        for segment in self._segments:
            self._scan_segment(segment)

    def _scan_unindexed(self, watermarks: Dict[int, int]) -> None:
        """Pick up records written after the last index snapshot.

        The watermark is an exact record boundary (the segment length at
        snapshot time), so resuming there cannot split a record.
        """
        for segment in self._segments:
            self._scan_segment(segment, start=watermarks.get(segment, 0))

    def _scan_segment(self, segment: int, start: int = 0) -> None:
        path = self._segment_path(segment)
        with open(path, "rb") as handle:
            handle.seek(start)
            offset = start
            while True:
                header = handle.read(_RECORD_HEADER.size)
                if len(header) < _RECORD_HEADER.size:
                    break  # clean EOF or torn header: ignore tail
                tag, length = _RECORD_HEADER.unpack(header)
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn record from a crash: ignore tail
                try:
                    chunk = Chunk(ChunkType(tag), payload)
                except ValueError:
                    break  # unknown tag: treat as corruption tail
                self._index[chunk.uid] = (segment, offset)
                offset += _RECORD_HEADER.size + length

    def _save_index(self) -> None:
        path = self._index_path()
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_INDEX_MAGIC)
            handle.write(struct.pack(">Q", len(self._index)))
            handle.write(struct.pack(">Q", len(self._segments)))
            for segment in self._segments:
                try:
                    length = os.path.getsize(self._segment_path(segment))
                except FileNotFoundError:
                    length = 0  # never-flushed fresh segment: watermark at zero
                except OSError as exc:
                    raise map_os_error(exc, "stat", self._segment_path(segment)) from exc
                handle.write(_WATERMARK_ENTRY.pack(segment, length))
            for uid, (segment, offset) in self._index.items():
                handle.write(_INDEX_ENTRY.pack(uid.digest, segment, offset))
            written = handle.tell()
            fsync_file(handle)
        durable_replace(tmp, path)
        self.stats.record_io(written=written)

    # -- primitives ----------------------------------------------------------

    def _check_writer(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")
        if self._poisoned:
            raise DiskFaultError(
                f"{self._dir}: writer poisoned by an unrecoverable disk fault",
                syscall="write",
                path=self._segment_path(self._active),
            )

    def _roll_segment(self) -> None:
        """Retire the active segment and open the next one.

        The retiring segment gets watermarked at its full size by the
        next index snapshot; fsync (with fsync-failure recovery) before
        closing so a power loss cannot shrink it below that watermark.
        """
        self._sync_writer(f"roll:{self._active}")
        self._writer.close()
        self._active += 1
        self._segments.append(self._active)
        self._writer = open(self._segment_path(self._active), "ab")
        self._synced = 0
        self._tail = []
        self._tail_bytes = 0

    def _unwind_append(self, offset: int) -> None:
        """Un-ack a failed append: truncate the partial record away.

        A short write may have materialized a strict prefix; the index
        has not been touched yet, so truncating back to ``offset`` keeps
        the segment ending on a record boundary.  If even the truncate
        fails the writer is poisoned — no further appends are accepted.
        """
        try:
            self._writer.flush()
            os.ftruncate(self._writer.fileno(), offset)
            self._writer.seek(0, os.SEEK_END)
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "truncate", self._segment_path(self._active)) from exc

    def _sync_writer(self, label: str) -> None:
        """Fsync the active segment, recovering a failed fsync safely."""
        try:
            fsync_file(self._writer, label)
        except (DiskFullError, DiskFaultError) as exc:
            self._recover_fsync(exc)
        self._synced = self._writer.tell()
        self._tail = []
        self._tail_bytes = 0

    def _recover_fsync(self, cause: StoreError) -> None:
        """Reopen-and-rewrite after a failed fsync (fsyncgate discipline).

        The failed descriptor may have dropped the unsynced tail and
        would falsely report success if fsynced again, so it is never
        reused: open a fresh descriptor, truncate to the durable floor,
        rewrite the tail records, and fsync *that*.  Failing twice
        poisons the writer and un-indexes the records that never made it
        to the platter (acked ⇒ durable must not be claimed for them).
        """
        path = self._segment_path(self._active)
        self._writer.close()
        last: StoreError = cause
        for _ in range(2):
            try:
                handle = open(path, "r+b")
            except OSError as exc:
                last = map_os_error(exc, "open", path)
                break
            try:
                handle.truncate(self._synced)
                handle.seek(self._synced)
                for blob in self._tail:
                    write_bytes(handle, blob)
                fsync_file(handle, "fsync-recovery")
            except (DiskFullError, DiskFaultError) as exc:
                last = exc
                handle.close()
                continue
            except OSError as exc:
                last = map_os_error(exc, "write", path)
                handle.close()
                continue
            self._writer = handle
            return
        self._poisoned = True
        doomed = [
            uid
            for uid, (segment, offset) in self._index.items()
            if segment == self._active and offset >= self._synced
        ]
        for uid in doomed:
            del self._index[uid]
        raise DiskFaultError(
            f"{path}: writer poisoned after failed fsync recovery "
            f"({len(doomed)} unsynced records un-acked): {last}",
            syscall="fsync",
            path=path,
        ) from last

    def _append(self, chunk: Chunk) -> None:
        """Append one record to the active segment (no flush)."""
        if self._writer.tell() >= self._segment_limit:
            self._roll_segment()
        record = _RECORD_HEADER.pack(int(chunk.type), len(chunk.data)) + chunk.data
        offset = self._writer.tell()
        try:
            write_bytes(self._writer, record)
        except (DiskFullError, DiskFaultError):
            self._unwind_append(offset)
            raise
        self._index[chunk.uid] = (self._active, offset)
        self._tail.append(record)
        self._tail_bytes += len(record)
        self.stats.record_io(written=len(record))
        if self._tail_bytes > self._TAIL_LIMIT:
            # Bound the rewrite buffer: force a durable point so the
            # fsync-recovery tail cannot grow without limit.
            self._sync_writer("tail-limit")

    def _flush_writer(self) -> None:
        try:
            self._writer.flush()
        except OSError as exc:
            # Buffer state is unknowable after a failed flush: poison.
            self._poisoned = True
            raise map_os_error(exc, "write", self._segment_path(self._active)) from exc

    def _insert(self, chunk: Chunk) -> None:
        self._check_writer()
        self._disk_retry.call(lambda: self._append(chunk), retry_on=(DiskFullError,))
        self._flush_writer()

    def _insert_many(self, chunks: List[Chunk]) -> None:
        """Batched append: one fsync and one index snapshot per batch.

        Single :meth:`put` stays cheap (flush only, index saved at close);
        a batch is acknowledged durable as a unit — the whole point of
        routing bulk loads through ``put_many``.
        """
        self._check_writer()
        for chunk in chunks:
            self._disk_retry.call(lambda c=chunk: self._append(c), retry_on=(DiskFullError,))
        self._sync_writer(f"batch:{len(chunks)}")
        self._save_index()

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        if self._closed:
            raise StoreClosedError("store is closed")
        location = self._index.get(uid)
        if location is None:
            return None
        segment, offset = location
        path = self._segment_path(segment)
        try:
            read_check(path)
            with open(path, "rb") as handle:
                handle.seek(offset)
                header = handle.read(_RECORD_HEADER.size)
                if len(header) != _RECORD_HEADER.size:
                    raise StoreError(f"torn record for {uid.short()}")
                tag, length = _RECORD_HEADER.unpack(header)
                payload = handle.read(length)
        except OSError as exc:
            raise map_os_error(exc, "read", path) from exc
        if len(payload) != length:
            raise StoreError(f"torn record for {uid.short()}")
        self.stats.record_io(read=_RECORD_HEADER.size + length)
        return Chunk(ChunkType(tag), payload, uid=uid)

    def _contains(self, uid: Uid) -> bool:
        return uid in self._index

    def _delete(self, uid: Uid) -> bool:
        """Drop the index entry; segment bytes are reclaimed by compaction.

        Durable across reopen: the saved index carries per-segment
        watermarks, so an unindexed record below the watermark is never
        re-scanned back in.
        """
        return self._index.pop(uid, None) is not None

    def _ids(self) -> Iterator[Uid]:
        return iter(list(self._index.keys()))

    def __len__(self) -> int:
        return len(self._index)

    def close(self) -> None:
        if self._closed:
            return
        if self._poisoned:
            # The writer is disabled and the in-memory index already had
            # its un-durable entries removed; persisting a snapshot would
            # launder the poisoned state into "clean close".  Abandon and
            # let reopen rebuild from the watermark scan.
            self.abandon()
            return
        self._sync_writer("close")
        self._writer.close()
        self._save_index()
        self._closed = True

    def abandon(self) -> None:
        """Release OS handles without persisting the index (crash sim).

        Models a SIGKILL minus page-cache loss: appended records survive
        on disk (every ``_insert`` flushed them) but no fresh index
        snapshot is written — reopen recovers via the watermark scan.
        """
        if self._closed:
            return
        try:
            self._writer.close()
        except OSError:
            pass  # a SIGKILL simulator must not raise on teardown
        self._closed = True
