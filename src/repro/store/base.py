"""Abstract chunk store.

Subclasses implement the four raw primitives (``_insert``, ``_fetch``,
``_contains``, ``_ids``); the base class layers uniform accounting,
optional read verification, and batch helpers on top.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, List, Optional, Set

from repro.chunk import Chunk, Uid
from repro.errors import ChunkNotFoundError
from repro.store.stats import StoreStats


def physical_store(store: "ChunkStore") -> "ChunkStore":
    """Peel cache wrappers down to the physical store.

    Wrapper stores expose their wrapped store as the public ``backing``
    attribute; sweep notification and segment compaction must talk to the
    physical layer — the one whose holdings actually change.
    """
    depth = 0
    while depth < 8:
        backing = getattr(store, "backing", None)
        if not isinstance(backing, ChunkStore):
            return store
        store = backing
        depth += 1
    return store


class ChunkStore:
    """Content-addressed key-value store for immutable chunks.

    ``put`` is idempotent: storing an already-present chunk is a no-op that
    is counted as a dedup hit.  ``verify_reads=True`` makes every ``get``
    recompute the SHA-256 of the returned chunk — the client-side defence
    the tamper-evidence demo (§III-C) relies on.
    """

    #: True when :meth:`delete` reclaims durably in place, so the garbage
    #: collector may sweep this store directly instead of copying live
    #: chunks out (see :mod:`repro.store.gc`).
    supports_in_place_sweep: bool = False

    def __init__(self, verify_reads: bool = False) -> None:
        self.stats = StoreStats()
        self.verify_reads = verify_reads
        #: Weak refs to stores that asked to hear about bulk removals
        #: (see :meth:`subscribe_sweeps`); weak so a subscribing cache
        #: wrapper can be dropped without unsubscribing.
        self._sweep_listeners: List["weakref.ReferenceType[ChunkStore]"] = []

    # -- primitives to implement -------------------------------------------

    def _insert(self, chunk: Chunk) -> None:
        raise NotImplementedError

    def _insert_many(self, chunks: List[Chunk]) -> None:
        """Materialize several novel chunks (pre-deduplicated by the caller).

        The default loops :meth:`_insert`; durable backends override it to
        amortize per-chunk costs (one flush/fsync and one index snapshot
        per batch instead of per chunk).
        """
        for chunk in chunks:
            self._insert(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        raise NotImplementedError

    def _contains(self, uid: Uid) -> bool:
        raise NotImplementedError

    def _ids(self) -> Iterator[Uid]:
        raise NotImplementedError

    def _delete(self, uid: Uid) -> bool:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    def put(self, chunk: Chunk) -> bool:
        """Store ``chunk`` if absent; return True if newly materialized."""
        new = not self._contains(chunk.uid)
        if new:
            self._insert(chunk)
        self.stats.record_put(chunk.type.name, chunk.size(), new)
        return new

    def put_many(self, chunks: Iterable[Chunk]) -> int:
        """Store several chunks in one batch; return how many were new.

        Deduplication happens up front (against the store and within the
        batch itself), then every novel chunk goes through the
        :meth:`_insert_many` hook so backends can batch the physical
        appends, fsyncs, and index snapshots.
        """
        fresh: List[Chunk] = []
        seen: Set[Uid] = set()
        for chunk in chunks:
            new = chunk.uid not in seen and not self._contains(chunk.uid)
            self.stats.record_put(chunk.type.name, chunk.size(), new)
            if new:
                seen.add(chunk.uid)
                fresh.append(chunk)
        if fresh:
            self._insert_many(fresh)
        return len(fresh)

    def get(self, uid: Uid) -> Chunk:
        """Fetch a chunk or raise :class:`ChunkNotFoundError`."""
        chunk = self._fetch(uid)
        self.stats.record_get(chunk is not None, chunk.size() if chunk else 0)
        if chunk is None:
            raise ChunkNotFoundError(uid)
        if self.verify_reads:
            chunk.verify()
        return chunk

    def get_maybe(self, uid: Uid) -> Optional[Chunk]:
        """Fetch a chunk or return None."""
        chunk = self._fetch(uid)
        self.stats.record_get(chunk is not None, chunk.size() if chunk else 0)
        if chunk is not None and self.verify_reads:
            chunk.verify()
        return chunk

    def has(self, uid: Uid) -> bool:
        """True if the chunk is materialized here."""
        return self._contains(uid)

    def delete(self, uid: Uid) -> bool:
        """Unmaterialize a chunk; return True if it was present.

        Chunks are immutable but not sacred: garbage collection, replica
        rebalancing, and scrub quarantine all legitimately remove physical
        copies.  Deleting a chunk never invalidates its uid — re-putting
        identical content restores it bit-for-bit.
        """
        return self._delete(uid)

    def ids(self) -> List[Uid]:
        """All chunk ids currently materialized (unspecified order)."""
        return list(self._ids())

    def __contains__(self, uid: Uid) -> bool:
        return self._contains(uid)

    def __len__(self) -> int:
        return sum(1 for _ in self._ids())

    def physical_size(self) -> int:
        """Total payload bytes currently materialized."""
        total = 0
        for uid in self._ids():
            chunk = self._fetch(uid)
            if chunk is not None:
                total += chunk.size()
        return total

    def stats_snapshot(self) -> StoreStats:
        """One self-contained accounting snapshot (benchmark surface).

        Copies the live counters and fills ``materialized_bytes`` with the
        store's current physical payload size, so a single object carries
        logical size, physical size, dedup ratio, cache hit rate, and I/O
        amplification.  Wrapper stores override this to merge their cache
        counters with the backing store's device traffic.
        """
        snap = self.stats.snapshot()
        io_read = self.stats.io_read_bytes
        snap.materialized_bytes = self.physical_size()
        # The default physical_size() walks _fetch; that diagnostic scan
        # is not workload traffic, so keep it out of the amplification.
        self.stats.io_read_bytes = io_read
        return snap

    # -- sweep notification ---------------------------------------------------

    def subscribe_sweeps(self, listener: "ChunkStore") -> None:
        """Register a store to be told when chunks are bulk-removed here.

        Content addressing means a cached chunk can never be *stale*, but
        it can be *unbacked*: garbage collection and quarantine resync
        remove chunks from the physical store, and a cache wrapper that
        was not on the delete path would keep serving them — reads that
        succeed against storage that no longer holds the bytes.  Cache
        wrappers subscribe to their :func:`physical_store` at
        construction; :meth:`notify_swept` fans removals out to every
        live subscriber's :meth:`invalidate_swept`.  Held weakly:
        dropping the subscriber is enough to unsubscribe.
        """
        if all(existing() is not listener for existing in self._sweep_listeners):
            self._sweep_listeners.append(weakref.ref(listener))

    def notify_swept(self, uids: Iterable[Uid]) -> None:
        """Tell every subscribed store these uids were removed here."""
        swept = list(uids)
        if not swept or not self._sweep_listeners:
            return
        alive: List["weakref.ReferenceType[ChunkStore]"] = []
        for ref in self._sweep_listeners:
            listener = ref()
            if listener is None:
                continue
            alive.append(ref)
            listener.invalidate_swept(swept)
        self._sweep_listeners = alive

    def invalidate_swept(self, uids: List[Uid]) -> None:
        """Drop any cached state for removed uids; default is a no-op."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def abandon(self) -> None:
        """Drop the store without orderly shutdown (crash simulation).

        Durable stores override this to release OS handles while skipping
        the snapshot/flush work ``close`` does; the default is ``close``.
        """
        self.close()

    def __enter__(self) -> "ChunkStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
