"""Branchable applications built on the ForkBase substrate.

The paper's conclusion: "ForkBase benefits various kinds of branchable
applications built on top of it with reduced development effort."  The
engine version of the system (PVLDB 2018) headlines blockchain state
storage.  This package contains complete applications exercising the
public API:

- :mod:`repro.apps.ledger` — a tamper-evident account ledger whose block
  chain *is* the version derivation graph: state roots come from the
  POS-Tree, block hashes from FNode uids, forks from branches, and
  reorgs from Git-like head moves.
- :mod:`repro.apps.curation` — collaborative dataset curation: proposals
  as branches, review as differential queries, acceptance as merges, and
  lineage as the (tamper-evident) version history.
"""

from repro.apps.curation import CurationPipeline, LineageStep
from repro.apps.ledger import Block, InsufficientFunds, Ledger

__all__ = [
    "Block",
    "CurationPipeline",
    "InsufficientFunds",
    "Ledger",
    "LineageStep",
]
