"""A tamper-evident account ledger over ForkBase.

The point of the exercise (and of the PVLDB paper's blockchain use case):
an application gets block-chain-grade guarantees *for free* from the
substrate instead of building them itself —

- the account state is an FMap; its POS-Tree root is the state root;
- committing a block is a Put: the FNode uid (value root + hash-chained
  bases + block metadata) *is* the block hash;
- a fork is a branch; a reorg is a head move; divergent forks touching
  disjoint accounts merge with the stock three-way merge;
- auditing a chain is the stock tamper-evidence verification.

Balances are integers (smallest currency unit), stored as canonical
svarint-encoded values so equal states are byte-equal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chunk import Reader, Uid, Writer
from repro.db.engine import ForkBase
from repro.errors import ForkBaseError
from repro.types import FMap
from repro.vcs.branches import DEFAULT_BRANCH


class InsufficientFunds(ForkBaseError):
    """A transfer would overdraw the sender."""


def _encode_balance(amount: int) -> bytes:
    return Writer().svarint(amount).getvalue()


def _decode_balance(data: bytes) -> int:
    return Reader(data).svarint()


@dataclass(frozen=True)
class Transaction:
    """One transfer inside a block."""

    sender: str
    recipient: str
    amount: int

    def as_json(self) -> Dict[str, object]:
        return {"from": self.sender, "to": self.recipient, "amount": self.amount}


@dataclass(frozen=True)
class Block:
    """A committed block: one version of the ledger state."""

    height: int
    block_hash: Uid  # the FNode uid — value root + chained history
    state_root: Uid  # the POS-Tree root of the account map
    transactions: Tuple[Transaction, ...]
    proposer: str

    def short_hash(self) -> str:
        """Abbreviated Base32 block id."""
        return self.block_hash.base32()[:16]


class Ledger:
    """An account ledger whose chain is the version derivation graph."""

    def __init__(
        self,
        engine: Optional[ForkBase] = None,
        key: str = "ledger",
    ) -> None:
        self.engine = engine if engine is not None else ForkBase(author="ledger")
        self.key = key
        self._pending: List[Transaction] = []

    # -- chain construction ------------------------------------------------------

    def genesis(
        self, allocations: Dict[str, int], proposer: str = "genesis"
    ) -> Block:
        """Mint the initial state as block 0."""
        if self.engine.exists(self.key):
            raise ForkBaseError(f"ledger {self.key!r} already has a genesis")
        if any(amount < 0 for amount in allocations.values()):
            raise ValueError("genesis balances must be non-negative")
        state = {
            account.encode("utf-8"): _encode_balance(amount)
            for account, amount in allocations.items()
        }
        value = FMap.from_dict(self.engine.store, state)
        message = json.dumps(
            {"block": 0, "txns": [], "proposer": proposer}, sort_keys=True
        )
        info = self.engine.put(
            self.key, value, message=message, author=proposer
        )
        return self.block_at(0)

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Stage a transfer for the next block (validated at commit)."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        self._pending.append(Transaction(sender, recipient, amount))

    @property
    def pending(self) -> List[Transaction]:
        """Transactions staged for the next block (copy)."""
        return list(self._pending)

    def commit_block(
        self, proposer: str = "validator", branch: str = DEFAULT_BRANCH
    ) -> Block:
        """Apply the staged transactions as one block on ``branch``.

        The whole block either applies or fails; validation checks every
        intermediate balance.
        """
        state = self._state(branch=branch)
        balances: Dict[bytes, int] = {}

        def balance_of(account: str) -> int:
            key = account.encode("utf-8")
            if key not in balances:
                raw = state.get(key)
                balances[key] = _decode_balance(raw) if raw is not None else 0
            return balances[key]

        for txn in self._pending:
            if balance_of(txn.sender) < txn.amount:
                raise InsufficientFunds(
                    f"{txn.sender!r} has {balance_of(txn.sender)}, "
                    f"needs {txn.amount}"
                )
            balances[txn.sender.encode("utf-8")] -= txn.amount
            balances[txn.recipient.encode("utf-8")] = (
                balance_of(txn.recipient) + txn.amount
            )

        puts = {key: _encode_balance(amount) for key, amount in balances.items()}
        new_state = state.update(puts=puts)
        height = self.height(branch=branch) + 1
        message = json.dumps(
            {
                "block": height,
                "txns": [txn.as_json() for txn in self._pending],
                "proposer": proposer,
            },
            sort_keys=True,
        )
        self.engine.put(
            self.key, new_state, branch=branch, message=message, author=proposer
        )
        self._pending = []
        return self.block_at(height, branch=branch)

    # -- queries --------------------------------------------------------------------

    def _state(
        self,
        branch: Optional[str] = None,
        version: Optional[Uid] = None,
    ) -> FMap:
        obj = self.engine.get(self.key, branch=branch, version=version)
        assert isinstance(obj, FMap)
        return obj

    def balance(
        self,
        account: str,
        branch: Optional[str] = None,
        height: Optional[int] = None,
    ) -> int:
        """Current (or historical, via ``height``) balance of an account."""
        version = None
        if height is not None:
            version = self.block_at(height, branch=branch).block_hash
        raw = self._state(branch=branch, version=version).get(
            account.encode("utf-8")
        )
        return _decode_balance(raw) if raw is not None else 0

    def accounts(self, branch: Optional[str] = None) -> Dict[str, int]:
        """Every account and balance."""
        return {
            key.decode("utf-8"): _decode_balance(value)
            for key, value in self._state(branch=branch).items()
        }

    def total_supply(self, branch: Optional[str] = None) -> int:
        """Sum of all balances — invariant across transfers."""
        return sum(self.accounts(branch=branch).values())

    def height(self, branch: str = DEFAULT_BRANCH) -> int:
        """Height of the branch tip (genesis is height 0).

        Follows first parents only, so a merge block counts as one step —
        the canonical-chain convention (``git log --first-parent``).
        """
        return len(self.chain(branch=branch)) - 1

    def chain(self, branch: str = DEFAULT_BRANCH) -> List[Block]:
        """Canonical-chain blocks oldest-first (first-parent walk)."""
        fnodes = []
        cursor: Optional[Uid] = self.engine.head(self.key, branch)
        while cursor is not None:
            fnode = self.engine.graph.load(cursor)
            fnodes.append(fnode)
            cursor = fnode.bases[0] if fnode.bases else None
        fnodes.reverse()
        blocks = []
        for height, fnode in enumerate(fnodes):
            meta = json.loads(fnode.message) if fnode.message else {}
            txns = tuple(
                Transaction(t["from"], t["to"], t["amount"])
                for t in meta.get("txns", [])
            )
            blocks.append(
                Block(
                    height=height,
                    block_hash=fnode.uid,
                    state_root=fnode.value_root,
                    transactions=txns,
                    proposer=fnode.author,
                )
            )
        return blocks

    def block_at(self, height: int, branch: Optional[str] = None) -> Block:
        """The block at a given height."""
        blocks = self.chain(branch=branch or DEFAULT_BRANCH)
        if not 0 <= height < len(blocks):
            raise IndexError(f"no block at height {height}")
        return blocks[height]

    # -- forks ---------------------------------------------------------------------

    def fork(self, name: str, from_branch: str = DEFAULT_BRANCH) -> None:
        """Open a fork (competing chain tip) at the current head."""
        self.engine.branch(self.key, name, from_branch=from_branch)

    def adopt_fork(self, name: str, into_branch: str = DEFAULT_BRANCH) -> None:
        """Reorg: make the fork's chain the canonical one (head move).

        Only fast-forwards are performed automatically; a non-linear
        adoption should go through :meth:`merge_fork`.
        """
        info = self.engine.merge(self.key, from_branch=name, into_branch=into_branch)
        if info.message not in ("fast-forward", "already up to date"):
            raise ForkBaseError("adopt_fork requires a fast-forward; use merge_fork")

    def merge_fork(
        self, name: str, into_branch: str = DEFAULT_BRANCH, proposer: str = "validator"
    ) -> Block:
        """Merge a fork that touched disjoint accounts (three-way merge)."""
        self.engine.merge(
            self.key,
            from_branch=name,
            into_branch=into_branch,
            message=json.dumps(
                {"block": self.height(into_branch) + 1, "txns": [],
                 "proposer": proposer, "merge_of": name},
                sort_keys=True,
            ),
            author=proposer,
        )
        return self.block_at(self.height(into_branch), branch=into_branch)

    # -- audit ----------------------------------------------------------------------

    def audit(self, branch: str = DEFAULT_BRANCH):
        """Verify the whole chain against (possibly malicious) storage."""
        return self.engine.verify(self.key, branch=branch)
