"""Collaborative dataset curation with lineage — the intro's motivation.

"Processing on the same specific dataset usually involves multiple
disciplines that run analytics or data engineering independently."  This
app turns that workflow into engine primitives:

- a **proposal** is a branch: a curator forks the dataset, applies named
  transformation steps, and every step commits a version whose message
  records the step (the lineage);
- **review** is the differential query: the owner inspects exactly what a
  proposal changes, at row/cell granularity;
- **acceptance** is a merge; rejected proposals are just deleted branch
  heads (the work remains addressable for audit);
- **lineage** is the version history: which steps, by whom, in what
  order, produced the current state — tamper evident end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.db.engine import ForkBase
from repro.errors import ForkBaseError
from repro.table.dataset import DataTable, TableDiff
from repro.vcs.branches import DEFAULT_BRANCH

#: A transformation: takes a row dict, returns the new row (or None to
#: drop the row).
Transform = Callable[[Dict[str, str]], Optional[Dict[str, str]]]


@dataclass(frozen=True)
class LineageStep:
    """One recorded transformation."""

    step: str
    curator: str
    branch: str
    version: str
    rows_changed: int


class CurationPipeline:
    """Branch-per-proposal curation over one dataset."""

    def __init__(self, engine: ForkBase, dataset: str) -> None:
        self.engine = engine
        self.table = DataTable(engine, dataset)
        self.dataset = dataset

    # -- proposals -----------------------------------------------------------

    def propose(self, name: str, curator: str) -> str:
        """Open a proposal branch off master."""
        branch = f"proposal/{name}"
        self.engine.branch(self.dataset, branch, from_branch=DEFAULT_BRANCH)
        return branch

    def apply_step(
        self,
        branch: str,
        step_name: str,
        transform: Transform,
        curator: str,
    ) -> LineageStep:
        """Run a named transform over every row on a proposal branch.

        The commit message records the lineage entry; the version uid
        makes the step tamper evident.
        """
        schema = self.table.schema(branch=branch)
        edited: List[Dict[str, str]] = []
        dropped: List[str] = []
        for row in self.table.rows(branch=branch):
            result = transform(dict(row))
            if result is None:
                dropped.append(row[schema.primary_key])
                continue
            if set(result) != set(schema.columns):
                raise ForkBaseError(
                    f"step {step_name!r} produced a row with wrong columns"
                )
            if result != row:
                edited.append(result)
        changed = len(edited) + len(dropped)

        message = json.dumps(
            {"curation_step": step_name, "curator": curator,
             "rows_changed": changed},
            sort_keys=True,
        )
        # One commit for the whole step, even when it drops and edits.
        fmap = self.table.row_map(branch=branch)
        puts = {schema.row_key(row): schema.encode_row(row) for row in edited}
        deletes = [schema.key_for(pk) for pk in dropped]
        self.engine.put(
            self.dataset,
            fmap.update(puts=puts, deletes=deletes),
            branch=branch,
            message=message,
            author=curator,
        )
        info = self.engine.meta(self.dataset, branch)
        return LineageStep(
            step=step_name,
            curator=curator,
            branch=branch,
            version=info["version"],
            rows_changed=changed,
        )

    def review(self, branch: str) -> TableDiff:
        """What would merging this proposal change?"""
        return self.table.diff(DEFAULT_BRANCH, branch)

    def accept(self, branch: str, reviewer: str, message: str = "") -> str:
        """Merge the proposal into master; returns the new head version."""
        info = self.engine.merge(
            self.dataset,
            from_branch=branch,
            into_branch=DEFAULT_BRANCH,
            message=message or f"accept {branch}",
            author=reviewer,
        )
        return info.version

    def reject(self, branch: str) -> None:
        """Drop the proposal head (its versions stay auditable)."""
        self.engine.delete_branch(self.dataset, branch)

    def proposals(self) -> List[str]:
        """Open proposal branches."""
        return [
            branch
            for branch in self.engine.branches(self.dataset)
            if branch.startswith("proposal/")
        ]

    # -- lineage -----------------------------------------------------------------

    def lineage(self, branch: str = DEFAULT_BRANCH) -> List[LineageStep]:
        """Curation steps reachable from a head, oldest first."""
        steps: List[LineageStep] = []
        for fnode in self.engine.history(self.dataset, branch=branch):
            if not fnode.message:
                continue
            try:
                meta = json.loads(fnode.message)
            except (json.JSONDecodeError, ValueError):
                continue
            if isinstance(meta, dict) and "curation_step" in meta:
                steps.append(
                    LineageStep(
                        step=meta["curation_step"],
                        curator=meta.get("curator", fnode.author),
                        branch=branch,
                        version=fnode.uid.base32(),
                        rows_changed=meta.get("rows_changed", 0),
                    )
                )
        steps.reverse()
        return steps

    def audit(self, branch: str = DEFAULT_BRANCH):
        """Tamper-evidence validation of the whole curation history."""
        return self.engine.verify(self.dataset, branch=branch)
