"""ForkBase reproduction: an immutable, tamper-evident storage substrate
for branchable applications.

Python reimplementation of the system demonstrated in *ForkBase:
Immutable, Tamper-evident Storage Substrate for Branchable Applications*
(Lin et al., ICDE 2020 demo; engine described in Wang et al., PVLDB 2018).

Layer map (bottom-up, mirroring Fig. 1 of the paper):

- :mod:`repro.chunk`, :mod:`repro.rolling`, :mod:`repro.store`,
  :mod:`repro.cluster` -- content-addressed chunk storage with
  content-defined slicing, local and simulated-distributed backends.
- :mod:`repro.postree` -- the POS-Tree (SIRI index): structurally
  invariant Merkle B+-tree with O(D log N) diff and sub-tree-reusing
  three-way merge.
- :mod:`repro.types`, :mod:`repro.vcs` -- typed objects and the version
  derivation graph (FNodes, branches, tamper-evident uids).
- :mod:`repro.db` -- the engine facade (Put/Get/Branch/Merge/Diff/...).
- :mod:`repro.table`, :mod:`repro.security`, :mod:`repro.api` -- semantic
  views: relational datasets, verification + ACLs, CLI/REST surfaces.
- :mod:`repro.baselines`, :mod:`repro.workloads` -- comparison systems and
  synthetic workloads used by the benchmark harness.

Quickstart::

    from repro import ForkBase

    db = ForkBase()
    db.put("profile", {"name": "ada", "role": "admin"})
    db.branch("profile", "experiment")
    db.put("profile", {"name": "ada", "role": "analyst"}, branch="experiment")
    diff = db.diff("profile", branch_a="master", branch_b="experiment")
"""

from repro.db.engine import ForkBase, VersionInfo
from repro.store import CachedStore, FileStore, InMemoryStore
from repro.types import FBlob, FBool, FList, FMap, FNumber, FSet, FString

__version__ = "1.0.0"

__all__ = [
    "ForkBase",
    "VersionInfo",
    "CachedStore",
    "FileStore",
    "InMemoryStore",
    "FBlob",
    "FBool",
    "FList",
    "FMap",
    "FNumber",
    "FSet",
    "FString",
    "__version__",
]
