"""Relational semantic view (Fig. 1 top layer; the demo's Dataset pages).

A *dataset* is a relational table stored as a map object: one entry per
row, keyed by primary key, with the schema stored under a reserved key.
Because the map is a POS-Tree, datasets inherit page-level deduplication
(Fig. 4), O(D log N) branch diffs (Fig. 5) and tamper-evident versions
(Fig. 6) with no table-specific machinery.
"""

from repro.table.dataset import DataTable, LoadReport, RowDiff, TableDiff
from repro.table.schema import Schema

__all__ = ["DataTable", "LoadReport", "RowDiff", "TableDiff", "Schema"]
