"""DataTable: the dataset management view over the engine.

Implements the demo's dataset operations: CSV load (Fig. 4, with the
storage-increment accounting), Select, Stat, Export, row/cell-granular
branch Diff (Fig. 5), plus normal row CRUD — each write stamping a new
tamper-evident version (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.chunk import Uid
from repro.db.engine import ForkBase, VersionInfo
from repro.errors import SchemaError, UnknownKeyError
from repro.table import csvio
from repro.table.schema import ROW_PREFIX, SCHEMA_KEY, Schema
from repro.types import FMap
from repro.vcs.branches import DEFAULT_BRANCH


@dataclass(frozen=True)
class LoadReport:
    """What a CSV load did to logical and physical storage (Fig. 4)."""

    version: VersionInfo
    rows_loaded: int
    logical_bytes: int  # bytes offered to the store by this load
    physical_bytes_added: int  # bytes actually materialized (post-dedup)
    chunks_new: int
    chunks_deduped: int

    @property
    def dedup_savings(self) -> float:
        """Fraction of offered bytes absorbed by deduplication."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.physical_bytes_added / self.logical_bytes

    def describe(self) -> str:
        """Fig.-4-style one-liner."""
        return (
            f"loaded {self.rows_loaded} rows: "
            f"+{self.physical_bytes_added / 1024:.2f} KB physical "
            f"({self.logical_bytes / 1024:.2f} KB logical, "
            f"{self.dedup_savings * 100:.1f}% deduplicated)"
        )


@dataclass(frozen=True)
class RowDiff:
    """One differing row between two dataset versions."""

    pk: str
    kind: str  # "added" | "removed" | "changed"
    old: Optional[Dict[str, str]]
    new: Optional[Dict[str, str]]
    changed_columns: Tuple[str, ...] = ()


@dataclass
class TableDiff:
    """Row- and cell-granular dataset diff (what Fig. 5 visualizes)."""

    rows: List[RowDiff] = field(default_factory=list)
    schema_changed: bool = False
    #: Carried over from the underlying tree diff: pruning effectiveness.
    subtrees_pruned: int = 0
    nodes_loaded: int = 0

    @property
    def added(self) -> List[RowDiff]:
        return [r for r in self.rows if r.kind == "added"]

    @property
    def removed(self) -> List[RowDiff]:
        return [r for r in self.rows if r.kind == "removed"]

    @property
    def changed(self) -> List[RowDiff]:
        return [r for r in self.rows if r.kind == "changed"]

    def is_empty(self) -> bool:
        return not self.rows and not self.schema_changed


@dataclass(frozen=True)
class ColumnStat:
    """The Stat verb's output for one column."""

    column: str
    count: int
    distinct: int
    numeric: bool
    minimum: Optional[Union[float, str]]
    maximum: Optional[Union[float, str]]
    mean: Optional[float]


Predicate = Callable[[Dict[str, str]], bool]


class DataTable:
    """A named, branchable relational dataset."""

    def __init__(self, engine: ForkBase, name: str) -> None:
        self.engine = engine
        self.name = name

    # -- creation / loading -------------------------------------------------------

    @classmethod
    def create(
        cls,
        engine: ForkBase,
        name: str,
        schema: Schema,
        branch: str = DEFAULT_BRANCH,
        message: str = "create table",
    ) -> "DataTable":
        """Create an empty dataset with the given schema."""
        value = FMap.from_dict(engine.store, {SCHEMA_KEY: schema.encode()})
        engine.put(name, value, branch=branch, message=message)
        return cls(engine, name)

    @classmethod
    def load_csv(
        cls,
        engine: ForkBase,
        name: str,
        csv_text: str,
        primary_key: str,
        branch: str = DEFAULT_BRANCH,
        message: str = "load csv",
    ) -> Tuple["DataTable", LoadReport]:
        """Load a CSV as a (new version of a) dataset, with Fig. 4 accounting.

        The returned report's ``physical_bytes_added`` is the storage
        increment the demo displays: large for the first load, tiny for a
        near-duplicate load.
        """
        header, rows = csvio.parse_csv(csv_text)
        schema = Schema.of(header, primary_key)
        mapping: Dict[bytes, bytes] = {SCHEMA_KEY: schema.encode()}
        for row in rows:
            mapping[schema.row_key(row)] = schema.encode_row(row)
        before = engine.store.stats.snapshot()
        value = FMap.from_dict(engine.store, mapping)
        info = engine.put(name, value, branch=branch, message=message)
        delta = engine.store.stats.delta(before)
        report = LoadReport(
            version=info,
            rows_loaded=len(rows),
            logical_bytes=delta.logical_bytes,
            physical_bytes_added=delta.physical_bytes,
            chunks_new=delta.puts_new,
            chunks_deduped=delta.puts_dup,
        )
        return cls(engine, name), report

    # -- plumbing -----------------------------------------------------------------

    def row_map(
        self, branch: Optional[str] = None, version: Optional[Union[Uid, str]] = None
    ) -> FMap:
        """The raw key→row FMap at a branch head or version.

        Public so batch curation can edit many rows in one commit instead
        of reaching into dataset internals.
        """
        obj = self.engine.get(self.name, branch=branch, version=version)
        if not isinstance(obj, FMap):
            raise SchemaError(f"{self.name!r} is not a dataset (type {obj.TYPE_NAME})")
        return obj

    def schema(
        self, branch: Optional[str] = None, version: Optional[Union[Uid, str]] = None
    ) -> Schema:
        """The dataset's schema at a branch head or version."""
        data = self.row_map(branch, version).get(SCHEMA_KEY)
        if data is None:
            raise SchemaError(f"{self.name!r} has no schema entry")
        return Schema.decode(data)

    def _commit(self, value: FMap, branch: str, message: str) -> VersionInfo:
        return self.engine.put(self.name, value, branch=branch, message=message)

    # -- reads ---------------------------------------------------------------------

    def row_count(
        self, branch: Optional[str] = None, version: Optional[Union[Uid, str]] = None
    ) -> int:
        """Number of data rows (schema entry excluded)."""
        return len(self.row_map(branch, version)) - 1

    def get_row(
        self,
        pk: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> Optional[Dict[str, str]]:
        """Fetch one row by primary key."""
        fmap = self.row_map(branch, version)
        schema = self.schema(branch, version)
        data = fmap.get(schema.key_for(pk))
        if data is None:
            return None
        return schema.decode_row(data)

    def rows(
        self, branch: Optional[str] = None, version: Optional[Union[Uid, str]] = None
    ) -> Iterator[Dict[str, str]]:
        """Iterate all rows in primary-key order."""
        fmap = self.row_map(branch, version)
        schema = self.schema(branch, version)
        for key, value in fmap.items():
            if key.startswith(ROW_PREFIX):
                yield schema.decode_row(value)

    def select(
        self,
        where: Optional[Predicate] = None,
        columns: Optional[List[str]] = None,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, str]]:
        """The Select verb: filter rows, optionally projecting columns."""
        out: List[Dict[str, str]] = []
        for row in self.rows(branch, version):
            if where is not None and not where(row):
                continue
            if columns is not None:
                row = {column: row[column] for column in columns}
            out.append(row)
            if limit is not None and len(out) >= limit:
                break
        return out

    def stat(
        self,
        column: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> ColumnStat:
        """The Stat verb: summary statistics for one column."""
        schema = self.schema(branch, version)
        if column not in schema.columns:
            raise SchemaError(f"unknown column {column!r}")
        values = [row[column] for row in self.rows(branch, version)]
        numeric_values: Optional[List[float]] = []
        for value in values:
            try:
                numeric_values.append(float(value))
            except ValueError:
                numeric_values = None
                break
        if numeric_values is not None and values:
            return ColumnStat(
                column=column,
                count=len(values),
                distinct=len(set(values)),
                numeric=True,
                minimum=min(numeric_values),
                maximum=max(numeric_values),
                mean=sum(numeric_values) / len(numeric_values),
            )
        return ColumnStat(
            column=column,
            count=len(values),
            distinct=len(set(values)),
            numeric=False,
            minimum=min(values) if values else None,
            maximum=max(values) if values else None,
            mean=None,
        )

    def export_csv(
        self, branch: Optional[str] = None, version: Optional[Union[Uid, str]] = None
    ) -> str:
        """The Export verb: render the dataset back to CSV."""
        schema = self.schema(branch, version)
        return csvio.render_csv(schema.columns, self.rows(branch, version))

    # -- writes -------------------------------------------------------------------

    def upsert_rows(
        self,
        rows: List[Dict[str, str]],
        branch: str = DEFAULT_BRANCH,
        message: str = "upsert rows",
    ) -> VersionInfo:
        """Insert or replace rows; one new version for the batch."""
        schema = self.schema(branch)
        fmap = self.row_map(branch)
        puts = {schema.row_key(row): schema.encode_row(row) for row in rows}
        return self._commit(fmap.update(puts=puts), branch, message)

    def update_cells(
        self,
        pk: str,
        changes: Dict[str, str],
        branch: str = DEFAULT_BRANCH,
        message: str = "update cells",
    ) -> VersionInfo:
        """Point-update some columns of one row."""
        row = self.get_row(pk, branch=branch)
        if row is None:
            raise UnknownKeyError(f"{self.name}[{pk}]")
        unknown = [column for column in changes if column not in row]
        if unknown:
            raise SchemaError(f"unknown columns: {unknown}")
        row.update(changes)
        return self.upsert_rows([row], branch=branch, message=message)

    def delete_rows(
        self,
        pks: List[str],
        branch: str = DEFAULT_BRANCH,
        message: str = "delete rows",
    ) -> VersionInfo:
        """Remove rows by primary key; one new version for the batch."""
        schema = self.schema(branch)
        fmap = self.row_map(branch)
        deletes = [schema.key_for(pk) for pk in pks]
        return self._commit(fmap.update(deletes=deletes), branch, message)

    # -- branch operations ----------------------------------------------------------

    def branch(self, new_branch: str, from_branch: str = DEFAULT_BRANCH) -> Uid:
        """Fork the dataset (Git-like branch; zero data copied)."""
        return self.engine.branch(self.name, new_branch, from_branch=from_branch)

    def merge(
        self,
        from_branch: str,
        into_branch: str = DEFAULT_BRANCH,
        resolver=None,
        message: str = "",
    ) -> VersionInfo:
        """Three-way merge of dataset branches (row-granular)."""
        return self.engine.merge(
            self.name,
            from_branch=from_branch,
            into_branch=into_branch,
            resolver=resolver,
            message=message,
        )

    def diff(
        self,
        branch_a: Optional[str] = None,
        branch_b: Optional[str] = None,
        version_a: Optional[Union[Uid, str]] = None,
        version_b: Optional[Union[Uid, str]] = None,
    ) -> TableDiff:
        """The Fig. 5 differential query, lifted to rows and cells."""
        tree_diff = self.engine.diff(
            self.name,
            branch_a=branch_a,
            branch_b=branch_b,
            version_a=version_a,
            version_b=version_b,
        )
        schema = self.schema(branch_a, version_a)
        return self._lift_diff(tree_diff, schema)

    def diff_against(
        self,
        other: "DataTable",
        branch: Optional[str] = None,
        other_branch: Optional[str] = None,
    ) -> TableDiff:
        """Cross-dataset differential query (Dataset-1 vs Dataset-2).

        Both datasets must share a schema; content addressing makes this
        exactly as cheap as a branch diff.
        """
        schema = self.schema(branch)
        if other.schema(other_branch) != schema:
            raise SchemaError("datasets have different schemas")
        tree_diff = self.engine.diff_objects(
            self.name, other.name, branch_a=branch, branch_b=other_branch
        )
        return self._lift_diff(tree_diff, schema)

    def _lift_diff(self, tree_diff, schema: Schema) -> TableDiff:
        """Translate a map-level diff into rows and changed columns."""
        out = TableDiff(
            subtrees_pruned=tree_diff.subtrees_pruned,
            nodes_loaded=tree_diff.nodes_loaded,
        )
        for key, value in tree_diff.added.items():
            if key == SCHEMA_KEY:
                out.schema_changed = True
                continue
            out.rows.append(
                RowDiff(schema.pk_of(key), "added", None, schema.decode_row(value))
            )
        for key, value in tree_diff.removed.items():
            if key == SCHEMA_KEY:
                out.schema_changed = True
                continue
            out.rows.append(
                RowDiff(schema.pk_of(key), "removed", schema.decode_row(value), None)
            )
        for key, (old, new) in tree_diff.changed.items():
            if key == SCHEMA_KEY:
                out.schema_changed = True
                continue
            out.rows.append(
                RowDiff(
                    schema.pk_of(key),
                    "changed",
                    schema.decode_row(old),
                    schema.decode_row(new),
                    tuple(schema.changed_columns(old, new)),
                )
            )
        out.rows.sort(key=lambda r: r.pk)
        return out
