"""Table schemas and the row codec.

Rows are serialized column-by-column in schema order with the canonical
codec, so logically equal rows are byte-equal — a prerequisite for the
map layer's deduplication to see row-level redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.chunk import Reader, Writer
from repro.errors import SchemaError

#: Reserved map key holding the serialized schema (sorts before row keys).
SCHEMA_KEY = b"\x00schema"
#: Prefix for row keys, keeping them clear of reserved entries.
ROW_PREFIX = b"r:"


@dataclass(frozen=True)
class Schema:
    """Column names plus the primary-key column."""

    columns: Tuple[str, ...]
    primary_key: str

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("schema needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError("duplicate column names")
        if self.primary_key not in self.columns:
            raise SchemaError(
                f"primary key {self.primary_key!r} not among columns {self.columns}"
            )

    @classmethod
    def of(cls, columns: Sequence[str], primary_key: str) -> "Schema":
        """Build a schema from a column list."""
        return cls(tuple(columns), primary_key)

    def encode(self) -> bytes:
        """Canonical serialization (stored under :data:`SCHEMA_KEY`)."""
        return Writer().text_list(list(self.columns)).text(self.primary_key).getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Schema":
        """Parse :meth:`encode` output."""
        reader = Reader(data)
        columns = tuple(reader.text_list())
        primary_key = reader.text()
        reader.expect_end()
        return cls(columns, primary_key)

    # -- row codec ---------------------------------------------------------------

    def row_key(self, row: Dict[str, str]) -> bytes:
        """Map key for a row: prefix + primary-key value."""
        try:
            return ROW_PREFIX + row[self.primary_key].encode("utf-8")
        except KeyError:
            raise SchemaError(f"row missing primary key {self.primary_key!r}") from None

    def key_for(self, pk_value: str) -> bytes:
        """Map key for a primary-key value."""
        return ROW_PREFIX + pk_value.encode("utf-8")

    def pk_of(self, row_key: bytes) -> str:
        """Primary-key value back out of a map key."""
        if not row_key.startswith(ROW_PREFIX):
            raise SchemaError(f"not a row key: {row_key!r}")
        return row_key[len(ROW_PREFIX) :].decode("utf-8")

    def encode_row(self, row: Dict[str, str]) -> bytes:
        """Serialize a row dict in column order."""
        missing = [column for column in self.columns if column not in row]
        if missing:
            raise SchemaError(f"row missing columns: {missing}")
        extra = [column for column in row if column not in self.columns]
        if extra:
            raise SchemaError(f"row has unknown columns: {extra}")
        writer = Writer()
        for column in self.columns:
            writer.text(row[column])
        return writer.getvalue()

    def decode_row(self, data: bytes) -> Dict[str, str]:
        """Parse a row back into a dict."""
        reader = Reader(data)
        row = {column: reader.text() for column in self.columns}
        reader.expect_end()
        return row

    def changed_columns(self, old: bytes, new: bytes) -> List[str]:
        """Which columns differ between two encoded rows (cell-level diff)."""
        old_row = self.decode_row(old)
        new_row = self.decode_row(new)
        return [c for c in self.columns if old_row[c] != new_row[c]]
