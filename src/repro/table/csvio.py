"""CSV import/export for datasets (the demo's load/export flows)."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterator, List, Sequence, Tuple


def parse_csv(text: str) -> Tuple[List[str], List[Dict[str, str]]]:
    """Parse CSV text into (header, row dicts)."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ValueError("empty CSV")
    header = rows[0]
    out: List[Dict[str, str]] = []
    for line_no, values in enumerate(rows[1:], start=2):
        if not values:
            continue
        if len(values) != len(header):
            raise ValueError(
                f"CSV line {line_no}: expected {len(header)} fields, got {len(values)}"
            )
        out.append(dict(zip(header, values)))
    return header, out


def render_csv(header: Sequence[str], rows: Iterator[Dict[str, str]]) -> str:
    """Serialize row dicts back to CSV text (columns in ``header`` order)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(header))
    for row in rows:
        writer.writerow([row[column] for column in header])
    return buffer.getvalue()


def read_csv_file(path: str) -> Tuple[List[str], List[Dict[str, str]]]:
    """Parse a CSV file from disk."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        return parse_csv(handle.read())
