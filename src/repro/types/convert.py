"""Conversions between plain Python values and ForkBase typed objects."""

from __future__ import annotations

from typing import Union

from repro.errors import TypeMismatchError
from repro.store.base import ChunkStore
from repro.types.base import FObject
from repro.types.blob import FBlob
from repro.types.flist import FList
from repro.types.fmap import FMap
from repro.types.fset import FSet
from repro.types.primitives import FBool, FNumber, FString

PyValue = Union[str, bytes, int, float, bool, dict, set, frozenset, list, tuple]


def _as_bytes(value: Union[str, bytes]) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeMismatchError(
        f"map/set/list elements must be str or bytes, got {type(value).__name__}"
    )


def wrap(store: ChunkStore, value: Union[PyValue, FObject]) -> FObject:
    """Store a Python value as the matching ForkBase type.

    dict → map, set → set, list/tuple → list, bytes → blob, str → string,
    bool → bool, int/float → number.  FObjects pass through.
    """
    if isinstance(value, FObject):
        return value
    if isinstance(value, bool):
        return FBool(store, value)
    if isinstance(value, (int, float)):
        return FNumber(store, value)
    if isinstance(value, str):
        return FString(store, value)
    if isinstance(value, (bytes, bytearray)):
        return FBlob.from_bytes(store, bytes(value))
    if isinstance(value, dict):
        pairs = {_as_bytes(k): _as_bytes(v) for k, v in value.items()}
        return FMap.from_dict(store, pairs)
    if isinstance(value, (set, frozenset)):
        return FSet.from_iterable(store, (_as_bytes(m) for m in sorted(value)))
    if isinstance(value, (list, tuple)):
        return FList.from_items(store, (_as_bytes(i) for i in value))
    raise TypeMismatchError(f"no ForkBase type for {type(value).__name__}")


def unwrap(obj: FObject) -> PyValue:
    """Materialize a typed object back into a plain Python value.

    Maps/sets/lists come back with ``bytes`` elements (callers own the
    text codec); blobs come back as ``bytes``.
    """
    if isinstance(obj, (FString, FNumber, FBool)):
        return obj.value
    if isinstance(obj, FBlob):
        return obj.read()
    if isinstance(obj, FMap):
        return obj.to_dict()
    if isinstance(obj, FSet):
        return obj.to_set()
    if isinstance(obj, FList):
        return obj.to_list()
    raise TypeMismatchError(f"cannot unwrap {type(obj).__name__}")
