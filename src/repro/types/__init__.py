"""Typed immutable objects (the Data Access API layer of Fig. 1).

"Supported data types include primitives (string, number, boolean), blob,
map, set and list, as well as composite data structures built on them
(e.g., relational table)."

Every type is a thin immutable wrapper over a Merkle-rooted representation
in a chunk store: primitives are single chunks, blobs are BlobTrees, and
map/set/list are POS-Trees.  Objects compare equal iff their roots match,
which — by structural invariance — means iff their logical content
matches.
"""

from repro.types.base import FObject, load_object, register_type, type_for_python
from repro.types.blob import FBlob
from repro.types.flist import FList
from repro.types.fmap import FMap
from repro.types.fset import FSet
from repro.types.primitives import FBool, FNumber, FString

__all__ = [
    "FObject",
    "load_object",
    "register_type",
    "type_for_python",
    "FBlob",
    "FList",
    "FMap",
    "FSet",
    "FBool",
    "FNumber",
    "FString",
]
