"""Primitive values: string, number, boolean.

Each primitive is one PRIMITIVE chunk whose payload is a kind byte plus
the canonical encoding of the value, so equal primitives share a chunk.
"""

from __future__ import annotations

from typing import Union

from repro.chunk import Chunk, ChunkType, Reader, Uid, Writer
from repro.errors import ChunkEncodingError
from repro.store.base import ChunkStore
from repro.types.base import FObject, register_type

_KIND_STRING = 1
_KIND_INT = 2
_KIND_FLOAT = 3
_KIND_BOOL = 4


def _store_primitive(store: ChunkStore, payload: bytes) -> Uid:
    chunk = Chunk(ChunkType.PRIMITIVE, payload)
    store.put(chunk)
    return chunk.uid


@register_type
class FString(FObject):
    """An immutable UTF-8 string value."""

    TYPE_NAME = "string"
    __slots__ = ("store", "root", "_value")

    def __init__(self, store: ChunkStore, value: str) -> None:
        self.store = store
        self._value = value
        payload = Writer().uvarint(_KIND_STRING).text(value).getvalue()
        self.root = _store_primitive(store, payload)

    @property
    def value(self) -> str:
        """The wrapped string."""
        return self._value

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FString":
        reader = Reader(store.get(root).data)
        if reader.uvarint() != _KIND_STRING:
            raise ChunkEncodingError("primitive chunk is not a string")
        return cls(store, reader.text())


@register_type
class FNumber(FObject):
    """An immutable numeric value (int or float, kept distinct)."""

    TYPE_NAME = "number"
    __slots__ = ("store", "root", "_value")

    def __init__(self, store: ChunkStore, value: Union[int, float]) -> None:
        if isinstance(value, bool):
            raise TypeError("use FBool for booleans")
        self.store = store
        self._value = value
        if isinstance(value, int):
            payload = Writer().uvarint(_KIND_INT).svarint(value).getvalue()
        else:
            payload = Writer().uvarint(_KIND_FLOAT).float64(value).getvalue()
        self.root = _store_primitive(store, payload)

    @property
    def value(self) -> Union[int, float]:
        """The wrapped number."""
        return self._value

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FNumber":
        reader = Reader(store.get(root).data)
        kind = reader.uvarint()
        if kind == _KIND_INT:
            return cls(store, reader.svarint())
        if kind == _KIND_FLOAT:
            return cls(store, reader.float64())
        raise ChunkEncodingError("primitive chunk is not a number")


@register_type
class FBool(FObject):
    """An immutable boolean value."""

    TYPE_NAME = "bool"
    __slots__ = ("store", "root", "_value")

    def __init__(self, store: ChunkStore, value: bool) -> None:
        self.store = store
        self._value = bool(value)
        payload = Writer().uvarint(_KIND_BOOL).uvarint(1 if value else 0).getvalue()
        self.root = _store_primitive(store, payload)

    @property
    def value(self) -> bool:
        """The wrapped boolean."""
        return self._value

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FBool":
        reader = Reader(store.get(root).data)
        if reader.uvarint() != _KIND_BOOL:
            raise ChunkEncodingError("primitive chunk is not a bool")
        return cls(store, reader.uvarint() == 1)
