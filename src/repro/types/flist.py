"""FList: ordered sequence over a positional POS-Tree."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.chunk import Uid
from repro.postree.listtree import PositionalTree
from repro.store.base import ChunkStore
from repro.types.base import FObject, register_type


@register_type
class FList(FObject):
    """An immutable sequence of byte strings."""

    TYPE_NAME = "list"
    __slots__ = ("store", "root", "_tree")

    def __init__(self, store: ChunkStore, tree: PositionalTree) -> None:
        self.store = store
        self._tree = tree
        self.root = tree.root

    @classmethod
    def from_items(cls, store: ChunkStore, items: Iterable[bytes]) -> "FList":
        """Bulk-build from items."""
        return cls(store, PositionalTree.from_items(store, items))

    @classmethod
    def empty(cls, store: ChunkStore) -> "FList":
        """The empty list."""
        return cls.from_items(store, [])

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FList":
        return cls(store, PositionalTree(store, root))

    def __len__(self) -> int:
        return len(self._tree)

    def __getitem__(self, position: int) -> bytes:
        return self._tree.get(position)

    def __iter__(self) -> Iterator[bytes]:
        return self._tree.iter_items()

    def slice(self, start: int, stop: Optional[int] = None) -> List[bytes]:
        """Materialized sub-sequence."""
        return list(self._tree.iter_items(start, stop))

    def append(self, item: bytes) -> "FList":
        """Return a list with ``item`` at the end."""
        return FList(self.store, self._tree.append(item))

    def extend(self, items: Iterable[bytes]) -> "FList":
        """Return a list with ``items`` appended."""
        return FList(self.store, self._tree.extend(items))

    def insert(self, position: int, item: bytes) -> "FList":
        """Return a list with ``item`` inserted before ``position``."""
        return FList(self.store, self._tree.insert(position, item))

    def delete(self, position: int) -> "FList":
        """Return a list without the element at ``position``."""
        return FList(self.store, self._tree.delete(position))

    def set(self, position: int, item: bytes) -> "FList":
        """Return a list with the element at ``position`` replaced."""
        return FList(self.store, self._tree.set(position, item))

    def splice(
        self, start: int, stop: int, replacement: Iterable[bytes] = ()
    ) -> "FList":
        """General range replacement."""
        return FList(self.store, self._tree.splice(start, stop, replacement))

    def to_list(self) -> List[bytes]:
        """Materialize (tests / small lists only)."""
        return self._tree.items()

    def page_uids(self):
        """All pages backing this list."""
        return self._tree.page_uids()
