"""Common machinery for ForkBase value types."""

from __future__ import annotations

from typing import Dict, Type

from repro.chunk import Uid
from repro.errors import TypeMismatchError
from repro.store.base import ChunkStore


class FObject:
    """Base class for immutable typed values.

    Subclasses expose:

    - ``TYPE_NAME`` — the wire name recorded in FNodes;
    - ``root`` — the Merkle root uid of the value representation;
    - ``load(store, root)`` — reconstruct from storage;
    - type-specific accessors (all read-only) and functional updates that
      return *new* objects.
    """

    TYPE_NAME = "object"

    store: ChunkStore
    root: Uid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FObject):
            return self.TYPE_NAME == other.TYPE_NAME and self.root == other.root
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.TYPE_NAME, self.root))

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FObject":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(root={self.root.short()}…)"


_REGISTRY: Dict[str, Type[FObject]] = {}


def register_type(cls: Type[FObject]) -> Type[FObject]:
    """Class decorator adding a type to the load registry."""
    _REGISTRY[cls.TYPE_NAME] = cls
    return cls


def load_object(store: ChunkStore, type_name: str, root: Uid) -> FObject:
    """Reconstruct a typed object from (type name, root uid)."""
    cls = _REGISTRY.get(type_name)
    if cls is None:
        raise TypeMismatchError(f"unknown ForkBase type: {type_name!r}")
    return cls.load(store, root)


def type_for_python(value: object) -> str:
    """Map a plain Python value to the ForkBase type that stores it."""
    import repro.types.primitives  # noqa: F401  (populate registry)
    import repro.types.blob  # noqa: F401
    import repro.types.fmap  # noqa: F401
    import repro.types.fset  # noqa: F401
    import repro.types.flist  # noqa: F401

    if isinstance(value, FObject):
        return value.TYPE_NAME
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (bytes, bytearray)):
        return "blob"
    if isinstance(value, dict):
        return "map"
    if isinstance(value, (set, frozenset)):
        return "set"
    if isinstance(value, (list, tuple)):
        return "list"
    raise TypeMismatchError(f"no ForkBase type for {type(value).__name__}")
