"""FBlob: large byte values over content-defined chunks."""

from __future__ import annotations

from repro.chunk import Uid
from repro.postree.listtree import BlobTree
from repro.store.base import ChunkStore
from repro.types.base import FObject, register_type


@register_type
class FBlob(FObject):
    """An immutable byte string, chunked by the rolling hash.

    Near-duplicate blobs (a file with a one-word edit, Fig. 4) share all
    but a couple of chunks in physical storage.
    """

    TYPE_NAME = "blob"
    __slots__ = ("store", "root", "_tree")

    def __init__(self, store: ChunkStore, tree: BlobTree) -> None:
        self.store = store
        self._tree = tree
        self.root = tree.root

    @classmethod
    def from_bytes(cls, store: ChunkStore, data: bytes) -> "FBlob":
        """Chunk and store ``data``."""
        return cls(store, BlobTree.from_bytes(store, data))

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FBlob":
        return cls(store, BlobTree(store, root))

    def read(self) -> bytes:
        """Reassemble the full payload."""
        return self._tree.read()

    def read_at(self, offset: int, length: int) -> bytes:
        """Random-access read."""
        return self._tree.read_at(offset, length)

    def size(self) -> int:
        """Length in bytes."""
        return self._tree.size()

    def splice(self, start: int, stop: int, replacement: bytes = b"") -> "FBlob":
        """Functional byte-range replacement; unchanged chunks dedup."""
        return FBlob(self.store, self._tree.splice(start, stop, replacement))

    def append(self, data: bytes) -> "FBlob":
        """Functional append."""
        size = self.size()
        return self.splice(size, size, data)

    def page_uids(self):
        """All pages backing this blob (storage accounting)."""
        return self._tree.page_uids()
