"""FSet: ordered set as a POS-Tree with empty values."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set, Tuple

from repro.chunk import Uid
from repro.postree.diff import diff_trees
from repro.postree.tree import PosTree
from repro.store.base import ChunkStore
from repro.types.base import FObject, register_type


@register_type
class FSet(FObject):
    """An immutable ordered set of byte strings."""

    TYPE_NAME = "set"
    __slots__ = ("store", "root", "_tree")

    def __init__(self, store: ChunkStore, tree: PosTree) -> None:
        self.store = store
        self._tree = tree
        self.root = tree.root

    @classmethod
    def from_iterable(cls, store: ChunkStore, members: Iterable[bytes]) -> "FSet":
        """Bulk-build from members (duplicates collapse)."""
        return cls(store, PosTree.from_pairs(store, ((m, b"") for m in members)))

    @classmethod
    def empty(cls, store: ChunkStore) -> "FSet":
        """The empty set."""
        return cls(store, PosTree.empty(store))

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FSet":
        return cls(store, PosTree(store, root))

    @property
    def tree(self) -> PosTree:
        """The backing POS-Tree (for engine-level diff/merge plumbing)."""
        return self._tree

    def __contains__(self, member: bytes) -> bool:
        return self._tree.has(member)

    def __len__(self) -> int:
        return len(self._tree)

    def __iter__(self) -> Iterator[bytes]:
        return self._tree.keys()

    def add(self, member: bytes) -> "FSet":
        """Return a set including ``member``."""
        return FSet(self.store, self._tree.put(member, b""))

    def discard(self, member: bytes) -> "FSet":
        """Return a set without ``member``."""
        return FSet(self.store, self._tree.delete(member))

    def update(
        self,
        add: Optional[Iterable[bytes]] = None,
        remove: Optional[Iterable[bytes]] = None,
    ) -> "FSet":
        """Batch membership edits."""
        puts = {member: b"" for member in (add or ())}
        return FSet(self.store, self._tree.update(puts=puts, deletes=remove))

    def symmetric_difference_keys(self, other: "FSet") -> Tuple[Set[bytes], Set[bytes]]:
        """(only in self, only in other) via the pruned tree diff."""
        diff = diff_trees(self._tree, other._tree)
        return set(diff.removed), set(diff.added)

    def to_set(self) -> Set[bytes]:
        """Materialize (tests / small sets only)."""
        return set(self._tree.keys())

    def page_uids(self):
        """All pages backing this set."""
        return self._tree.page_uids()
