"""FMap: ordered map with POS-Tree representation.

The workhorse type: relational tables, datasets and metadata all sit on
maps.  Keys and values are bytes; higher layers choose their own codecs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.chunk import Uid
from repro.postree.diff import TreeDiff, diff_trees
from repro.postree.merge import MergeResult, Resolver, three_way_merge
from repro.postree.tree import PosTree
from repro.store.base import ChunkStore
from repro.types.base import FObject, register_type


@register_type
class FMap(FObject):
    """An immutable ordered map of bytes → bytes."""

    TYPE_NAME = "map"
    __slots__ = ("store", "root", "_tree")

    def __init__(self, store: ChunkStore, tree: PosTree) -> None:
        self.store = store
        self._tree = tree
        self.root = tree.root

    @classmethod
    def from_dict(cls, store: ChunkStore, mapping: Dict[bytes, bytes]) -> "FMap":
        """Bulk-build from a dict."""
        return cls(store, PosTree.from_pairs(store, mapping.items()))

    @classmethod
    def from_pairs(
        cls, store: ChunkStore, pairs: Iterable[Tuple[bytes, bytes]]
    ) -> "FMap":
        """Bulk-build from (key, value) pairs (last write wins)."""
        return cls(store, PosTree.from_pairs(store, pairs))

    @classmethod
    def empty(cls, store: ChunkStore) -> "FMap":
        """The empty map."""
        return cls(store, PosTree.empty(store))

    @classmethod
    def load(cls, store: ChunkStore, root: Uid) -> "FMap":
        return cls(store, PosTree(store, root))

    @property
    def tree(self) -> PosTree:
        """The backing POS-Tree (for engine-level diff/merge plumbing)."""
        return self._tree

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes, default: Optional[bytes] = None) -> Optional[bytes]:
        """Value for ``key`` or ``default``."""
        value = self._tree.get(key)
        return default if value is None else value

    def __getitem__(self, key: bytes) -> bytes:
        value = self._tree.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __contains__(self, key: bytes) -> bool:
        return self._tree.has(key)

    def __len__(self) -> int:
        return len(self._tree)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All pairs in key order."""
        return self._tree.items()

    def keys(self) -> Iterator[bytes]:
        """All keys in order."""
        return self._tree.keys()

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Pairs with start <= key < end."""
        for entry in self._tree.iter_entries(start, end):
            yield entry.key, entry.value

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize (tests / small maps only)."""
        return dict(self.items())

    # -- functional updates ---------------------------------------------------

    def set(self, key: bytes, value: bytes) -> "FMap":
        """Return a map with one upsert applied."""
        return FMap(self.store, self._tree.put(key, value))

    def remove(self, key: bytes) -> "FMap":
        """Return a map without ``key`` (no-op if absent)."""
        return FMap(self.store, self._tree.delete(key))

    def update(
        self,
        puts: Optional[Dict[bytes, bytes]] = None,
        deletes: Optional[Iterable[bytes]] = None,
    ) -> "FMap":
        """Return a map with a batch of edits applied."""
        return FMap(self.store, self._tree.update(puts=puts, deletes=deletes))

    # -- versioned operations ---------------------------------------------------

    def diff(self, other: "FMap") -> TreeDiff:
        """Fast differential query against another map (O(D log N))."""
        return diff_trees(self._tree, other._tree)

    def merge(
        self, base: "FMap", other: "FMap", resolver: Optional[Resolver] = None
    ) -> Tuple["FMap", MergeResult]:
        """Three-way merge: self and ``other`` against common ``base``."""
        result = three_way_merge(base._tree, self._tree, other._tree, resolver)
        return FMap(self.store, self._tree.with_root(result.root)), result

    def page_uids(self):
        """All pages backing this map (storage accounting)."""
        return self._tree.page_uids()

    @property
    def tree(self) -> PosTree:
        """The underlying POS-Tree (advanced callers)."""
        return self._tree
