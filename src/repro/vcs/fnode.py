"""FNode: one committed version of one object.

The uid of an FNode is the SHA-256 of its canonical encoding, which
includes the value's POS-Tree root and the parent version uids.  The
``bases`` links therefore form a hash chain: rewriting any ancestor
changes every descendant uid, which is what lets a client detect history
tampering from the head uid alone (§II-D, §III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.chunk import Chunk, ChunkType, Reader, Uid, Writer
from repro.errors import ChunkEncodingError


@dataclass(frozen=True)
class FNode:
    """An immutable version record in the derivation graph."""

    #: The data key this version belongs to.
    key: str
    #: ForkBase type of the value (``map``, ``blob``, …).
    type_name: str
    #: Merkle root of the value representation.
    value_root: Uid
    #: Parent version uids: () for an initial Put, one for a normal Put,
    #: two for a merge commit.
    bases: Tuple[Uid, ...] = ()
    #: Commit metadata.
    author: str = ""
    message: str = ""
    #: Seconds since epoch; part of the hashed content, like Git.
    timestamp: float = 0.0

    def encode(self) -> Chunk:
        """Canonical FNODE chunk (deterministic byte layout)."""
        writer = (
            Writer()
            .text(self.key)
            .text(self.type_name)
            .uid(self.value_root)
            .uid_list(self.bases)
            .text(self.author)
            .text(self.message)
            .float64(self.timestamp)
        )
        return Chunk(ChunkType.FNODE, writer.getvalue())

    @classmethod
    def decode(cls, chunk: Chunk) -> "FNode":
        """Parse an FNODE chunk."""
        if chunk.type != ChunkType.FNODE:
            raise ChunkEncodingError(f"expected FNODE chunk, got {chunk.type.name}")
        reader = Reader(chunk.data)
        node = cls(
            key=reader.text(),
            type_name=reader.text(),
            value_root=reader.uid(),
            bases=tuple(reader.uid_list()),
            author=reader.text(),
            message=reader.text(),
            timestamp=reader.float64(),
        )
        reader.expect_end()
        return node

    @property
    def uid(self) -> Uid:
        """The tamper-evident version identifier."""
        return self.encode().uid

    def short_uid(self) -> str:
        """Abbreviated Base32 rendering (what the demo UI displays)."""
        return self.uid.base32()[:16]

    def is_merge(self) -> bool:
        """True for merge commits (two bases)."""
        return len(self.bases) >= 2

    def is_initial(self) -> bool:
        """True for the first version of a key on a fresh branch."""
        return not self.bases
