"""Version control layer (paper §II-D).

ForkBase's extended key-value model: every Put creates an **FNode** — a
chunk holding the object's value root, its derivation links (``bases``)
and commit metadata.  FNodes form the **version derivation graph**, a DAG
whose node identifiers (uids) are tamper evident: the uid covers the value
Merkle root *and* the hash chain of bases, so equal uid ⇔ equal value and
equal history.

Branch heads are the only mutable state, held in a
:class:`~repro.vcs.branches.BranchTable` outside the Merkle world —
matching the paper's threat model, where "users keep track of the latest
uid of every branch that has been committed."
"""

from repro.vcs.branches import BranchTable
from repro.vcs.fnode import FNode
from repro.vcs.graph import VersionGraph
from repro.vcs.journal import CommitJournal, apply_record, replay_into

__all__ = ["BranchTable", "CommitJournal", "FNode", "VersionGraph", "apply_record", "replay_into"]
