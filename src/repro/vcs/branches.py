"""Branch heads: the only mutable state in the system.

"A key may have multiple branches" (§II-D).  The table maps
``key → {branch name → head version uid}``.  It lives *outside* the
Merkle store on purpose: under the paper's threat model the storage is
untrusted, and it is the client's record of branch heads that anchors
tamper-evidence validation.

The table serializes to a plain JSON-compatible dict so engines can
persist it wherever they like (a local file in :class:`repro.db.engine.ForkBase`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.chunk import Uid
from repro.errors import BranchExistsError, HeadMovedError, UnknownBranchError

DEFAULT_BRANCH = "master"

#: Sentinel distinguishing "no CAS requested" from "expect no branch" (None).
_UNSET = object()


class BranchTable:
    """Per-key named branch heads."""

    def __init__(self) -> None:
        self._heads: Dict[str, Dict[str, Uid]] = {}

    # -- queries ---------------------------------------------------------------

    def keys(self) -> List[str]:
        """All data keys that have at least one branch."""
        return sorted(self._heads)

    def branches(self, key: str) -> List[str]:
        """Branch names for ``key`` (sorted, DEFAULT first if present)."""
        names = sorted(self._heads.get(key, ()))
        if DEFAULT_BRANCH in names:
            names.remove(DEFAULT_BRANCH)
            names.insert(0, DEFAULT_BRANCH)
        return names

    def has_branch(self, key: str, branch: str) -> bool:
        """True if the branch exists for the key."""
        return branch in self._heads.get(key, ())

    def head(self, key: str, branch: str) -> Uid:
        """Head uid of a branch, or raise :class:`UnknownBranchError`."""
        try:
            return self._heads[key][branch]
        except KeyError:
            raise UnknownBranchError(key, branch) from None

    def heads(self, key: str) -> Dict[str, Uid]:
        """All branch heads for ``key`` (copy)."""
        if key not in self._heads:
            raise UnknownBranchError(key, "<any>")
        return dict(self._heads[key])

    def all_heads(self) -> Iterator[Tuple[str, str, Uid]]:
        """Every (key, branch, head) triple."""
        for key in sorted(self._heads):
            for branch in sorted(self._heads[key]):
                yield key, branch, self._heads[key][branch]

    # -- mutations ---------------------------------------------------------------

    def set_head(self, key: str, branch: str, head: Uid, expected: object = _UNSET) -> None:
        """Move (or create) a branch head.

        With ``expected`` given, this is a compare-and-swap: ``None``
        asserts the branch does not exist yet; a uid asserts it is the
        current head.  A mismatch raises
        :class:`~repro.errors.HeadMovedError` — the signature of a
        concurrent writer — instead of silently losing their update.
        """
        if expected is not _UNSET:
            actual = self._heads.get(key, {}).get(branch)
            if actual != expected:
                raise HeadMovedError(key, branch, expected, actual)
        self._heads.setdefault(key, {})[branch] = head

    def create(self, key: str, branch: str, head: Uid) -> None:
        """Create a branch; error if it already exists."""
        if self.has_branch(key, branch):
            raise BranchExistsError(f"branch {branch!r} already exists for {key!r}")
        self.set_head(key, branch, head)

    def rename(self, key: str, old: str, new: str) -> None:
        """Rename a branch, preserving its head."""
        if not self.has_branch(key, old):
            raise UnknownBranchError(key, old)
        if self.has_branch(key, new):
            raise BranchExistsError(f"branch {new!r} already exists for {key!r}")
        heads = self._heads[key]
        heads[new] = heads.pop(old)

    def delete(self, key: str, branch: str) -> None:
        """Delete a branch head (the versions remain addressable)."""
        if not self.has_branch(key, branch):
            raise UnknownBranchError(key, branch)
        del self._heads[key][branch]
        if not self._heads[key]:
            del self._heads[key]

    def rename_key(self, old_key: str, new_key: str) -> None:
        """Move every branch of ``old_key`` under ``new_key``."""
        if old_key not in self._heads:
            raise UnknownBranchError(old_key, "<any>")
        if new_key in self._heads:
            raise BranchExistsError(f"key {new_key!r} already exists")
        self._heads[new_key] = self._heads.pop(old_key)

    def drop_key(self, key: str) -> None:
        """Forget every branch of ``key``."""
        self._heads.pop(key, None)

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, str]]:
        """JSON-compatible snapshot (uids as Base32)."""
        return {
            key: {branch: head.base32() for branch, head in branches.items()}
            for key, branches in self._heads.items()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, str]]) -> "BranchTable":
        """Restore a snapshot produced by :meth:`to_dict`."""
        table = cls()
        for key, branches in data.items():
            for branch, head in branches.items():
                table.set_head(key, branch, Uid.from_base32(head))
        return table

    def __len__(self) -> int:
        return sum(len(branches) for branches in self._heads.values())
