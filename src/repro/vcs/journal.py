"""Write-ahead commit journal for branch heads.

Branch heads are the only mutable state in the system (see
:mod:`repro.vcs.branches`) and the anchor of tamper evidence — losing a
head silently un-acknowledges every commit behind it.  The journal makes
head mutations durable *before* they are acknowledged: each operation is
appended as a length-prefixed, CRC-32-checksummed record, and recovery
replays the journal over the last heads snapshot.

On-disk format::

    FBWJ0001                          8-byte magic
    [len:u32][crc32:u32][payload]...  records, payload = canonical JSON

Records carry a monotonically increasing ``seq``; the heads snapshot
stores the last sequence it covers, so replay skips records the snapshot
already contains — that is what makes replay idempotent across a crash
that lands *between* snapshot rewrite and journal truncation.

Damage model, matching the append-only segment files:

- a **torn tail** (partial final record: the process died mid-append) is
  expected damage — the tail is truncated and recovery proceeds;
- a **corrupt interior record** (all bytes present, CRC or decode fails)
  means history between snapshot and tail cannot be trusted — recovery
  raises :class:`~repro.errors.JournalCorruptError` instead of guessing.

Fsync policy: ``always`` fsyncs after every append (a commit survives
power loss before it is acknowledged), ``batch`` every ``batch_interval``
appends, ``never`` leaves it to the OS.  Every append is *flushed*
regardless, so an acknowledged commit always survives a process kill.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, Dict, Iterable, List, Mapping

from repro.chunk import Uid
from repro.errors import JournalCorruptError, JournalError, VersionError
from repro.faults.crash import crashing_write, crashpoint
from repro.store.durability import durable_replace, fsync_file
from repro.vcs.branches import BranchTable

MAGIC = b"FBWJ0001"
_HEADER = struct.Struct(">II")  # payload length, CRC-32 of payload
FSYNC_POLICIES = ("always", "batch", "never")

Record = Dict[str, object]


class CommitJournal:
    """Append-only head-mutation log with checksummed records."""

    def __init__(self, path: str, fsync: str = "batch", batch_interval: int = 64) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = path
        self.fsync = fsync
        self.batch_interval = max(1, batch_interval)
        self._records: List[Record] = []
        self._size = 0
        self._pending = 0
        self._closed = False
        self._handle = self._open_and_scan()

    # -- open / scan ---------------------------------------------------------

    def _create(self) -> IO[bytes]:
        handle = open(self.path, "wb")
        crashing_write(handle, MAGIC, kind="journal-write", label="magic")
        handle.flush()
        if self.fsync != "never":
            self._fsync(handle, label="magic")
        self._size = len(MAGIC)
        return handle

    def _open_and_scan(self) -> IO[bytes]:
        """Open the journal, validating records and truncating a torn tail."""
        if not os.path.exists(self.path):
            return self._create()
        handle = open(self.path, "r+b")
        data = handle.read()  # journals are bounded by compaction
        if len(data) < len(MAGIC):
            # Torn creation: the process died writing the magic, so no
            # record can possibly follow.  Start fresh.
            handle.close()
            return self._create()
        if data[: len(MAGIC)] != MAGIC:
            handle.close()
            raise JournalCorruptError(f"{self.path}: bad journal magic {data[:8]!r}")
        offset = len(MAGIC)
        total = len(data)
        while offset < total:
            if offset + _HEADER.size > total:
                break  # torn header: crash mid-append
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            if start + length > total:
                break  # torn payload: crash mid-append
            payload = data[start : start + length]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: CRC mismatch in record at offset {offset}"
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: undecodable record at offset {offset}"
                ) from exc
            if not isinstance(record, dict) or "op" not in record:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: record at offset {offset} is not an op"
                )
            self._records.append(record)
            offset = start + length
        if offset < total:
            handle.truncate(offset)  # drop the torn tail for good
        handle.seek(offset)
        self._size = offset
        return handle

    # -- appending -----------------------------------------------------------

    def append(self, record: Mapping[str, object]) -> None:
        """Durably (per policy) append one op record."""
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        blob = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
        crashing_write(
            self._handle, blob, kind="journal-write", label=str(record.get("op", ""))
        )
        # Flush unconditionally: an acknowledged commit must survive a
        # process kill under every policy; fsync is about power loss.
        self._handle.flush()
        self._records.append(dict(record))
        self._size += len(blob)
        self._pending += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._pending >= self.batch_interval
        ):
            self.sync()

    def _fsync(self, handle: IO[bytes], label: str = "") -> None:
        crashpoint("journal-fsync", label or os.path.basename(self.path))
        os.fsync(handle.fileno())

    def sync(self) -> None:
        """Flush and fsync pending appends regardless of policy."""
        if self._closed:
            return
        self._handle.flush()
        self._fsync(self._handle)
        self._pending = 0

    # -- queries -------------------------------------------------------------

    @property
    def records(self) -> List[Record]:
        """Every valid record currently in the journal (copies)."""
        return [dict(record) for record in self._records]

    def size(self) -> int:
        """Journal file size in bytes (valid region)."""
        return self._size

    def __len__(self) -> int:
        return len(self._records)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Truncate to an empty journal (call only after a durable snapshot).

        Atomic: a fresh magic-only file is fsynced and renamed over the
        old journal.  A crash before the rename leaves the full journal
        (replay skips what the snapshot covers); the rename itself is
        all-or-nothing.
        """
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            crashing_write(handle, MAGIC, kind="journal-write", label="reset-magic")
            crashpoint("journal-fsync", "reset-magic")
            fsync_file(handle)
        crashpoint("journal-replace", os.path.basename(self.path))
        self._handle.close()
        durable_replace(tmp, self.path)
        self._handle = open(self.path, "r+b")
        self._handle.seek(len(MAGIC))
        self._records = []
        self._size = len(MAGIC)
        self._pending = 0

    def close(self) -> None:
        """Flush (and fsync unless policy is ``never``) and close."""
        if self._closed:
            return
        self._handle.flush()
        if self.fsync != "never" and self._pending:
            self._fsync(self._handle, label="close")
        self._handle.close()
        self._closed = True

    def abandon(self) -> None:
        """Release the OS handle without flushing bookkeeping (crash sim)."""
        if self._closed:
            return
        self._handle.close()
        self._closed = True


# -- replay -------------------------------------------------------------------


def apply_record(table: BranchTable, record: Mapping[str, object]) -> None:
    """Apply one journal record to a branch table.

    Replay is unconditional (no CAS): the journal *is* the serialization
    order, so re-checking expectations would only re-litigate history.
    A record that cannot apply means the snapshot/journal pair diverged,
    which is corruption, not a conflict.
    """
    op = record.get("op")
    try:
        if op == "set-head" or op == "create-branch":
            table.set_head(
                str(record["key"]), str(record["branch"]),
                Uid.from_base32(str(record["head"])),
            )
        elif op == "rename-branch":
            table.rename(str(record["key"]), str(record["old"]), str(record["new"]))
        elif op == "delete-branch":
            table.delete(str(record["key"]), str(record["branch"]))
        elif op == "rename-key":
            table.rename_key(str(record["old"]), str(record["new"]))
        elif op == "drop-key":
            table.drop_key(str(record["key"]))
        else:
            raise JournalCorruptError(f"unknown journal op {op!r}")
    except JournalCorruptError:
        raise
    except (VersionError, KeyError, ValueError) as exc:
        raise JournalCorruptError(f"journal op {op!r} does not apply: {exc}") from exc


def replay_into(
    table: BranchTable, records: Iterable[Mapping[str, object]], after_seq: int = 0
) -> int:
    """Replay ``records`` with ``seq > after_seq`` onto ``table``.

    Returns the highest sequence number now covered (``after_seq`` when
    nothing applied).  Skipping by sequence is what makes replay
    idempotent: records a snapshot already covers are never re-applied.
    """
    last = after_seq
    for record in records:
        seq = int(record.get("seq", 0))  # type: ignore[call-overload]
        if seq <= after_seq:
            continue
        apply_record(table, record)
        last = max(last, seq)
    return last
