"""Write-ahead commit journal for branch heads.

Branch heads are the only mutable state in the system (see
:mod:`repro.vcs.branches`) and the anchor of tamper evidence — losing a
head silently un-acknowledges every commit behind it.  The journal makes
head mutations durable *before* they are acknowledged: each operation is
appended as a length-prefixed, CRC-32-checksummed record, and recovery
replays the journal over the last heads snapshot.

On-disk format::

    FBWJ0001                          8-byte magic
    [len:u32][crc32:u32][payload]...  records, payload = canonical JSON

Records carry a monotonically increasing ``seq``; the heads snapshot
stores the last sequence it covers, so replay skips records the snapshot
already contains — that is what makes replay idempotent across a crash
that lands *between* snapshot rewrite and journal truncation.

Damage model, matching the append-only segment files:

- a **torn tail** (partial final record: the process died mid-append) is
  expected damage — the tail is truncated and recovery proceeds;
- a **corrupt interior record** (all bytes present, CRC or decode fails)
  means history between snapshot and tail cannot be trusted — recovery
  raises :class:`~repro.errors.JournalCorruptError` instead of guessing.

Fsync policy: ``always`` fsyncs after every append (a commit survives
power loss before it is acknowledged), ``batch`` every ``batch_interval``
appends, ``never`` leaves it to the OS.  Every append is *flushed*
regardless, so an acknowledged commit always survives a process kill.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, Dict, Iterable, List, Mapping

from repro.chunk import Uid
from repro.errors import (
    DiskFaultError,
    DiskFullError,
    JournalCorruptError,
    JournalError,
    StoreError,
    VersionError,
    map_os_error,
)
from repro.faults.crash import crashing_write, crashpoint
from repro.faults.retry import RetryPolicy
from repro.store.durability import durable_replace, fsync_file, read_check, write_bytes
from repro.vcs.branches import BranchTable

MAGIC = b"FBWJ0001"
_HEADER = struct.Struct(">II")  # payload length, CRC-32 of payload
FSYNC_POLICIES = ("always", "batch", "never")

Record = Dict[str, object]


class CommitJournal:
    """Append-only head-mutation log with checksummed records."""

    def __init__(self, path: str, fsync: str = "batch", batch_interval: int = 64) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = path
        self.fsync = fsync
        self.batch_interval = max(1, batch_interval)
        self._records: List[Record] = []
        self._size = 0
        self._pending = 0
        self._closed = False
        self._poisoned = False
        #: Record blobs appended since the last successful fsync: the
        #: rewrite buffer for fsyncgate recovery (reopen-and-rewrite).
        self._tail: List[bytes] = []
        #: File offset at the last successful fsync (durable floor).
        self._durable = 0
        #: Bounded backoff for transient ENOSPC on the append path only;
        #: a failed *fsync* is never retried (see :meth:`_recover_fsync`).
        self._disk_retry = RetryPolicy(attempts=3, base_delay=0.002, max_delay=0.01)
        self._handle = self._open_and_scan()

    @property
    def poisoned(self) -> bool:
        """True once an unrecoverable disk fault disabled the journal."""
        return self._poisoned

    # -- open / scan ---------------------------------------------------------

    def _create(self) -> IO[bytes]:
        try:
            handle = open(self.path, "wb")
        except OSError as exc:
            raise map_os_error(exc, "open", self.path) from exc
        crashing_write(handle, MAGIC, kind="journal-write", label="magic")
        try:
            handle.flush()
        except OSError as exc:
            raise map_os_error(exc, "write", self.path) from exc
        if self.fsync != "never":
            self._fsync(handle, label="magic")
        self._size = len(MAGIC)
        self._durable = self._size
        return handle

    def _open_and_scan(self) -> IO[bytes]:
        """Open the journal, validating records and truncating a torn tail."""
        if not os.path.exists(self.path):
            return self._create()
        try:
            read_check(self.path, label=os.path.basename(self.path))
            handle = open(self.path, "r+b")
            data = handle.read()  # journals are bounded by compaction
        except OSError as exc:
            raise map_os_error(exc, "read", self.path) from exc
        if len(data) < len(MAGIC):
            # Torn creation: the process died writing the magic, so no
            # record can possibly follow.  Start fresh.
            handle.close()
            return self._create()
        if data[: len(MAGIC)] != MAGIC:
            handle.close()
            raise JournalCorruptError(f"{self.path}: bad journal magic {data[:8]!r}")
        offset = len(MAGIC)
        total = len(data)
        while offset < total:
            if offset + _HEADER.size > total:
                break  # torn header: crash mid-append
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            if start + length > total:
                break  # torn payload: crash mid-append
            payload = data[start : start + length]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: CRC mismatch in record at offset {offset}"
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: undecodable record at offset {offset}"
                ) from exc
            if not isinstance(record, dict) or "op" not in record:
                handle.close()
                raise JournalCorruptError(
                    f"{self.path}: record at offset {offset} is not an op"
                )
            self._records.append(record)
            offset = start + length
        if offset < total:
            handle.truncate(offset)  # drop the torn tail for good
        handle.seek(offset)
        self._size = offset
        self._durable = offset
        return handle

    # -- appending -----------------------------------------------------------

    def append(self, record: Mapping[str, object]) -> None:
        """Durably (per policy) append one op record."""
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._check_poisoned()
        payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        blob = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
        label = str(record.get("op", ""))
        self._disk_retry.call(
            lambda: self._write_blob(blob, label), retry_on=(DiskFullError,)
        )
        self._records.append(dict(record))
        self._size += len(blob)
        self._tail.append(blob)
        self._pending += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._pending >= self.batch_interval
        ):
            self.sync()

    def _check_poisoned(self) -> None:
        if self._poisoned:
            raise DiskFaultError(
                f"{self.path}: journal poisoned by an unrecoverable disk fault",
                syscall="write",
                path=self.path,
            )

    def _write_blob(self, blob: bytes, label: str) -> None:
        """One append attempt: write + flush, un-acked on any failure."""
        try:
            crashing_write(self._handle, blob, kind="journal-write", label=label)
            # Flush unconditionally: an acknowledged commit must survive a
            # process kill under every policy; fsync is about power loss.
            self._handle.flush()
        except (DiskFullError, DiskFaultError):
            self._unwind_append()
            raise
        except OSError as exc:
            self._unwind_append()
            raise map_os_error(exc, "write", self.path) from exc

    def _unwind_append(self) -> None:
        """Truncate a failed append back to the last acked offset.

        A short write may have materialized a strict prefix of the
        record; ``self._size`` only advances on success, so truncating
        there restores the record boundary.  If even the truncate fails
        the journal is poisoned — no further appends are accepted.
        """
        try:
            self._handle.flush()
            self._handle.truncate(self._size)
            self._handle.seek(self._size)
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "truncate", self.path) from exc

    def _fsync(self, handle: IO[bytes], label: str = "") -> None:
        crashpoint("journal-fsync", label or os.path.basename(self.path))
        fsync_file(handle, label or os.path.basename(self.path))

    def sync(self) -> None:
        """Flush and fsync pending appends regardless of policy."""
        if self._closed:
            return
        self._check_poisoned()
        try:
            self._handle.flush()
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "write", self.path) from exc
        try:
            self._fsync(self._handle)
        except (DiskFullError, DiskFaultError) as exc:
            self._recover_fsync(exc)
        self._pending = 0
        self._durable = self._size
        self._tail = []

    def _recover_fsync(self, cause: StoreError) -> None:
        """Reopen-and-rewrite after a failed fsync (fsyncgate discipline).

        The failed descriptor may have dropped the unsynced tail and
        would falsely report success if fsynced again, so it is never
        reused: open a fresh descriptor, truncate to the durable floor,
        rewrite the tail records, and fsync *that*.  Failing twice
        poisons the journal and un-acks the in-memory records that never
        reached the platter.
        """
        self._handle.close()
        last: StoreError = cause
        for _ in range(2):
            try:
                handle = open(self.path, "r+b")
            except OSError as exc:
                last = map_os_error(exc, "open", self.path)
                break
            try:
                handle.truncate(self._durable)
                handle.seek(self._durable)
                for blob in self._tail:
                    write_bytes(handle, blob)
                fsync_file(handle, "fsync-recovery")
            except (DiskFullError, DiskFaultError) as exc:
                last = exc
                handle.close()
                continue
            except OSError as exc:
                last = map_os_error(exc, "write", self.path)
                handle.close()
                continue
            self._handle = handle
            return
        self._poisoned = True
        dropped = len(self._tail)
        if dropped:
            # The tail blobs and the tail records correspond 1:1; both
            # must be un-acked together or replay diverges from disk.
            self._records = self._records[:-dropped]
        self._size = self._durable
        self._tail = []
        raise DiskFaultError(
            f"{self.path}: journal poisoned after failed fsync recovery "
            f"({dropped} unsynced records un-acked): {last}",
            syscall="fsync",
            path=self.path,
        ) from last

    # -- queries -------------------------------------------------------------

    @property
    def records(self) -> List[Record]:
        """Every valid record currently in the journal (copies)."""
        return [dict(record) for record in self._records]

    def size(self) -> int:
        """Journal file size in bytes (valid region)."""
        return self._size

    def __len__(self) -> int:
        return len(self._records)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Truncate to an empty journal (call only after a durable snapshot).

        Atomic: a fresh magic-only file is fsynced and renamed over the
        old journal.  A crash before the rename leaves the full journal
        (replay skips what the snapshot covers); the rename itself is
        all-or-nothing.
        """
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._check_poisoned()
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                crashing_write(handle, MAGIC, kind="journal-write", label="reset-magic")
                crashpoint("journal-fsync", "reset-magic")
                fsync_file(handle)
        except (DiskFullError, DiskFaultError):
            raise  # the live journal handle is untouched: still usable
        except OSError as exc:
            raise map_os_error(exc, "write", tmp) from exc
        crashpoint("journal-replace", os.path.basename(self.path))
        self._handle.close()
        try:
            durable_replace(tmp, self.path)
            self._handle = open(self.path, "r+b")
        except (DiskFullError, DiskFaultError):
            self._poisoned = True  # old handle is gone; state is ambiguous
            raise
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "open", self.path) from exc
        self._handle.seek(len(MAGIC))
        self._records = []
        self._size = len(MAGIC)
        self._pending = 0
        self._durable = self._size
        self._tail = []

    def close(self) -> None:
        """Flush (and fsync unless policy is ``never``) and close."""
        if self._closed:
            return
        if self._poisoned:
            # The handle was already closed by the failed recovery; there
            # is nothing trustworthy left to flush.
            self._closed = True
            return
        try:
            self._handle.flush()
        except OSError as exc:
            self._poisoned = True
            raise map_os_error(exc, "write", self.path) from exc
        if self.fsync != "never" and self._pending:
            try:
                self._fsync(self._handle, label="close")
            except (DiskFullError, DiskFaultError) as exc:
                self._recover_fsync(exc)
            self._pending = 0
            self._durable = self._size
            self._tail = []
        self._handle.close()
        self._closed = True

    def abandon(self) -> None:
        """Release the OS handle without flushing bookkeeping (crash sim)."""
        if self._closed:
            return
        try:
            self._handle.close()
        except OSError:
            pass  # a SIGKILL simulator must not raise on teardown
        self._closed = True


# -- replay -------------------------------------------------------------------


def apply_record(table: BranchTable, record: Mapping[str, object]) -> None:
    """Apply one journal record to a branch table.

    Replay is unconditional (no CAS): the journal *is* the serialization
    order, so re-checking expectations would only re-litigate history.
    A record that cannot apply means the snapshot/journal pair diverged,
    which is corruption, not a conflict.
    """
    op = record.get("op")
    try:
        if op == "set-head" or op == "create-branch":
            table.set_head(
                str(record["key"]), str(record["branch"]),
                Uid.from_base32(str(record["head"])),
            )
        elif op == "rename-branch":
            table.rename(str(record["key"]), str(record["old"]), str(record["new"]))
        elif op == "delete-branch":
            table.delete(str(record["key"]), str(record["branch"]))
        elif op == "rename-key":
            table.rename_key(str(record["old"]), str(record["new"]))
        elif op == "drop-key":
            table.drop_key(str(record["key"]))
        else:
            raise JournalCorruptError(f"unknown journal op {op!r}")
    except JournalCorruptError:
        raise
    except (VersionError, KeyError, ValueError) as exc:
        raise JournalCorruptError(f"journal op {op!r} does not apply: {exc}") from exc


def replay_into(
    table: BranchTable, records: Iterable[Mapping[str, object]], after_seq: int = 0
) -> int:
    """Replay ``records`` with ``seq > after_seq`` onto ``table``.

    Returns the highest sequence number now covered (``after_seq`` when
    nothing applied).  Skipping by sequence is what makes replay
    idempotent: records a snapshot already covers are never re-applied.
    """
    last = after_seq
    for record in records:
        seq = int(record.get("seq", 0))  # type: ignore[call-overload]
        if seq <= after_seq:
            continue
        apply_record(table, record)
        last = max(last, seq)
    return last
