"""The version derivation graph: FNode storage and ancestry queries."""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Set

from repro.chunk import ChunkType, Uid
from repro.errors import ChunkNotFoundError, UnknownVersionError
from repro.store.base import ChunkStore
from repro.vcs.fnode import FNode


class VersionGraph:
    """Reads and writes FNodes in a chunk store and answers DAG queries."""

    def __init__(self, store: ChunkStore) -> None:
        self.store = store

    def commit(self, fnode: FNode) -> Uid:
        """Materialize an FNode; returns its uid (idempotent)."""
        chunk = fnode.encode()
        self.store.put(chunk)
        return chunk.uid

    def load(self, uid: Uid) -> FNode:
        """Fetch an FNode or raise :class:`UnknownVersionError`."""
        try:
            chunk = self.store.get(uid)
        except ChunkNotFoundError:
            raise UnknownVersionError(uid) from None
        if chunk.type != ChunkType.FNODE:
            raise UnknownVersionError(uid)
        return FNode.decode(chunk)

    def exists(self, uid: Uid) -> bool:
        """True if ``uid`` resolves to a stored FNode."""
        chunk = self.store.get_maybe(uid)
        return chunk is not None and chunk.type == ChunkType.FNODE

    def history(self, head: Uid, limit: Optional[int] = None) -> Iterator[FNode]:
        """Walk ancestors newest-first (first parent order, BFS on merges)."""
        seen: Set[Uid] = set()
        queue = deque([head])
        emitted = 0
        while queue:
            uid = queue.popleft()
            if uid in seen:
                continue
            seen.add(uid)
            fnode = self.load(uid)
            yield fnode
            emitted += 1
            if limit is not None and emitted >= limit:
                return
            queue.extend(fnode.bases)

    def ancestors(self, head: Uid) -> Set[Uid]:
        """Every version reachable from ``head`` (inclusive)."""
        return {fnode.uid for fnode in self.history(head)}

    def is_ancestor(self, maybe_ancestor: Uid, head: Uid) -> bool:
        """True if ``maybe_ancestor`` is reachable from ``head``."""
        if maybe_ancestor == head:
            return True
        for fnode in self.history(head):
            if fnode.uid == maybe_ancestor:
                return True
        return False

    def lowest_common_ancestor(self, a: Uid, b: Uid) -> Optional[Uid]:
        """Merge base: the first version reachable from both heads.

        Interleaved BFS, so the nearest common ancestor wins on chains.
        """
        if a == b:
            return a
        seen_a: Set[Uid] = set()
        seen_b: Set[Uid] = set()
        queue_a = deque([a])
        queue_b = deque([b])
        while queue_a or queue_b:
            if queue_a:
                uid = queue_a.popleft()
                if uid in seen_b:
                    return uid
                if uid not in seen_a:
                    seen_a.add(uid)
                    queue_a.extend(self.load(uid).bases)
            if queue_b:
                uid = queue_b.popleft()
                if uid in seen_a:
                    return uid
                if uid not in seen_b:
                    seen_b.add(uid)
                    queue_b.extend(self.load(uid).bases)
        return None

    def chain_length(self, head: Uid) -> int:
        """Number of versions reachable from ``head``."""
        return sum(1 for _ in self.history(head))
