"""The ``forkbase`` command-line tool (the demo's scripting surface).

Every command operates on a durable engine under ``--data-dir`` (default
``./forkbase-data``).  Examples::

    forkbase put mykey --json '{"a": "1"}' -m "first version"
    forkbase get mykey --branch master
    forkbase load-csv sales data.csv --pk id
    forkbase branch sales vendorX
    forkbase diff sales master vendorX
    forkbase merge sales vendorX --into master --strategy theirs
    forkbase history sales
    forkbase verify sales
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.diffview import render_diff_text, render_history_text
from repro.db.engine import ForkBase
from repro.errors import ForkBaseError, MergeConflictError
from repro.postree.merge import resolve_ours, resolve_theirs
from repro.security.verify import Verifier
from repro.table.dataset import DataTable
from repro.vcs.branches import DEFAULT_BRANCH


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="forkbase",
        description="Git-for-data storage engine (ForkBase reproduction)",
    )
    parser.add_argument(
        "--data-dir", default="./forkbase-data", help="engine directory"
    )
    parser.add_argument("--author", default="cli", help="commit author")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("put", help="store a new version of a key")
    p.add_argument("key")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--json", help="value as JSON (dict/list/str/number)")
    group.add_argument("--string", help="value as a plain string")
    group.add_argument("--file", help="value as a blob from a file")
    p.add_argument("--branch", default=DEFAULT_BRANCH)
    p.add_argument("-m", "--message", default="")

    p = sub.add_parser("get", help="read a key")
    p.add_argument("key")
    p.add_argument("--branch", default=None)
    p.add_argument("--version", default=None)

    p = sub.add_parser("list", help="list keys")

    p = sub.add_parser("head", help="show a branch head version")
    p.add_argument("key")
    p.add_argument("--branch", default=DEFAULT_BRANCH)

    p = sub.add_parser("latest", help="show all branch heads of a key")
    p.add_argument("key")

    p = sub.add_parser("meta", help="show metadata for a branch head")
    p.add_argument("key")
    p.add_argument("--branch", default=DEFAULT_BRANCH)

    p = sub.add_parser("history", help="show the version log")
    p.add_argument("key")
    p.add_argument("--branch", default=None)
    p.add_argument("--limit", type=int, default=None)

    p = sub.add_parser("branch", help="create a branch")
    p.add_argument("key")
    p.add_argument("name")
    p.add_argument("--from-branch", dest="from_branch", default=DEFAULT_BRANCH)

    p = sub.add_parser("rename-branch", help="rename a branch")
    p.add_argument("key")
    p.add_argument("old")
    p.add_argument("new")

    p = sub.add_parser("rename", help="rename a key")
    p.add_argument("key")
    p.add_argument("new_key")

    p = sub.add_parser("diff", help="differential query between branches")
    p.add_argument("key")
    p.add_argument("branch_a")
    p.add_argument("branch_b")
    p.add_argument("--table", action="store_true", help="render row-level table diff")

    p = sub.add_parser("merge", help="three-way merge")
    p.add_argument("key")
    p.add_argument("from_branch")
    p.add_argument("--into", dest="into_branch", default=DEFAULT_BRANCH)
    p.add_argument("--strategy", choices=["fail", "ours", "theirs"], default="fail")
    p.add_argument("-m", "--message", default="")

    p = sub.add_parser("load-csv", help="load a CSV file as a dataset")
    p.add_argument("key")
    p.add_argument("csv_path")
    p.add_argument("--pk", required=True, help="primary key column")
    p.add_argument("--branch", default=DEFAULT_BRANCH)

    p = sub.add_parser("export", help="export a dataset to CSV")
    p.add_argument("key")
    p.add_argument("--branch", default=None)
    p.add_argument("--out", default=None, help="output file (default stdout)")

    p = sub.add_parser("select", help="select rows from a dataset")
    p.add_argument("key")
    p.add_argument("--branch", default=None)
    p.add_argument("--where", default=None, help="column=value filter")
    p.add_argument("--limit", type=int, default=20)

    p = sub.add_parser("stat", help="column statistics for a dataset")
    p.add_argument("key")
    p.add_argument("column")
    p.add_argument("--branch", default=None)

    p = sub.add_parser("verify", help="validate tamper evidence of a head")
    p.add_argument("key")
    p.add_argument("--branch", default=DEFAULT_BRANCH)
    p.add_argument("--version", default=None)

    p = sub.add_parser("stats", help="storage statistics")

    p = sub.add_parser(
        "diff-datasets", help="differential query across two dataset keys"
    )
    p.add_argument("key_a")
    p.add_argument("key_b")
    p.add_argument("--branch-a", default=None)
    p.add_argument("--branch-b", default=None)

    p = sub.add_parser("gc", help="sweep chunks unreachable from any branch")
    p.add_argument("--dry-run", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    engine = ForkBase.open(args.data_dir, author=args.author)
    try:
        return _dispatch(args, engine)
    except MergeConflictError as error:
        print(f"merge conflict: {len(error.conflicts)} conflicting key(s)", file=sys.stderr)
        return 2
    except ForkBaseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        engine.close()


def _dispatch(args: argparse.Namespace, engine: ForkBase) -> int:
    command = args.command

    if command == "put":
        if args.json is not None:
            value = json.loads(args.json)
        elif args.string is not None:
            value = args.string
        else:
            with open(args.file, "rb") as handle:
                value = handle.read()
        info = engine.put(args.key, value, branch=args.branch, message=args.message)
        print(f"{info.key}@{info.branch} -> {info.version}")
        return 0

    if command == "get":
        value = engine.get_value(args.key, branch=args.branch, version=args.version)
        if isinstance(value, bytes):
            sys.stdout.buffer.write(value)
        else:
            print(json.dumps(_printable(value), indent=2, sort_keys=True))
        return 0

    if command == "list":
        for key in engine.keys():
            print(key)
        return 0

    if command == "head":
        print(engine.head(args.key, args.branch).base32())
        return 0

    if command == "latest":
        for branch, head in sorted(engine.latest(args.key).items()):
            print(f"{branch}\t{head.base32()}")
        return 0

    if command == "meta":
        print(json.dumps(engine.meta(args.key, args.branch), indent=2, sort_keys=True))
        return 0

    if command == "history":
        history = engine.history(args.key, branch=args.branch, limit=args.limit)
        print(render_history_text(history))
        return 0

    if command == "branch":
        head = engine.branch(args.key, args.name, from_branch=args.from_branch)
        print(f"created {args.name} at {head.base32()}")
        return 0

    if command == "rename-branch":
        engine.rename_branch(args.key, args.old, args.new)
        print(f"renamed {args.old} -> {args.new}")
        return 0

    if command == "rename":
        engine.rename(args.key, args.new_key)
        print(f"renamed {args.key} -> {args.new_key}")
        return 0

    if command == "diff":
        if args.table:
            table = DataTable(engine, args.key)
            print(render_diff_text(table.diff(args.branch_a, args.branch_b), args.key))
        else:
            diff = engine.diff(args.key, branch_a=args.branch_a, branch_b=args.branch_b)
            for key in sorted(diff.added):
                print(f"+ {key!r}")
            for key in sorted(diff.removed):
                print(f"- {key!r}")
            for key in sorted(diff.changed):
                print(f"~ {key!r}")
            print(f"({diff.edit_count} difference(s), {diff.subtrees_pruned} sub-tree(s) pruned)")
        return 0

    if command == "merge":
        resolver = {"fail": None, "ours": resolve_ours, "theirs": resolve_theirs}[
            args.strategy
        ]
        info = engine.merge(
            args.key,
            from_branch=args.from_branch,
            into_branch=args.into_branch,
            resolver=resolver,
            message=args.message,
        )
        print(f"{info.key}@{info.branch} -> {info.version} ({info.message})")
        return 0

    if command == "load-csv":
        with open(args.csv_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        _, report = DataTable.load_csv(
            engine, args.key, text, primary_key=args.pk, branch=args.branch
        )
        print(report.describe())
        print(f"version {report.version.version}")
        return 0

    if command == "export":
        table = DataTable(engine, args.key)
        text = table.export_csv(branch=args.branch)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            sys.stdout.write(text)
        return 0

    if command == "select":
        table = DataTable(engine, args.key)
        predicate = None
        if args.where:
            column, _, expected = args.where.partition("=")
            predicate = lambda row: row.get(column) == expected  # noqa: E731
        for row in table.select(where=predicate, branch=args.branch, limit=args.limit):
            print(json.dumps(row, sort_keys=True))
        return 0

    if command == "stat":
        table = DataTable(engine, args.key)
        stat = table.stat(args.column, branch=args.branch)
        print(json.dumps(stat.__dict__, indent=2, sort_keys=True))
        return 0

    if command == "verify":
        version = args.version or engine.head(args.key, args.branch).base32()
        report = Verifier(engine.store).verify_version(version)
        print(report.describe())
        return 0 if report.ok else 3

    if command == "stats":
        snap = engine.storage_snapshot()
        print(snap.describe())
        print(
            f"materialized={snap.materialized_bytes}B "
            f"backend={type(engine.store).__name__}"
        )
        return 0

    if command == "diff-datasets":
        table = DataTable(engine, args.key_a)
        other = DataTable(engine, args.key_b)
        diff = table.diff_against(other, branch=args.branch_a,
                                  other_branch=args.branch_b)
        print(render_diff_text(diff, f"{args.key_a}..{args.key_b}"))
        return 0

    if command == "gc":
        report_obj = None
        if args.dry_run:
            from repro.store.gc import collect_garbage

            report_obj = collect_garbage(engine, dry_run=True)
        elif engine.store.supports_in_place_sweep:
            # The pack backend sweeps in place and reclaims the dead bytes
            # by rewriting its own segments — no layout swap needed.
            report_obj = engine.collect_garbage(compact=True)
        else:
            # The file layout reclaims by compaction into a fresh store of
            # the same kind, then an atomic directory swap.
            import os
            import shutil

            from repro.store import FileStore
            from repro.store.durability import durable_replace
            from repro.store.gc import compact_into

            new_dir = os.path.join(args.data_dir, "chunks.compact")
            shutil.rmtree(new_dir, ignore_errors=True)
            with FileStore(new_dir) as target:
                report_obj = compact_into(engine, target)
            engine.store.close()
            old_dir = os.path.join(args.data_dir, "chunks")
            shutil.rmtree(old_dir)
            durable_replace(new_dir, old_dir)
            engine.store = FileStore(old_dir)  # reopen for clean close()
        print(
            f"live={report_obj.live_chunks} chunks ({report_obj.live_bytes}B), "
            f"reclaimable={report_obj.swept_chunks} chunks "
            f"({report_obj.swept_bytes}B, "
            f"{report_obj.reclaim_fraction * 100:.1f}%)"
            + (" [dry run]" if args.dry_run else " [compacted]")
        )
        return 0

    raise AssertionError(f"unhandled command {command}")


def _printable(value):
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    if isinstance(value, dict):
        return {_printable(k): _printable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_printable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_printable(v) for v in value]
    return value


if __name__ == "__main__":
    sys.exit(main())
