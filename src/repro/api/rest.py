"""In-process RESTful API.

The demo architecture exposes "RESTful" APIs for applications; with no
network in this environment the router maps the same (method, path,
params, body) requests to engine calls and returns JSON-compatible
responses.  A real HTTP server would be a ~30-line shim over
:meth:`Router.handle`.

Routes::

    GET    /v1/status
    GET    /v1/keys
    GET    /v1/obj/{key}                      ?branch= | ?version=
    PUT    /v1/obj/{key}                      ?branch=   body={"value": ...}
    GET    /v1/obj/{key}/meta                 ?branch=
    GET    /v1/obj/{key}/history              ?branch= | ?version=
    GET    /v1/obj/{key}/branches
    POST   /v1/obj/{key}/branches             body={"name","from_branch"|"version"}
    DELETE /v1/obj/{key}/branches/{branch}
    GET    /v1/obj/{key}/diff                 ?from=&to=  (branch names)
    POST   /v1/obj/{key}/merge                body={"from_branch","into_branch","strategy"}
    GET    /v1/obj/{key}/verify               ?branch= | ?version=
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.db.engine import HEALTH_HEALTHY, ForkBase
from repro.errors import (
    ApiError,
    ForkBaseError,
    MergeConflictError,
    NotFoundApiError,
    UnknownBranchError,
    UnknownKeyError,
    UnknownVersionError,
)
from repro.postree.merge import resolve_ours, resolve_theirs
from repro.security.verify import Verifier
from repro.types.convert import unwrap
from repro.vcs.branches import DEFAULT_BRANCH


@dataclass
class Request:
    """One API call."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None


@dataclass
class Response:
    """The API answer: HTTP-ish status plus a JSON-compatible payload."""

    status: int
    body: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def _jsonable(value: Any) -> Any:
    """Make engine values JSON-representable (bytes → UTF-8/latin-1)."""
    if isinstance(value, bytes):
        try:
            return value.decode("utf-8")
        except UnicodeDecodeError:
            return value.decode("latin-1")
    if isinstance(value, dict):
        return {_jsonable(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class Router:
    """Dispatches REST-style requests onto a ForkBase engine."""

    def __init__(self, engine: ForkBase) -> None:
        self.engine = engine
        self.verifier = Verifier(engine.store)

    # -- dispatch -------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request; exceptions become error responses."""
        try:
            return self._route(request)
        except MergeConflictError as error:
            return Response(409, {"error": "merge conflict", "conflicts": len(error.conflicts)})
        except (UnknownKeyError, UnknownBranchError, UnknownVersionError) as error:
            return Response(404, {"error": str(error)})
        except ApiError as error:
            return Response(error.status, {"error": str(error)})
        except ForkBaseError as error:
            return Response(400, {"error": str(error)})

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        body: Optional[Dict[str, Any]] = None,
    ) -> Response:
        """Convenience wrapper building the Request for you."""
        return self.handle(Request(method.upper(), path, params or {}, body))

    def _route(self, request: Request) -> Response:
        parts = [part for part in request.path.split("/") if part]
        if not parts or parts[0] != "v1":
            raise NotFoundApiError(f"unknown path {request.path!r}")
        parts = parts[1:]
        method = request.method.upper()

        if parts == ["status"] and method == "GET":
            return self._status()

        if parts == ["keys"] and method == "GET":
            return Response(200, {"keys": self.engine.keys()})

        if len(parts) >= 2 and parts[0] == "obj":
            key = parts[1]
            rest = parts[2:]
            if not rest:
                if method == "GET":
                    return self._get_object(key, request)
                if method == "PUT":
                    return self._put_object(key, request)
            if rest == ["meta"] and method == "GET":
                branch = request.params.get("branch", DEFAULT_BRANCH)
                return Response(200, {"meta": _jsonable(self.engine.meta(key, branch))})
            if rest == ["history"] and method == "GET":
                return self._history(key, request)
            if rest == ["branches"]:
                if method == "GET":
                    return Response(200, {"branches": self.engine.branches(key)})
                if method == "POST":
                    return self._create_branch(key, request)
            if len(rest) == 2 and rest[0] == "branches" and method == "DELETE":
                self.engine.delete_branch(key, rest[1])
                return Response(200, {"deleted": rest[1]})
            if rest == ["diff"] and method == "GET":
                return self._diff(key, request)
            if rest == ["merge"] and method == "POST":
                return self._merge(key, request)
            if rest == ["verify"] and method == "GET":
                return self._verify(key, request)

        raise NotFoundApiError(f"no route for {method} {request.path}")

    # -- handlers ---------------------------------------------------------------

    def _status(self) -> Response:
        """Engine health plus, when the store is a cluster, its counters.

        The cluster report is discovered by duck typing (any store with a
        ``health_report()``), so the API layer stays agnostic of which
        ChunkStore is underneath — and operators get the gray-failure
        telemetry (hedges, deadline misses, breaker states, latency
        percentiles) from the same endpoint that reports engine health.
        """
        health = self.engine.health()
        body: Dict[str, Any] = {
            "state": health.state,
            "writable": health.writable,
            "reason": _jsonable(health.reason) if health.reason else None,
        }
        reporter = getattr(self.engine.store, "health_report", None)
        if callable(reporter):
            body["cluster"] = _jsonable(reporter())
        return Response(200 if health.state == HEALTH_HEALTHY else 503, body)

    def _get_object(self, key: str, request: Request) -> Response:
        branch = request.params.get("branch")
        version = request.params.get("version")
        obj = self.engine.get(key, branch=branch, version=version)
        resolved = version or self.engine.head(key, branch or DEFAULT_BRANCH).base32()
        return Response(
            200,
            {
                "key": key,
                "type": obj.TYPE_NAME,
                "version": resolved,
                "value": _jsonable(unwrap(obj)),
            },
        )

    def _put_object(self, key: str, request: Request) -> Response:
        if not request.body or "value" not in request.body:
            raise ApiError("PUT body must contain 'value'")
        branch = request.params.get("branch", DEFAULT_BRANCH)
        info = self.engine.put(
            key,
            request.body["value"],
            branch=branch,
            message=request.body.get("message", ""),
        )
        return Response(
            201,
            {"key": key, "branch": branch, "version": info.version, "type": info.type_name},
        )

    def _history(self, key: str, request: Request) -> Response:
        branch = request.params.get("branch")
        version = request.params.get("version")
        limit = request.params.get("limit")
        history = self.engine.history(
            key, branch=branch, version=version,
            limit=int(limit) if limit else None,
        )
        return Response(
            200,
            {
                "key": key,
                "versions": [
                    {
                        "version": fnode.uid.base32(),
                        "author": fnode.author,
                        "message": fnode.message,
                        "bases": [base.base32() for base in fnode.bases],
                        "merge": fnode.is_merge(),
                    }
                    for fnode in history
                ],
            },
        )

    def _create_branch(self, key: str, request: Request) -> Response:
        if not request.body or "name" not in request.body:
            raise ApiError("POST body must contain 'name'")
        head = self.engine.branch(
            key,
            request.body["name"],
            from_branch=request.body.get("from_branch"),
            version=request.body.get("version"),
        )
        return Response(201, {"branch": request.body["name"], "head": head.base32()})

    def _diff(self, key: str, request: Request) -> Response:
        source = request.params.get("from", DEFAULT_BRANCH)
        target = request.params.get("to")
        if target is None:
            raise ApiError("diff requires ?to=<branch>")
        diff = self.engine.diff(key, branch_a=source, branch_b=target)
        return Response(
            200,
            {
                "key": key,
                "from": source,
                "to": target,
                "added": _jsonable(diff.added),
                "removed": _jsonable(diff.removed),
                "changed": {
                    _jsonable(k): [_jsonable(old), _jsonable(new)]
                    for k, (old, new) in diff.changed.items()
                },
                "subtrees_pruned": diff.subtrees_pruned,
            },
        )

    def _merge(self, key: str, request: Request) -> Response:
        body = request.body or {}
        if "from_branch" not in body:
            raise ApiError("merge requires 'from_branch'")
        strategy = body.get("strategy")
        resolver = None
        if strategy == "ours":
            resolver = resolve_ours
        elif strategy == "theirs":
            resolver = resolve_theirs
        elif strategy not in (None, "fail"):
            raise ApiError(f"unknown merge strategy {strategy!r}")
        info = self.engine.merge(
            key,
            from_branch=body["from_branch"],
            into_branch=body.get("into_branch", DEFAULT_BRANCH),
            resolver=resolver,
            message=body.get("message", ""),
        )
        return Response(
            200,
            {"key": key, "branch": info.branch, "version": info.version,
             "message": info.message},
        )

    def _verify(self, key: str, request: Request) -> Response:
        branch = request.params.get("branch")
        version = request.params.get("version")
        if version is None:
            version = self.engine.head(key, branch or DEFAULT_BRANCH).base32()
        report = self.verifier.verify_version(version)
        return Response(
            200 if report.ok else 502,
            {
                "key": key,
                "version": version,
                "valid": report.ok,
                "chunks_checked": report.chunks_checked,
                "versions_checked": report.fnodes_checked,
                "errors": report.errors,
            },
        )
