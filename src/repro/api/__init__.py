"""Application-facing surfaces (Fig. 1 semantic-view layer).

- :mod:`~repro.api.cli` — the ``forkbase`` command-line tool (the demo's
  "Command Line scripting" box).
- :mod:`~repro.api.rest` — an in-process REST-style router with the same
  routes a RESTful deployment would expose (no sockets; request in,
  JSON-compatible response out).
- :mod:`~repro.api.diffview` — text/HTML renderers for dataset diffs and
  version logs, standing in for the demo's Web UI (Figs. 4–6).
"""

from repro.api.rest import Request, Response, Router

__all__ = ["Request", "Response", "Router"]
