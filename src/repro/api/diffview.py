"""Renderers for differential queries and version logs.

The demo paper showcases a Web UI highlighting "data differences at
multiple scopes, from dataset to data entry" (Fig. 5) and a version panel
with Base32 uids (Fig. 6).  These functions produce the same information
as plain text (for the CLI) and a small self-contained HTML page.
"""

from __future__ import annotations

import html
from typing import List, Optional

from repro.table.dataset import TableDiff
from repro.vcs.fnode import FNode


def render_diff_text(diff: TableDiff, name: str = "dataset") -> str:
    """Git-diff-style textual rendering of a dataset diff."""
    lines: List[str] = [
        f"diff of {name}: +{len(diff.added)} -{len(diff.removed)} "
        f"~{len(diff.changed)} row(s)"
        + ("  [schema changed]" if diff.schema_changed else "")
    ]
    for row in diff.rows:
        if row.kind == "added":
            lines.append(f"+ {row.pk}: {row.new}")
        elif row.kind == "removed":
            lines.append(f"- {row.pk}: {row.old}")
        else:
            assert row.old is not None and row.new is not None
            lines.append(f"~ {row.pk}: columns {', '.join(row.changed_columns)}")
            for column in row.changed_columns:
                lines.append(f"    {column}: {row.old[column]!r} -> {row.new[column]!r}")
    lines.append(
        f"(pruned {diff.subtrees_pruned} shared sub-tree(s); "
        f"loaded {diff.nodes_loaded} node(s))"
    )
    return "\n".join(lines)


def render_diff_html(
    diff: TableDiff, name: str = "dataset", title: Optional[str] = None
) -> str:
    """Self-contained HTML diff page (the Fig. 5 visualization)."""
    title = title or f"Diff of {name}"
    rows_html: List[str] = []
    for row in diff.rows:
        if row.kind == "added":
            assert row.new is not None
            cells = "".join(
                f"<td class='add'>{html.escape(value)}</td>" for value in row.new.values()
            )
            rows_html.append(f"<tr class='add'><td>+</td><td>{html.escape(row.pk)}</td>{cells}</tr>")
        elif row.kind == "removed":
            assert row.old is not None
            cells = "".join(
                f"<td class='del'>{html.escape(value)}</td>" for value in row.old.values()
            )
            rows_html.append(f"<tr class='del'><td>-</td><td>{html.escape(row.pk)}</td>{cells}</tr>")
        else:
            assert row.old is not None and row.new is not None
            cells = []
            for column, new_value in row.new.items():
                if column in row.changed_columns:
                    old_value = row.old[column]
                    cells.append(
                        "<td class='chg'><span class='old'>"
                        f"{html.escape(old_value)}</span> → "
                        f"<span class='new'>{html.escape(new_value)}</span></td>"
                    )
                else:
                    cells.append(f"<td>{html.escape(new_value)}</td>")
            rows_html.append(
                f"<tr class='chg'><td>~</td><td>{html.escape(row.pk)}</td>{''.join(cells)}</tr>"
            )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: monospace; }}
table {{ border-collapse: collapse; }}
td {{ border: 1px solid #ccc; padding: 2px 6px; }}
tr.add td {{ background: #e6ffe6; }}
tr.del td {{ background: #ffe6e6; }}
td.chg {{ background: #fff6cc; }}
.old {{ text-decoration: line-through; color: #a00; }}
.new {{ color: #080; font-weight: bold; }}
</style></head>
<body>
<h1>{html.escape(title)}</h1>
<p>+{len(diff.added)} added, -{len(diff.removed)} removed,
~{len(diff.changed)} changed; pruned {diff.subtrees_pruned} shared
sub-tree(s), loaded {diff.nodes_loaded} node(s).</p>
<table>{''.join(rows_html)}</table>
</body></html>"""


def render_history_text(history: List[FNode]) -> str:
    """Fig.-6-style version log: Base32 uid per Put, newest first."""
    lines: List[str] = []
    for fnode in history:
        merge_mark = " (merge)" if fnode.is_merge() else ""
        lines.append(
            f"version {fnode.uid.base32()}{merge_mark}\n"
            f"  author: {fnode.author}\n"
            f"  message: {fnode.message or '(none)'}"
        )
    return "\n".join(lines)
