"""Exception hierarchy for the ForkBase reproduction.

Every error raised by this library derives from :class:`ForkBaseError`, so
applications can catch one base type.  Sub-hierarchies mirror the layers of
the system (chunk storage, POS-Tree, version control, engine, security,
API); see DESIGN.md for the layer map.
"""

from __future__ import annotations

import errno as _errno


class ForkBaseError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ForkBaseError):
    """Mixin for faults that may succeed on retry (flaky node, timeout).

    Contrast with :class:`ChunkCorruptionError` (the data is wrong) and
    :class:`ChunkNotFoundError` (the data is absent): a transient error
    says nothing about the data, only that this attempt failed.  Retry
    helpers (:mod:`repro.faults.retry`) key off this type.
    """


class ChunkError(ForkBaseError):
    """Base class for chunk-layer errors."""


class ChunkNotFoundError(ChunkError, KeyError):
    """A chunk id was not present in the physical store."""

    def __init__(self, uid: object) -> None:
        super().__init__(uid)
        self.uid = uid

    def __str__(self) -> str:
        return f"chunk not found: {self.uid}"


class ChunkCorruptionError(ChunkError):
    """A chunk's bytes do not hash to its id (tampering or bit rot)."""


class ChunkEncodingError(ChunkError):
    """A chunk payload could not be decoded."""


class StoreError(ForkBaseError):
    """Base class for physical-store errors."""


class StoreClosedError(StoreError):
    """Operation attempted on a closed store."""


class TransientStoreError(StoreError, TransientError):
    """A store operation failed for a reason that retrying may fix."""


class DiskFullError(TransientStoreError):
    """The filesystem refused a write for lack of space (ENOSPC/EDQUOT).

    Transient by design: space can be freed (compaction, operator
    action), so bounded retry is legitimate — unlike :class:`DiskFaultError`,
    where retrying can silently *lose* data (see the fsyncgate note there).
    """

    def __init__(self, message: str, syscall: str = "", path: str = "") -> None:
        super().__init__(message)
        self.syscall = syscall
        self.path = path


class DiskFaultError(StoreError):
    """The disk itself failed (EIO, a failed fsync, a poisoned writer).

    Deliberately *not* transient: after a failed ``fsync`` the kernel has
    already dropped the dirty pages and cleared the error flag, so a
    retried fsync on the same descriptor reports success for data that
    never reached the platter (the PostgreSQL "fsyncgate" bug class).
    The only sound reactions are reopen-and-rewrite from a known-durable
    watermark or refusing further writes — never a blind retry.
    """

    def __init__(self, message: str, syscall: str = "", path: str = "") -> None:
        super().__init__(message)
        self.syscall = syscall
        self.path = path


def map_os_error(exc: OSError, syscall: str, path: str) -> StoreError:
    """Classify an :class:`OSError` from a persistence path into the taxonomy.

    ENOSPC/EDQUOT become the retryable :class:`DiskFullError`; everything
    else (EIO above all) is an unrecoverable :class:`DiskFaultError`.
    """
    if exc.errno in (_errno.ENOSPC, _errno.EDQUOT):
        return DiskFullError(
            f"disk full during {syscall} on {path}: {exc}", syscall=syscall, path=path
        )
    return DiskFaultError(
        f"disk fault during {syscall} on {path}: {exc}", syscall=syscall, path=path
    )


class TreeError(ForkBaseError):
    """Base class for POS-Tree errors."""


class KeyOrderError(TreeError):
    """Entries supplied to a bulk build were not sorted/unique."""


class VersionError(ForkBaseError):
    """Base class for version-layer errors."""


class UnknownVersionError(VersionError, KeyError):
    """A version uid does not resolve to an FNode."""

    def __init__(self, uid: object) -> None:
        super().__init__(uid)
        self.uid = uid

    def __str__(self) -> str:
        return f"unknown version: {self.uid}"


class UnknownBranchError(VersionError, KeyError):
    """A branch name does not exist for the given key."""

    def __init__(self, key: object, branch: object) -> None:
        super().__init__((key, branch))
        self.key = key
        self.branch = branch

    def __str__(self) -> str:
        return f"unknown branch {self.branch!r} for key {self.key!r}"


class BranchExistsError(VersionError):
    """Attempted to create a branch that already exists."""


class HeadMovedError(VersionError):
    """A compare-and-swap head update found the branch head moved.

    Raised instead of silently overwriting when the caller's view of the
    head (``expected``) no longer matches the table (``actual``) — the
    signature of a concurrent writer.  Callers re-read the head, rebase
    their commit, and retry.
    """

    def __init__(self, key: object, branch: object, expected: object, actual: object) -> None:
        super().__init__(
            f"head of {branch!r}@{key!r} moved: expected {expected}, found {actual}"
        )
        self.key = key
        self.branch = branch
        self.expected = expected
        self.actual = actual


class JournalError(VersionError):
    """Base class for commit-journal errors."""


class JournalCorruptError(JournalError):
    """A complete interior journal record failed its CRC or decode.

    Contrast with a *torn tail* (a partial final record from a crash),
    which is expected damage and silently truncated: a corrupt interior
    record means the history between the snapshot and the tail cannot be
    trusted, so recovery must stop loudly rather than skip it.
    """


class MergeConflictError(VersionError):
    """A three-way merge found conflicting edits and no resolver."""

    def __init__(self, conflicts: list) -> None:
        super().__init__(f"{len(conflicts)} merge conflict(s)")
        self.conflicts = conflicts


class EngineError(ForkBaseError):
    """Base class for engine-level errors."""


class UnknownKeyError(EngineError, KeyError):
    """A data key does not exist in the engine."""

    def __init__(self, key: object) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:
        return f"unknown key: {self.key!r}"


class TypeMismatchError(EngineError, TypeError):
    """An operation was applied to an object of the wrong ForkBase type."""


class EngineLockedError(EngineError):
    """Another process holds the advisory lock on the data directory.

    :meth:`repro.db.engine.ForkBase.open` takes an ``fcntl.flock`` on
    ``<directory>/.lock`` so two processes cannot interleave journal
    appends.  The lock dies with its holder, so a leftover ``.lock``
    file after a crash is harmless — only a *live* holder blocks.
    """

    def __init__(self, directory: object) -> None:
        super().__init__(
            f"data directory {directory!r} is locked by another live process"
        )
        self.directory = directory


class ReadOnlyError(EngineError):
    """A write verb was refused because the engine is not HEALTHY.

    Raised once an unrecoverable write-path disk fault has flipped the
    engine into ``degraded-read-only`` (or ``failed``): reads,
    verification, and scrubbing still serve, but nothing may mutate
    state until a fresh :meth:`repro.db.engine.ForkBase.open` recovers
    the store.
    """

    def __init__(self, state: str, reason: object = None) -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"engine is {state}, writes are refused{detail}")
        self.state = state
        self.reason = reason


class TamperError(ForkBaseError):
    """Integrity validation failed: the storage returned tampered content."""


class AccessDeniedError(ForkBaseError):
    """The principal lacks the permission required for the operation."""


class SchemaError(ForkBaseError):
    """A table/dataset schema was violated."""


class ApiError(ForkBaseError):
    """Base class for API-surface errors (CLI / REST router)."""

    status = 400


class NotFoundApiError(ApiError):
    """REST-style 404."""

    status = 404


class SimulatedCrash(ForkBaseError):
    """Raised by the crash-point harness to simulate a SIGKILL.

    Deliberately *not* a :class:`TransientError`: nothing may catch and
    retry it.  Test harnesses let it propagate, abandon the process state
    (no ``close()``), and then assert what a fresh open recovers.
    """

    def __init__(self, boundary: int, kind: str, label: str = "") -> None:
        where = f"{kind}:{label}" if label else kind
        super().__init__(f"simulated crash at boundary #{boundary} ({where})")
        self.boundary = boundary
        self.kind = kind
        self.label = label


class ClusterError(ForkBaseError):
    """Base class for simulated-cluster errors."""


class NodeDownError(ClusterError, TransientError):
    """A storage node (or every replica target) is down right now."""


class NetworkError(ClusterError):
    """Base class for simulated-network faults between cluster endpoints."""


class NetworkPartitionedError(NetworkError, TransientError):
    """The sender and receiver sit on different sides of a partition.

    Transient by design: partitions heal, and the retry/hint machinery
    must treat an unreachable peer exactly like a flaky one.
    """


class MessageDroppedError(NetworkError, TransientError):
    """The network silently lost this message (the sender times out)."""


class NetworkTimeoutError(NetworkError, TransientError):
    """The message was delayed past the sender's deadline.

    The payload may still be delivered later (a late packet applying a
    stale write), which is why idempotent, content-addressed puts matter.
    """


class DeadlineExceededError(ClusterError, TransientError):
    """A client verb's deadline budget ran out before it could complete.

    Raised instead of letting a gray-failed (up but slow) replica chain
    retries and replica failovers past the caller's latency budget: the
    verb gives up deterministically once the remaining budget cannot
    cover another attempt.  Transient by design — the data says nothing
    about correctness, only that *this* attempt ran out of time; a caller
    with a fresh budget may simply try again.
    """

    def __init__(self, message: str, budget: int = 0, elapsed: int = 0) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class QuorumWriteError(ClusterError):
    """A write reached some replicas but fewer than the write quorum.

    Carries how many acknowledgements arrived so callers can decide
    whether hinted handoff has the write covered.
    """

    def __init__(self, message: str, acked: int = 0, required: int = 0) -> None:
        super().__init__(message)
        self.acked = acked
        self.required = required
