"""Three-way merge of POS-Trees (paper §II-B, Fig. 3).

The merge "consists of a diff phase and a merge phase.  In the diff phase,
two objects A and B are diffed against a common base object C ... In the
merge phase, the differences are applied to one of the two objects."
Both phases run at sub-tree granularity here: the diffs prune identical
sub-trees by uid, and applying ∆B to A goes through the incremental editor,
which rebuilds only the spliced region — every disjointly-modified
sub-tree of A is reused verbatim in the merged tree (the "Reused" nodes of
Fig. 3), and content addressing dedups everything shared with B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chunk import Uid
from repro.errors import MergeConflictError
from repro.postree.diff import TreeDiff, diff_trees


@dataclass(frozen=True)
class MergeConflict:
    """One key edited incompatibly on both sides."""

    key: bytes
    base_value: Optional[bytes]  # None: key absent in base
    a_value: Optional[bytes]  # None: deleted in A
    b_value: Optional[bytes]  # None: deleted in B


#: Resolver signature: returns the merged value, or None to delete the key.
Resolver = Callable[[MergeConflict], Optional[bytes]]


def resolve_ours(conflict: MergeConflict) -> Optional[bytes]:
    """Keep side A on conflict."""
    return conflict.a_value


def resolve_theirs(conflict: MergeConflict) -> Optional[bytes]:
    """Keep side B on conflict."""
    return conflict.b_value


@dataclass
class MergeStats:
    """Work accounting for one merge (drives the Fig. 3 benchmark)."""

    #: Sub-trees pruned across the two diff phases.
    subtrees_pruned: int = 0
    #: Node chunks loaded across the two diff phases.
    nodes_loaded: int = 0
    #: Chunks newly materialized while applying the merged edits.
    chunks_created: int = 0
    #: Chunk writes absorbed by dedup while applying (reused content).
    chunks_deduped: int = 0
    #: Keys taken from each side without conflict.
    edits_from_a: int = 0
    edits_from_b: int = 0
    #: Conflicts encountered (resolved or fatal).
    conflicts: int = 0


@dataclass
class MergeResult:
    """Outcome of a three-way merge."""

    root: Uid
    stats: MergeStats
    conflicts: List[MergeConflict] = field(default_factory=list)


def _edit_maps(diff: TreeDiff) -> Dict[bytes, Optional[bytes]]:
    """Normalize a diff into {key → new value or None-for-delete}."""
    edits: Dict[bytes, Optional[bytes]] = {}
    for key, value in diff.added.items():
        edits[key] = value
    for key, (_, new_value) in diff.changed.items():
        edits[key] = new_value
    for key in diff.removed:
        edits[key] = None
    return edits


def three_way_merge(
    base,
    tree_a,
    tree_b,
    resolver: Optional[Resolver] = None,
) -> MergeResult:
    """Merge ``tree_a`` and ``tree_b`` against common ancestor ``base``.

    Non-overlapping edits combine automatically.  For overlapping keys with
    incompatible outcomes, ``resolver`` decides; with no resolver a
    :class:`MergeConflictError` carrying every conflict is raised.

    Returns a tree built by applying ∆B (plus resolutions) onto A, so all
    of A's untouched sub-trees are physically reused.
    """
    stats = MergeStats()
    diff_a = diff_trees(base, tree_a)
    diff_b = diff_trees(base, tree_b)
    stats.subtrees_pruned = diff_a.subtrees_pruned + diff_b.subtrees_pruned
    stats.nodes_loaded = diff_a.nodes_loaded + diff_b.nodes_loaded

    edits_a = _edit_maps(diff_a)
    edits_b = _edit_maps(diff_b)

    conflicts: List[MergeConflict] = []
    to_apply: Dict[bytes, Optional[bytes]] = {}
    for key, b_value in edits_b.items():
        if key not in edits_a:
            to_apply[key] = b_value
            stats.edits_from_b += 1
            continue
        a_value = edits_a[key]
        if a_value == b_value:
            stats.edits_from_a += 1  # both sides agree; A already has it
            continue
        base_value = base.get(key)
        conflicts.append(MergeConflict(key, base_value, a_value, b_value))
    stats.edits_from_a += sum(1 for key in edits_a if key not in edits_b)
    stats.conflicts = len(conflicts)

    if conflicts:
        if resolver is None:
            raise MergeConflictError(conflicts)
        for conflict in conflicts:
            resolution = resolver(conflict)
            current = tree_a.get(conflict.key)
            if resolution != current:
                to_apply[conflict.key] = resolution

    puts = {k: v for k, v in to_apply.items() if v is not None}
    deletes = [k for k, v in to_apply.items() if v is None]

    before = tree_a.store.stats.snapshot()
    merged = tree_a.update(puts=puts, deletes=deletes)
    delta = tree_a.store.stats.delta(before)
    stats.chunks_created = delta.puts_new
    stats.chunks_deduped = delta.puts_dup

    return MergeResult(root=merged.root, stats=stats, conflicts=conflicts)
