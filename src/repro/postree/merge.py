"""Three-way merge of POS-Trees (paper §II-B, Fig. 3).

The merge "consists of a diff phase and a merge phase.  In the diff phase,
two objects A and B are diffed against a common base object C ... In the
merge phase, the differences are applied to one of the two objects."
Both phases run at sub-tree granularity here: the diffs prune identical
sub-trees by uid, and applying ∆B to A goes through the incremental editor,
which rebuilds only the spliced region — every disjointly-modified
sub-tree of A is reused verbatim in the merged tree (the "Reused" nodes of
Fig. 3), and content addressing dedups everything shared with B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.chunk import Uid
from repro.errors import MergeConflictError
from repro.postree.diff import TreeDiff, diff_trees

if TYPE_CHECKING:
    from repro.postree.tree import PosTree


@dataclass(frozen=True)
class MergeConflict:
    """One key edited incompatibly on both sides."""

    key: bytes
    base_value: Optional[bytes]  # None: key absent in base
    a_value: Optional[bytes]  # None: deleted in A
    b_value: Optional[bytes]  # None: deleted in B


#: Resolver signature: returns the merged value, or None to delete the key.
Resolver = Callable[[MergeConflict], Optional[bytes]]


def resolve_ours(conflict: MergeConflict) -> Optional[bytes]:
    """Keep side A on conflict."""
    return conflict.a_value


def resolve_theirs(conflict: MergeConflict) -> Optional[bytes]:
    """Keep side B on conflict."""
    return conflict.b_value


class MergeStats:
    """Work accounting for one merge (drives the Fig. 3 benchmark)."""

    __slots__ = (
        "subtrees_pruned",
        "nodes_loaded",
        "chunks_created",
        "chunks_deduped",
        "edits_from_a",
        "edits_from_b",
        "conflicts",
    )

    def __init__(self) -> None:
        #: Sub-trees pruned across the two diff phases.
        self.subtrees_pruned = 0
        #: Node chunks loaded across the two diff phases.
        self.nodes_loaded = 0
        #: Chunks newly materialized while applying the merged edits.
        self.chunks_created = 0
        #: Chunk writes absorbed by dedup while applying (reused content).
        self.chunks_deduped = 0
        #: Keys taken from each side without conflict.
        self.edits_from_a = 0
        self.edits_from_b = 0
        #: Conflicts encountered (resolved or fatal).
        self.conflicts = 0


class MergeResult:
    """Outcome of a three-way merge."""

    __slots__ = ("root", "stats", "conflicts")

    def __init__(
        self,
        root: Uid,
        stats: MergeStats,
        conflicts: Optional[List[MergeConflict]] = None,
    ) -> None:
        self.root = root
        self.stats = stats
        self.conflicts = conflicts if conflicts is not None else []


def _edit_maps(diff: TreeDiff) -> Dict[bytes, Optional[bytes]]:
    """Normalize a diff into {key → new value or None-for-delete}."""
    edits: Dict[bytes, Optional[bytes]] = {}
    for key, value in diff.added.items():
        edits[key] = value
    for key, (_, new_value) in diff.changed.items():
        edits[key] = new_value
    for key in diff.removed:
        edits[key] = None
    return edits


def three_way_merge(
    base: PosTree,
    tree_a: PosTree,
    tree_b: PosTree,
    resolver: Optional[Resolver] = None,
) -> MergeResult:
    """Merge ``tree_a`` and ``tree_b`` against common ancestor ``base``.

    Non-overlapping edits combine automatically.  For overlapping keys with
    incompatible outcomes, ``resolver`` decides; with no resolver a
    :class:`MergeConflictError` carrying every conflict is raised.

    Returns a tree built by applying ∆B (plus resolutions) onto A, so all
    of A's untouched sub-trees are physically reused.
    """
    stats = MergeStats()
    diff_a = diff_trees(base, tree_a)
    diff_b = diff_trees(base, tree_b)
    stats.subtrees_pruned = diff_a.subtrees_pruned + diff_b.subtrees_pruned
    stats.nodes_loaded = diff_a.nodes_loaded + diff_b.nodes_loaded

    edits_a = _edit_maps(diff_a)
    edits_b = _edit_maps(diff_b)

    conflicts: List[MergeConflict] = []
    to_apply: Dict[bytes, Optional[bytes]] = {}
    for key, b_value in edits_b.items():
        if key not in edits_a:
            to_apply[key] = b_value
            stats.edits_from_b += 1
            continue
        a_value = edits_a[key]
        if a_value == b_value:
            stats.edits_from_a += 1  # both sides agree; A already has it
            continue
        base_value = base.get(key)
        conflicts.append(MergeConflict(key, base_value, a_value, b_value))
    stats.edits_from_a += sum(1 for key in edits_a if key not in edits_b)
    stats.conflicts = len(conflicts)

    if conflicts:
        if resolver is None:
            raise MergeConflictError(conflicts)
        for conflict in conflicts:
            resolution = resolver(conflict)
            current = tree_a.get(conflict.key)
            if resolution != current:
                to_apply[conflict.key] = resolution

    puts = {k: v for k, v in to_apply.items() if v is not None}
    deletes = [k for k, v in to_apply.items() if v is None]

    before = tree_a.store.stats.snapshot()
    merged = tree_a.update(puts=puts, deletes=deletes)
    delta = tree_a.store.stats.delta(before)
    stats.chunks_created = delta.puts_new
    stats.chunks_deduped = delta.puts_dup

    return MergeResult(root=merged.root, stats=stats, conflicts=conflicts)
