"""Positional POS-Trees: ordered sequences and blobs.

Lists and blobs have no keys, so their trees index by *position*: index
entries carry the child's uid and its element count (elements for lists,
bytes for blobs), and descent follows cumulative counts.  Node boundaries
still come from the rolling-hash pattern, so two sequences with equal
content are represented by identical pages regardless of how they were
assembled — the same SIRI behaviour as the keyed tree.

Updates are expressed as ``splice(start, stop, replacement)``.  The new
tree is re-chunked from the stream; content addressing guarantees that
every page outside the edited neighbourhood deduplicates against the old
version, so *storage* cost is proportional to the change even though
compute is O(N) for positional edits (documented trade-off; the keyed
tree is the structure the paper's hot paths use).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple, Union

from repro.chunk import Chunk, ChunkType, Reader, Uid, Writer
from repro.errors import ChunkEncodingError
from repro.postree.config import DEFAULT_TREE_CONFIG, TreeConfig
from repro.rolling.chunker import BLOB_CONFIG, ChunkerConfig
from repro.rolling.fast import fast_entry_spans
from repro.store.base import ChunkStore


class ListIndexEntry(NamedTuple):
    """Child reference in a positional index node."""

    child: Uid
    count: int  # elements (list) or bytes (blob) beneath the child


def encode_list_item(item: bytes) -> bytes:
    """Serialize one list element (chunker input)."""
    return Writer().blob(item).getvalue()


def encode_list_index_entry(entry: ListIndexEntry) -> bytes:
    """Serialize one child reference (chunker input)."""
    return Writer().uid(entry.child).uvarint(entry.count).getvalue()


class ListLeafNode:
    """A run of list elements."""

    __slots__ = ("items", "_chunk")

    def __init__(self, items: List[bytes]) -> None:
        self.items = items
        self._chunk: Optional[Chunk] = None

    def to_chunk(self) -> Chunk:
        if self._chunk is None:
            writer = Writer().uvarint(len(self.items))
            for item in self.items:
                writer.blob(item)
            self._chunk = Chunk(ChunkType.LIST_LEAF, writer.getvalue())
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "ListLeafNode":
        if chunk.type != ChunkType.LIST_LEAF:
            raise ChunkEncodingError(f"expected LIST_LEAF, got {chunk.type.name}")
        reader = Reader(chunk.data)
        items = [reader.blob() for _ in range(reader.uvarint())]
        reader.expect_end()
        node = cls(items)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        return len(self.items)

    def descriptor(self) -> ListIndexEntry:
        return ListIndexEntry(self.uid, self.count)


class ListIndexNode:
    """Index node over positional children."""

    __slots__ = ("level", "entries", "_chunk")

    def __init__(self, level: int, entries: List[ListIndexEntry]) -> None:
        if level < 1:
            raise ValueError("index nodes live at level >= 1")
        self.level = level
        self.entries = entries
        self._chunk: Optional[Chunk] = None

    def to_chunk(self) -> Chunk:
        if self._chunk is None:
            writer = Writer().uvarint(self.level).uvarint(len(self.entries))
            for entry in self.entries:
                writer.raw(encode_list_index_entry(entry))
            self._chunk = Chunk(ChunkType.LIST_INDEX, writer.getvalue())
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "ListIndexNode":
        if chunk.type != ChunkType.LIST_INDEX:
            raise ChunkEncodingError(f"expected LIST_INDEX, got {chunk.type.name}")
        reader = Reader(chunk.data)
        level = reader.uvarint()
        entries = [
            ListIndexEntry(reader.uid(), reader.uvarint())
            for _ in range(reader.uvarint())
        ]
        reader.expect_end()
        node = cls(level, entries)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        return sum(entry.count for entry in self.entries)

    def descriptor(self) -> ListIndexEntry:
        return ListIndexEntry(self.uid, self.count)

    def child_for(self, position: int) -> Tuple[int, int]:
        """(child index, offset within child) for a global position."""
        remaining = position
        for index, entry in enumerate(self.entries):
            if remaining < entry.count:
                return index, remaining
            remaining -= entry.count
        raise IndexError(position)


def _build_list_index_levels(
    store: ChunkStore,
    descriptors: List[ListIndexEntry],
    config: TreeConfig,
    first_level: int = 1,
) -> Uid:
    """Stack positional index levels until a single root remains."""
    level = first_level
    while len(descriptors) > 1:
        encoded = [encode_list_index_entry(descriptor) for descriptor in descriptors]
        next_level: List[ListIndexEntry] = []
        for start, end in fast_entry_spans(encoded, config.index):
            node = ListIndexNode(level, descriptors[start:end])
            store.put(node.to_chunk())
            next_level.append(node.descriptor())
        descriptors = next_level
        level += 1
    return descriptors[0].child


class PositionalTree:
    """Ordered sequence of byte items over a chunk store."""

    __slots__ = ("store", "root", "config")

    def __init__(
        self,
        store: ChunkStore,
        root: Uid,
        config: TreeConfig = DEFAULT_TREE_CONFIG,
    ) -> None:
        self.store = store
        self.root = root
        self.config = config

    @classmethod
    def from_items(
        cls,
        store: ChunkStore,
        items: Iterable[bytes],
        config: TreeConfig = DEFAULT_TREE_CONFIG,
    ) -> "PositionalTree":
        """Bulk-build a sequence tree."""
        materialized = [bytes(item) for item in items]
        encoded = [encode_list_item(item) for item in materialized]
        descriptors: List[ListIndexEntry] = []
        for start, end in fast_entry_spans(encoded, config.leaf):
            node = ListLeafNode(materialized[start:end])
            store.put(node.to_chunk())
            descriptors.append(node.descriptor())
        if not descriptors:
            node = ListLeafNode([])
            store.put(node.to_chunk())
            return cls(store, node.uid, config)
        return cls(store, _build_list_index_levels(store, descriptors, config), config)

    def _node(self, uid: Uid) -> Union["ListLeafNode", "ListIndexNode"]:
        getter = getattr(self.store, "get_node", None)
        if getter is not None:
            decoded = getter(uid)
            if isinstance(decoded, (ListLeafNode, ListIndexNode)):
                return decoded
        chunk = self.store.get(uid)
        if chunk.type == ChunkType.LIST_LEAF:
            return ListLeafNode.from_chunk(chunk)
        return ListIndexNode.from_chunk(chunk)

    def __len__(self) -> int:
        return self._node(self.root).count

    def get(self, position: int) -> bytes:
        """Element at ``position`` (supports negatives)."""
        size = len(self)
        if position < 0:
            position += size
        if not 0 <= position < size:
            raise IndexError(position)
        node = self._node(self.root)
        while isinstance(node, ListIndexNode):
            index, position = node.child_for(position)
            node = self._node(node.entries[index].child)
        return node.items[position]

    def iter_items(self, start: int = 0, stop: Optional[int] = None) -> Iterator[bytes]:
        """Yield elements in ``[start, stop)``."""
        size = len(self)
        if stop is None or stop > size:
            stop = size
        if start < 0 or start > size:
            raise IndexError(start)
        if start >= stop:
            return
        produced = start
        for leaf, leaf_start in self._leaves_from(start):
            for item in leaf.items[produced - leaf_start :]:
                if produced >= stop:
                    return
                yield item
                produced += 1

    def _leaves_from(self, position: int) -> Iterator[Tuple[ListLeafNode, int]]:
        """Yield (leaf, global position of its first element) from ``position``."""
        stack: List[Tuple[ListIndexNode, int, int]] = []  # node, child idx, base
        node = self._node(self.root)
        base = 0
        offset = position
        while isinstance(node, ListIndexNode):
            index, offset = node.child_for(offset) if node.count > offset else (
                len(node.entries) - 1,
                offset,
            )
            consumed = sum(entry.count for entry in node.entries[:index])
            stack.append((node, index, base))
            base += consumed
            node = self._node(node.entries[index].child)
        yield node, base
        while stack:
            parent, index, pbase = stack.pop()
            consumed = pbase + sum(e.count for e in parent.entries[: index + 1])
            index += 1
            if index >= len(parent.entries):
                continue
            stack.append((parent, index, pbase))
            child = self._node(parent.entries[index].child)
            base = consumed
            while isinstance(child, ListIndexNode):
                stack.append((child, 0, base))
                child = self._node(child.entries[0].child)
            yield child, base

    def items(self) -> List[bytes]:
        """Materialize the whole sequence."""
        return list(self.iter_items())

    def splice(
        self, start: int, stop: int, replacement: Iterable[bytes] = ()
    ) -> "PositionalTree":
        """Replace elements ``[start, stop)`` with ``replacement``.

        Returns a new tree; unchanged pages deduplicate against this one.
        """
        size = len(self)
        if not 0 <= start <= stop <= size:
            raise IndexError((start, stop))
        stream = itertools.chain(
            self.iter_items(0, start), replacement, self.iter_items(stop, size)
        )
        return PositionalTree.from_items(self.store, stream, self.config)

    def append(self, item: bytes) -> "PositionalTree":
        """Add one element at the end."""
        size = len(self)
        return self.splice(size, size, [item])

    def extend(self, items: Iterable[bytes]) -> "PositionalTree":
        """Add elements at the end."""
        size = len(self)
        return self.splice(size, size, items)

    def insert(self, position: int, item: bytes) -> "PositionalTree":
        """Insert one element before ``position``."""
        return self.splice(position, position, [item])

    def delete(self, position: int) -> "PositionalTree":
        """Remove the element at ``position``."""
        return self.splice(position, position + 1, [])

    def set(self, position: int, item: bytes) -> "PositionalTree":
        """Replace the element at ``position``."""
        return self.splice(position, position + 1, [item])

    def page_uids(self) -> Set[Uid]:
        """All pages reachable from the root."""
        pages: Set[Uid] = set()
        stack = [self.root]
        while stack:
            uid = stack.pop()
            if uid in pages:
                continue
            pages.add(uid)
            node = self._node(uid)
            if isinstance(node, ListIndexNode):
                stack.extend(entry.child for entry in node.entries)
        return pages

    def __repr__(self) -> str:
        return f"PositionalTree({len(self)} items, root={self.root.short()}…)"


class BlobTree:
    """Large byte payloads as a Merkle tree of content-defined chunks."""

    __slots__ = ("store", "root", "blob_config", "tree_config")

    def __init__(
        self,
        store: ChunkStore,
        root: Uid,
        blob_config: ChunkerConfig = BLOB_CONFIG,
        tree_config: TreeConfig = DEFAULT_TREE_CONFIG,
    ) -> None:
        self.store = store
        self.root = root
        self.blob_config = blob_config
        self.tree_config = tree_config

    @classmethod
    def from_bytes(
        cls,
        store: ChunkStore,
        data: bytes,
        blob_config: ChunkerConfig = BLOB_CONFIG,
        tree_config: TreeConfig = DEFAULT_TREE_CONFIG,
    ) -> "BlobTree":
        """Slice ``data`` with the rolling hash and build the Merkle tree.

        Uses the vectorized chunker when numpy is available (identical
        spans, ~5x faster; see :mod:`repro.rolling.fast`).
        """
        from repro.rolling.fast import fast_chunk_spans

        descriptors: List[ListIndexEntry] = []
        for start, end in fast_chunk_spans(data, blob_config):
            chunk = Chunk(ChunkType.BLOB, data[start:end])
            store.put(chunk)
            descriptors.append(ListIndexEntry(chunk.uid, end - start))
        if not descriptors:
            chunk = Chunk(ChunkType.BLOB, b"")
            store.put(chunk)
            return cls(store, chunk.uid, blob_config, tree_config)
        root = _build_list_index_levels(store, descriptors, tree_config)
        return cls(store, root, blob_config, tree_config)

    def _node(self, uid: Uid) -> Union[Chunk, "ListIndexNode"]:
        getter = getattr(self.store, "get_node", None)
        if getter is not None:
            decoded = getter(uid)
            if isinstance(decoded, (Chunk, ListIndexNode)):
                return decoded
        chunk = self.store.get(uid)
        if chunk.type == ChunkType.BLOB:
            return chunk
        return ListIndexNode.from_chunk(chunk)

    def size(self) -> int:
        """Total byte length."""
        node = self._node(self.root)
        return len(node.data) if isinstance(node, Chunk) else node.count

    def iter_chunks(self) -> Iterator[Chunk]:
        """Yield the raw data chunks left-to-right."""
        node = self._node(self.root)
        if isinstance(node, Chunk):
            yield node
            return

        def walk(index_node: ListIndexNode) -> Iterator[Chunk]:
            for entry in index_node.entries:
                child = self._node(entry.child)
                if isinstance(child, Chunk):
                    yield child
                else:
                    yield from walk(child)

        yield from walk(node)

    def read(self) -> bytes:
        """Reassemble the full payload."""
        return b"".join(chunk.data for chunk in self.iter_chunks())

    def read_at(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes from ``offset`` without full assembly."""
        if offset < 0 or length < 0:
            raise IndexError((offset, length))
        out = bytearray()
        position = 0
        for chunk in self.iter_chunks():
            chunk_end = position + len(chunk.data)
            if chunk_end > offset:
                lo = max(0, offset - position)
                hi = min(len(chunk.data), offset + length - position)
                out.extend(chunk.data[lo:hi])
                if position + hi >= offset + length:
                    break
            position = chunk_end
        return bytes(out)

    def splice(self, start: int, stop: int, replacement: bytes = b"") -> "BlobTree":
        """Replace bytes ``[start, stop)``; unchanged chunks dedup."""
        data = self.read()
        if not 0 <= start <= stop <= len(data):
            raise IndexError((start, stop))
        new_data = data[:start] + replacement + data[stop:]
        return BlobTree.from_bytes(
            self.store, new_data, self.blob_config, self.tree_config
        )

    def page_uids(self) -> Set[Uid]:
        """All pages (index nodes and data chunks) reachable from the root."""
        pages: Set[Uid] = set()
        stack = [self.root]
        while stack:
            uid = stack.pop()
            if uid in pages:
                continue
            pages.add(uid)
            node = self._node(uid)
            if isinstance(node, ListIndexNode):
                stack.extend(entry.child for entry in node.entries)
        return pages

    def __repr__(self) -> str:
        return f"BlobTree({self.size()}B, root={self.root.short()}…)"
