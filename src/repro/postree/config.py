"""Tree-level configuration: chunking parameters per level kind."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rolling.chunker import ChunkerConfig


def _default_leaf_config() -> ChunkerConfig:
    # Expected ~1 KiB leaves: large enough for healthy fan-out, small
    # enough that a single-record edit dirties only a sliver of storage.
    return ChunkerConfig(pattern_bits=10, min_size=64, max_size=16384)


def _default_index_config() -> ChunkerConfig:
    # Index entries are ~40-70 B each; q=9 gives ~8-12 entries per node.
    # min_entries=2 guarantees every index level at least halves, so the
    # build always converges to a single root even on adversarial content.
    return ChunkerConfig(pattern_bits=9, min_size=64, max_size=8192, min_entries=2)


@dataclass(frozen=True)
class TreeConfig:
    """Chunking parameters for POS-Tree levels.

    Both the bulk builder and the incremental editor read only this, so a
    tree built either way under the same config is byte-identical — that
    equality is asserted by the property tests.
    """

    leaf: ChunkerConfig = field(default_factory=_default_leaf_config)
    index: ChunkerConfig = field(default_factory=_default_index_config)

    def __post_init__(self) -> None:
        # The incremental editor seeds the rolling window with the tail of
        # the preceding node; that tail must always be a full window, which
        # requires every closed node to span at least `window` bytes.
        for name, config in (("leaf", self.leaf), ("index", self.index)):
            if config.min_size < config.window:
                raise ValueError(
                    f"{name} chunker min_size ({config.min_size}) must be >= "
                    f"window ({config.window}) for splice editing to be exact"
                )
        if self.index.min_entries < 2:
            raise ValueError(
                "index chunker needs min_entries >= 2: single-entry index "
                "nodes can repeat forever and the tree never reaches a root"
            )

    def scaled(self, leaf_target: int, index_target: int = 0) -> "TreeConfig":
        """Derive a config with the given expected node sizes in bytes."""
        index_target = index_target or max(256, leaf_target // 4)
        return TreeConfig(
            leaf=self.leaf.with_target(leaf_target),
            index=self.index.with_target(index_target),
        )


#: Shared default used by every typed object unless overridden.
DEFAULT_TREE_CONFIG = TreeConfig()
