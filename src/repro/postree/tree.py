"""The POS-Tree handle: reads, scans, and immutable-style updates.

A :class:`PosTree` is a *view* — (store, root uid, config).  All mutating
operations return a new handle on a new root; every chunk ever written
stays materialized, which is exactly the paper's immutability story (old
versions remain addressable and share pages with new ones).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.chunk import Uid
from repro.errors import TreeError
from repro.postree.builder import bulk_build
from repro.postree.config import DEFAULT_TREE_CONFIG, TreeConfig
from repro.postree.node import (
    IndexNode,
    LeafEntry,
    LeafNode,
    load_node,
    node_level,
)
from repro.store.base import ChunkStore

Node = Union[LeafNode, IndexNode]


class PosTree:
    """Ordered key→value POS-Tree over a chunk store."""

    __slots__ = ("store", "root", "config")

    def __init__(
        self,
        store: ChunkStore,
        root: Uid,
        config: TreeConfig = DEFAULT_TREE_CONFIG,
    ) -> None:
        self.store = store
        self.root = root
        self.config = config

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(
        cls, store: ChunkStore, config: TreeConfig = DEFAULT_TREE_CONFIG
    ) -> "PosTree":
        """A tree with no records (canonical empty leaf root)."""
        return cls(store, bulk_build(store, [], config), config)

    @classmethod
    def from_pairs(
        cls,
        store: ChunkStore,
        pairs: Iterable[Tuple[bytes, bytes]],
        config: TreeConfig = DEFAULT_TREE_CONFIG,
        presorted: bool = False,
    ) -> "PosTree":
        """Bulk-build from (key, value) pairs; sorts and dedups by default.

        With duplicates, the last value for a key wins (load semantics).
        """
        if presorted:
            entries = [LeafEntry(k, v) for k, v in pairs]
        else:
            merged: Dict[bytes, bytes] = {}
            for key, value in pairs:
                merged[key] = value
            entries = [LeafEntry(k, merged[k]) for k in sorted(merged)]
        return cls(store, bulk_build(store, entries, config), config)

    def with_root(self, root: Uid) -> "PosTree":
        """Same store/config, different root (cheap version switch)."""
        return PosTree(self.store, root, self.config)

    # -- node access ---------------------------------------------------------

    def node(self, uid: Uid) -> Node:
        """Load and decode a node chunk.

        Stores that cache decoded nodes advertise the duck-typed
        ``get_node`` hook (:mod:`repro.store.nodecache`); when present, a
        hot descent costs one dict probe instead of a fetch + decode.
        """
        getter = getattr(self.store, "get_node", None)
        if getter is not None:
            decoded = getter(uid)
            if isinstance(decoded, (LeafNode, IndexNode)):
                return decoded
        return load_node(self.store.get(uid))

    def root_node(self) -> Node:
        """The decoded root."""
        return self.node(self.root)

    def height(self) -> int:
        """Levels above the leaves (0 for a leaf-only tree)."""
        return node_level(self.root_node())

    # -- point reads ---------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up one key, following split keys down (B+-tree descent)."""
        node = self.root_node()
        while isinstance(node, IndexNode):
            if not node.entries:
                return None
            node = self.node(node.entries[node.child_for(key)].child)
        return node.find(key)

    def has(self, key: bytes) -> bool:
        """Membership test."""
        return self.get(key) is not None

    def __contains__(self, key: bytes) -> bool:
        return self.has(key)

    def __len__(self) -> int:
        """Record count (O(1): aggregated in the root)."""
        return self.root_node().count

    # -- scans ----------------------------------------------------------------

    def leaves(self, start_key: Optional[bytes] = None) -> Iterator[LeafNode]:
        """Yield leaf nodes left-to-right, starting at the leaf that would
        contain ``start_key`` (or the leftmost)."""
        stack: List[Tuple[IndexNode, int]] = []
        node = self.root_node()
        while isinstance(node, IndexNode):
            if not node.entries:
                return
            pos = node.child_for(start_key) if start_key is not None else 0
            stack.append((node, pos))
            node = self.node(node.entries[pos].child)
        yield node
        while stack:
            parent, pos = stack.pop()
            pos += 1
            if pos >= len(parent.entries):
                continue
            stack.append((parent, pos))
            child = self.node(parent.entries[pos].child)
            while isinstance(child, IndexNode):
                stack.append((child, 0))
                child = self.node(child.entries[0].child)
            yield child

    def iter_entries(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[LeafEntry]:
        """Yield records with ``start <= key < end`` in key order."""
        for leaf in self.leaves(start_key=start):
            for entry in leaf.entries:
                if start is not None and entry.key < start:
                    continue
                if end is not None and entry.key >= end:
                    return
                yield entry

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs in key order."""
        for entry in self.iter_entries():
            yield (entry.key, entry.value)

    def keys(self) -> Iterator[bytes]:
        """All keys in order."""
        for entry in self.iter_entries():
            yield entry.key

    # -- structure inspection --------------------------------------------------

    def page_uids(self) -> Set[Uid]:
        """The set P(I) of all pages reachable from the root (SIRI Def. 1).

        O(N); meant for tests, SIRI checkers and storage accounting.
        """
        pages: Set[Uid] = set()
        stack = [self.root]
        while stack:
            uid = stack.pop()
            if uid in pages:
                continue
            pages.add(uid)
            node = self.node(uid)
            if isinstance(node, IndexNode):
                stack.extend(entry.child for entry in node.entries)
        return pages

    def node_count_by_level(self) -> Dict[int, int]:
        """How many distinct pages exist per level (diagnostics)."""
        counts: Dict[int, int] = {}
        seen: Set[Uid] = set()
        stack = [self.root]
        while stack:
            uid = stack.pop()
            if uid in seen:
                continue
            seen.add(uid)
            node = self.node(uid)
            level = node_level(node)
            counts[level] = counts.get(level, 0) + 1
            if isinstance(node, IndexNode):
                stack.extend(entry.child for entry in node.entries)
        return counts

    def check_structure(self) -> None:
        """Validate invariants: key order, split keys, counts, levels.

        Raises :class:`TreeError` on the first violation; used heavily by
        the test suite after every editing operation.
        """
        previous_key: Optional[bytes] = None
        root = self.root_node()
        expected_level = node_level(root)

        def visit(uid: Uid, level: int) -> Tuple[bytes, int]:
            nonlocal previous_key
            node = self.node(uid)
            if node_level(node) != level:
                raise TreeError(
                    f"node {uid.short()} at level {node_level(node)}, expected {level}"
                )
            if isinstance(node, LeafNode):
                for entry in node.entries:
                    if previous_key is not None and entry.key <= previous_key:
                        raise TreeError(
                            f"key order violated at {entry.key!r} (after {previous_key!r})"
                        )
                    previous_key = entry.key
                return node.split_key(), node.count
            total = 0
            for entry in node.entries:
                child_max, child_count = visit(entry.child, level - 1)
                if child_max != entry.split_key:
                    raise TreeError(
                        f"split key mismatch under {uid.short()}: "
                        f"{entry.split_key!r} vs child max {child_max!r}"
                    )
                if child_count != entry.count:
                    raise TreeError(
                        f"count mismatch under {uid.short()}: "
                        f"{entry.count} vs child count {child_count}"
                    )
                total += child_count
            return node.split_key(), total

        visit(self.root, expected_level)

    # -- updates (immutable style) ----------------------------------------------

    def update(
        self,
        puts: Optional[Dict[bytes, bytes]] = None,
        deletes: Optional[Iterable[bytes]] = None,
    ) -> "PosTree":
        """Apply a batch of upserts and deletions; return the new tree.

        Uses the incremental splice editor (boundary-resynchronizing), so
        cost is proportional to the touched region, not the tree size.
        """
        from repro.postree.edit import apply_edits

        new_root = apply_edits(self, puts or {}, set(deletes or ()))
        return self.with_root(new_root)

    def put(self, key: bytes, value: bytes) -> "PosTree":
        """Upsert one record."""
        return self.update(puts={key: value})

    def delete(self, key: bytes) -> "PosTree":
        """Remove one record (no-op if absent)."""
        return self.update(deletes=[key])

    def __repr__(self) -> str:
        return f"PosTree({len(self)} records, root={self.root.short()}…)"
