"""Checkers for the SIRI properties (paper Definition 1).

These functions *measure* whether an index family behaves as a
Structurally-Invariant Reusable Index; the test suite and the SIRI
ablation benchmark run them against POS-Tree:

1. **Structurally invariant** — R(I1) = R(I2) ⇔ P(I1) = P(I2): building
   the same record set along different edit histories must yield the same
   root and page set.
2. **Recursively identical** — adding one record creates far fewer new
   pages than it shares: |P(I2) − P(I1)| ≪ |P(I2) ∩ P(I1)|.
3. **Universally reusable** — every page of an instance appears in some
   strictly larger instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.postree.config import DEFAULT_TREE_CONFIG, TreeConfig
from repro.postree.tree import PosTree
from repro.store.base import ChunkStore


@dataclass(frozen=True)
class InvarianceReport:
    """Outcome of a structural-invariance trial."""

    holds: bool
    orders_tried: int
    distinct_roots: int
    pages: int


def check_structural_invariance(
    store: ChunkStore,
    records: Dict[bytes, bytes],
    orders: int = 4,
    seed: int = 7,
    config: TreeConfig = DEFAULT_TREE_CONFIG,
) -> InvarianceReport:
    """Build ``records`` via several random edit orders; compare structures.

    One build is the bulk reference; the others insert in shuffled batches
    through the incremental editor.  SIRI Property 1 demands identical
    roots *and* identical page sets.
    """
    reference = PosTree.from_pairs(store, records.items(), config)
    reference_pages = reference.page_uids()
    roots = {reference.root}
    rng = random.Random(seed)
    items = list(records.items())
    for _ in range(max(0, orders - 1)):
        rng.shuffle(items)
        tree = PosTree.empty(store, config)
        batch = max(1, len(items) // rng.randint(3, 12))
        for index in range(0, len(items), batch):
            tree = tree.update(puts=dict(items[index : index + batch]))
        roots.add(tree.root)
        if tree.page_uids() != reference_pages:
            roots.add(tree.root)  # page mismatch implies failure regardless
            return InvarianceReport(False, orders, len(roots), len(reference_pages))
    return InvarianceReport(len(roots) == 1, orders, len(roots), len(reference_pages))


@dataclass(frozen=True)
class RecursiveIdentityReport:
    """Page-sharing metrics when one record is added."""

    new_pages: int
    shared_pages: int
    holds: bool  # new ≪ shared (we require shared > 2 × new)


def check_recursive_identity(
    store: ChunkStore,
    records: Dict[bytes, bytes],
    extra_key: bytes,
    extra_value: bytes,
    config: TreeConfig = DEFAULT_TREE_CONFIG,
) -> RecursiveIdentityReport:
    """Measure |P(I2) − P(I1)| vs |P(I2) ∩ P(I1)| for I2 = I1 + {r}."""
    if extra_key in records:
        raise ValueError("extra_key must not already be a record")
    tree_1 = PosTree.from_pairs(store, records.items(), config)
    tree_2 = tree_1.put(extra_key, extra_value)
    pages_1 = tree_1.page_uids()
    pages_2 = tree_2.page_uids()
    new = len(pages_2 - pages_1)
    shared = len(pages_2 & pages_1)
    return RecursiveIdentityReport(new, shared, holds=shared > 2 * new)


def check_universal_reusability(
    store: ChunkStore,
    records: Dict[bytes, bytes],
    sample: int = 16,
    seed: int = 11,
    config: TreeConfig = DEFAULT_TREE_CONFIG,
) -> Tuple[int, int]:
    """For sampled non-root pages of I1, find a strictly larger I2 reusing
    each of them.

    Construction: extend the record set past the maximum key (which leaves
    everything but the right spine untouched) and, for right-spine pages,
    extend below the minimum key instead.  Returns
    (pages_reused, pages_sampled); Property 3 holds when they are equal.

    The root page is excluded from sampling: every *strict* superset
    instance necessarily has a different root node, so reusing the old
    root requires it to resurface as an interior node of a much larger
    instance — Property 3 is existential there, and searching for such an
    instance is a probabilistic exercise the checker does not perform.
    """
    tree_1 = PosTree.from_pairs(store, records.items(), config)
    pages_1 = tree_1.page_uids() - {tree_1.root}
    if not pages_1:
        return 0, 0
    max_key = max(records) if records else b""
    extension = {
        max_key + b"~suffix-%04d" % index: b"filler-%d" % index
        for index in range(64)
    }
    bigger = dict(records)
    bigger.update(extension)
    tree_2 = PosTree.from_pairs(store, bigger.items(), config)
    pages_2 = tree_2.page_uids()
    if len(pages_2) <= len(pages_1):
        return 0, min(sample, len(pages_1))

    rng = random.Random(seed)
    candidates = sorted(pages_1)  # deterministic order for sampling
    chosen = candidates if len(candidates) <= sample else rng.sample(candidates, sample)
    reused = sum(1 for page in chosen if page in pages_2)
    # Pages on the right spine (path to the last leaf) legitimately change
    # when extending past the max key; they are reused by an instance
    # extended on the left instead.
    if reused < len(chosen):
        min_key = min(records) if records else b"zz"
        left_extension = {
            b"0-prefix-%04d" % index: b"filler-%d" % index for index in range(64)
        }
        assert all(key < min_key for key in left_extension), "prefix keys must sort first"
        bigger_left = dict(records)
        bigger_left.update(left_extension)
        pages_left = PosTree.from_pairs(store, bigger_left.items(), config).page_uids()
        reused = sum(1 for page in chosen if page in pages_2 or page in pages_left)
    return reused, len(chosen)
