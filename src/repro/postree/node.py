"""POS-Tree node encodings.

Exactly two node kinds exist in a keyed POS-Tree (Fig. 2 of the paper):

- **data chunk** (leaf): a run of ``(key, value)`` entries, sorted by key;
- **index chunk**: one entry per child, ``{⟨split-key, H({elements})⟩}`` —
  the child's largest key, its uid (the cryptographic hash of the child
  chunk, which is what makes the tree a Merkle tree), and the child
  subtree's record count (for O(log N) size/rank queries).

The *entry byte strings* defined here are also the stream the rolling-hash
chunker scans, so the same serialization decides both node content and
node boundaries — the heart of structural invariance.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple, Union

from repro.chunk import Chunk, ChunkType, Reader, Uid
from repro.errors import ChunkEncodingError


class LeafEntry(NamedTuple):
    """A record stored in a data chunk."""

    key: bytes
    value: bytes


class IndexEntry(NamedTuple):
    """A child reference stored in an index chunk."""

    split_key: bytes  # largest key in the child's subtree
    child: Uid
    count: int  # records in the child's subtree


def _uvarint_bytes(value: int) -> bytes:
    """Unsigned LEB128, byte-identical to ``Writer.uvarint``."""
    if value < 0x80:
        return bytes((value,))
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break
    return bytes(out)


def encode_leaf_entry(entry: LeafEntry) -> bytes:
    """Serialize one record (this is what the leaf-level chunker scans)."""
    key, value = entry
    return _uvarint_bytes(len(key)) + key + _uvarint_bytes(len(value)) + value


def encode_index_entry(entry: IndexEntry) -> bytes:
    """Serialize one child reference (scanned by the index-level chunker)."""
    return (
        _uvarint_bytes(len(entry.split_key))
        + entry.split_key
        + entry.child.digest
        + _uvarint_bytes(entry.count)
    )


#: Single-byte varints, precomputed: lengths/counts < 128 are the common
#: case and a list index beats a function call in the bulk loops below.
_UV1 = [bytes((value,)) for value in range(128)]


def encode_leaf_entries(entries: List[LeafEntry]) -> List[bytes]:
    """Bulk per-entry serializations (one pass, chunker + node input).

    The bulk builder encodes every entry exactly once: the same byte
    strings feed the vectorized chunker and, via the nodes' ``encoded``
    parameter, the chunk payloads.
    """
    uv1 = _UV1
    uv = _uvarint_bytes
    out: List[bytes] = []
    append = out.append
    for key, value in entries:
        key_len = len(key)
        value_len = len(value)
        if key_len < 128 and value_len < 128:
            append(uv1[key_len] + key + uv1[value_len] + value)
        else:
            append(uv(key_len) + key + uv(value_len) + value)
    return out


def encode_index_entries(entries: List[IndexEntry]) -> List[bytes]:
    """Bulk per-entry serializations for index levels."""
    uv1 = _UV1
    uv = _uvarint_bytes
    out: List[bytes] = []
    append = out.append
    for split_key, child, count in entries:
        key_len = len(split_key)
        if key_len < 128 and count < 128:
            append(uv1[key_len] + split_key + child.digest + uv1[count])
        else:
            append(uv(key_len) + split_key + child.digest + uv(count))
    return out


class LeafNode:
    """A data chunk: sorted run of records."""

    __slots__ = ("entries", "_chunk", "_encoded")

    def __init__(
        self, entries: List[LeafEntry], encoded: Optional[List[bytes]] = None
    ) -> None:
        self.entries = entries
        self._chunk: Optional[Chunk] = None
        # Optional precomputed per-entry serializations (must match
        # encode_leaf_entry output) so bulk construction encodes once.
        self._encoded = encoded

    def to_chunk(self) -> Chunk:
        """Encode (cached) into an immutable LEAF chunk."""
        if self._chunk is None:
            encoded = self._encoded
            if encoded is None:
                encoded = [encode_leaf_entry(entry) for entry in self.entries]
            data = _uvarint_bytes(len(self.entries)) + b"".join(encoded)
            self._chunk = Chunk(ChunkType.LEAF, data)
            self._encoded = None
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "LeafNode":
        """Decode a LEAF chunk."""
        if chunk.type != ChunkType.LEAF:
            raise ChunkEncodingError(f"expected LEAF chunk, got {chunk.type.name}")
        reader = Reader(chunk.data)
        count = reader.uvarint()
        entries = [LeafEntry(reader.blob(), reader.blob()) for _ in range(count)]
        reader.expect_end()
        node = cls(entries)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        """Content address of the encoded node."""
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        """Number of records in this leaf."""
        return len(self.entries)

    def split_key(self) -> bytes:
        """Largest key (the entry keys are sorted)."""
        return self.entries[-1].key if self.entries else b""

    def descriptor(self) -> IndexEntry:
        """The index entry a parent would hold for this node."""
        return IndexEntry(self.split_key(), self.uid, self.count)

    def entry_bytes(self) -> List[bytes]:
        """Per-entry serializations, in order (chunker input)."""
        return [encode_leaf_entry(entry) for entry in self.entries]

    def tail_bytes(self, window: int) -> bytes:
        """Last ``window`` bytes of the entry stream (window seeding)."""
        tail = b""
        for entry in reversed(self.entries):
            tail = encode_leaf_entry(entry) + tail
            if len(tail) >= window:
                break
        return tail[-window:]

    def find(self, key: bytes) -> Optional[bytes]:
        """Binary-search the run for ``key``; return its value or None."""
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.entries) and self.entries[lo].key == key:
            return self.entries[lo].value
        return None

    def __repr__(self) -> str:
        return f"LeafNode({self.count} entries, {self.uid.short()}…)"


class IndexNode:
    """An index chunk: one entry per child node."""

    __slots__ = ("level", "entries", "_chunk", "_encoded")

    def __init__(
        self,
        level: int,
        entries: List[IndexEntry],
        encoded: Optional[List[bytes]] = None,
    ) -> None:
        if level < 1:
            raise ValueError("index nodes live at level >= 1")
        self.level = level
        self.entries = entries
        self._chunk: Optional[Chunk] = None
        # Optional precomputed per-entry serializations (must match
        # encode_index_entry output) so bulk construction encodes once.
        self._encoded = encoded

    def to_chunk(self) -> Chunk:
        """Encode (cached) into an immutable INDEX chunk."""
        if self._chunk is None:
            encoded = self._encoded
            if encoded is None:
                encoded = [encode_index_entry(entry) for entry in self.entries]
            data = (
                _uvarint_bytes(self.level)
                + _uvarint_bytes(len(self.entries))
                + b"".join(encoded)
            )
            self._chunk = Chunk(ChunkType.INDEX, data)
            self._encoded = None
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "IndexNode":
        """Decode an INDEX chunk."""
        if chunk.type != ChunkType.INDEX:
            raise ChunkEncodingError(f"expected INDEX chunk, got {chunk.type.name}")
        reader = Reader(chunk.data)
        level = reader.uvarint()
        count = reader.uvarint()
        entries = [
            IndexEntry(reader.blob(), reader.uid(), reader.uvarint())
            for _ in range(count)
        ]
        reader.expect_end()
        node = cls(level, entries)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        """Content address of the encoded node."""
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        """Total records beneath this node."""
        return sum(entry.count for entry in self.entries)

    def split_key(self) -> bytes:
        """Largest key beneath this node."""
        return self.entries[-1].split_key if self.entries else b""

    def descriptor(self) -> IndexEntry:
        """The index entry a parent would hold for this node."""
        return IndexEntry(self.split_key(), self.uid, self.count)

    def entry_bytes(self) -> List[bytes]:
        """Per-entry serializations, in order (chunker input)."""
        return [encode_index_entry(entry) for entry in self.entries]

    def tail_bytes(self, window: int) -> bytes:
        """Last ``window`` bytes of the entry stream (window seeding)."""
        tail = b""
        for entry in reversed(self.entries):
            tail = encode_index_entry(entry) + tail
            if len(tail) >= window:
                break
        return tail[-window:]

    def child_for(self, key: bytes) -> int:
        """Index of the child whose subtree may contain ``key``.

        Children are ordered and ``split_key`` is each child's maximum, so
        the right child is the first with ``split_key >= key``; keys past
        the end route to the last child (insertion point).
        """
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].split_key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.entries):
            lo -= 1
        return lo

    def __repr__(self) -> str:
        return (
            f"IndexNode(level={self.level}, {len(self.entries)} children, "
            f"{self.uid.short()}…)"
        )


def load_node(chunk: Chunk) -> Union["LeafNode", "IndexNode"]:
    """Decode either node kind from a chunk."""
    if chunk.type == ChunkType.LEAF:
        return LeafNode.from_chunk(chunk)
    if chunk.type == ChunkType.INDEX:
        return IndexNode.from_chunk(chunk)
    raise ChunkEncodingError(f"not a POS-Tree node chunk: {chunk.type.name}")


#: The canonical empty tree: a leaf with no entries.
def empty_leaf() -> LeafNode:
    """The canonical empty-tree root."""
    return LeafNode([])


def node_level(node: Union["LeafNode", "IndexNode"]) -> int:
    """Level of a decoded node (leaves are level 0)."""
    return node.level if isinstance(node, IndexNode) else 0


Entry = Tuple[bytes, bytes]
