"""POS-Tree node encodings.

Exactly two node kinds exist in a keyed POS-Tree (Fig. 2 of the paper):

- **data chunk** (leaf): a run of ``(key, value)`` entries, sorted by key;
- **index chunk**: one entry per child, ``{⟨split-key, H({elements})⟩}`` —
  the child's largest key, its uid (the cryptographic hash of the child
  chunk, which is what makes the tree a Merkle tree), and the child
  subtree's record count (for O(log N) size/rank queries).

The *entry byte strings* defined here are also the stream the rolling-hash
chunker scans, so the same serialization decides both node content and
node boundaries — the heart of structural invariance.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.chunk import Chunk, ChunkType, Reader, Uid, Writer
from repro.errors import ChunkEncodingError


class LeafEntry(NamedTuple):
    """A record stored in a data chunk."""

    key: bytes
    value: bytes


class IndexEntry(NamedTuple):
    """A child reference stored in an index chunk."""

    split_key: bytes  # largest key in the child's subtree
    child: Uid
    count: int  # records in the child's subtree


def encode_leaf_entry(entry: LeafEntry) -> bytes:
    """Serialize one record (this is what the leaf-level chunker scans)."""
    return Writer().blob(entry.key).blob(entry.value).getvalue()


def encode_index_entry(entry: IndexEntry) -> bytes:
    """Serialize one child reference (scanned by the index-level chunker)."""
    return (
        Writer()
        .blob(entry.split_key)
        .uid(entry.child)
        .uvarint(entry.count)
        .getvalue()
    )


class LeafNode:
    """A data chunk: sorted run of records."""

    __slots__ = ("entries", "_chunk")

    def __init__(self, entries: List[LeafEntry]) -> None:
        self.entries = entries
        self._chunk: Optional[Chunk] = None

    def to_chunk(self) -> Chunk:
        """Encode (cached) into an immutable LEAF chunk."""
        if self._chunk is None:
            writer = Writer().uvarint(len(self.entries))
            for entry in self.entries:
                writer.raw(encode_leaf_entry(entry))
            self._chunk = Chunk(ChunkType.LEAF, writer.getvalue())
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "LeafNode":
        """Decode a LEAF chunk."""
        if chunk.type != ChunkType.LEAF:
            raise ChunkEncodingError(f"expected LEAF chunk, got {chunk.type.name}")
        reader = Reader(chunk.data)
        count = reader.uvarint()
        entries = [LeafEntry(reader.blob(), reader.blob()) for _ in range(count)]
        reader.expect_end()
        node = cls(entries)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        """Content address of the encoded node."""
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        """Number of records in this leaf."""
        return len(self.entries)

    def split_key(self) -> bytes:
        """Largest key (the entry keys are sorted)."""
        return self.entries[-1].key if self.entries else b""

    def descriptor(self) -> IndexEntry:
        """The index entry a parent would hold for this node."""
        return IndexEntry(self.split_key(), self.uid, self.count)

    def entry_bytes(self) -> List[bytes]:
        """Per-entry serializations, in order (chunker input)."""
        return [encode_leaf_entry(entry) for entry in self.entries]

    def tail_bytes(self, window: int) -> bytes:
        """Last ``window`` bytes of the entry stream (window seeding)."""
        tail = b""
        for entry in reversed(self.entries):
            tail = encode_leaf_entry(entry) + tail
            if len(tail) >= window:
                break
        return tail[-window:]

    def find(self, key: bytes) -> Optional[bytes]:
        """Binary-search the run for ``key``; return its value or None."""
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.entries) and self.entries[lo].key == key:
            return self.entries[lo].value
        return None

    def __repr__(self) -> str:
        return f"LeafNode({self.count} entries, {self.uid.short()}…)"


class IndexNode:
    """An index chunk: one entry per child node."""

    __slots__ = ("level", "entries", "_chunk")

    def __init__(self, level: int, entries: List[IndexEntry]) -> None:
        if level < 1:
            raise ValueError("index nodes live at level >= 1")
        self.level = level
        self.entries = entries
        self._chunk: Optional[Chunk] = None

    def to_chunk(self) -> Chunk:
        """Encode (cached) into an immutable INDEX chunk."""
        if self._chunk is None:
            writer = Writer().uvarint(self.level).uvarint(len(self.entries))
            for entry in self.entries:
                writer.raw(encode_index_entry(entry))
            self._chunk = Chunk(ChunkType.INDEX, writer.getvalue())
        return self._chunk

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "IndexNode":
        """Decode an INDEX chunk."""
        if chunk.type != ChunkType.INDEX:
            raise ChunkEncodingError(f"expected INDEX chunk, got {chunk.type.name}")
        reader = Reader(chunk.data)
        level = reader.uvarint()
        count = reader.uvarint()
        entries = [
            IndexEntry(reader.blob(), reader.uid(), reader.uvarint())
            for _ in range(count)
        ]
        reader.expect_end()
        node = cls(level, entries)
        node._chunk = chunk
        return node

    @property
    def uid(self) -> Uid:
        """Content address of the encoded node."""
        return self.to_chunk().uid

    @property
    def count(self) -> int:
        """Total records beneath this node."""
        return sum(entry.count for entry in self.entries)

    def split_key(self) -> bytes:
        """Largest key beneath this node."""
        return self.entries[-1].split_key if self.entries else b""

    def descriptor(self) -> IndexEntry:
        """The index entry a parent would hold for this node."""
        return IndexEntry(self.split_key(), self.uid, self.count)

    def entry_bytes(self) -> List[bytes]:
        """Per-entry serializations, in order (chunker input)."""
        return [encode_index_entry(entry) for entry in self.entries]

    def tail_bytes(self, window: int) -> bytes:
        """Last ``window`` bytes of the entry stream (window seeding)."""
        tail = b""
        for entry in reversed(self.entries):
            tail = encode_index_entry(entry) + tail
            if len(tail) >= window:
                break
        return tail[-window:]

    def child_for(self, key: bytes) -> int:
        """Index of the child whose subtree may contain ``key``.

        Children are ordered and ``split_key`` is each child's maximum, so
        the right child is the first with ``split_key >= key``; keys past
        the end route to the last child (insertion point).
        """
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].split_key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.entries):
            lo -= 1
        return lo

    def __repr__(self) -> str:
        return (
            f"IndexNode(level={self.level}, {len(self.entries)} children, "
            f"{self.uid.short()}…)"
        )


def load_node(chunk: Chunk):
    """Decode either node kind from a chunk."""
    if chunk.type == ChunkType.LEAF:
        return LeafNode.from_chunk(chunk)
    if chunk.type == ChunkType.INDEX:
        return IndexNode.from_chunk(chunk)
    raise ChunkEncodingError(f"not a POS-Tree node chunk: {chunk.type.name}")


#: The canonical empty tree: a leaf with no entries.
def empty_leaf() -> LeafNode:
    """The canonical empty-tree root."""
    return LeafNode([])


def node_level(node) -> int:
    """Level of a decoded node (leaves are level 0)."""
    return node.level if isinstance(node, IndexNode) else 0


Entry = Tuple[bytes, bytes]
