"""POS-Tree — the Pattern-Oriented-Split Tree (paper §II-A).

A probabilistically balanced search tree that is simultaneously a B+-tree
(split keys guide lookups) and a Merkle tree (child pointers are SHA-256
uids), with node boundaries chosen by content-defined slicing so the
structure is *invariant*: it depends only on the record set, never on the
order of edits.  This gives the three SIRI properties of Definition 1 and
powers page-level deduplication, O(D log N) diff, and sub-tree-reusing
three-way merge.

Public surface:

- :class:`~repro.postree.tree.PosTree` — ordered key/value tree.
- :class:`~repro.postree.listtree.PositionalTree` — ordered sequence tree
  (lists, blobs).
- :func:`~repro.postree.diff.diff_trees` / :class:`~repro.postree.diff.TreeDiff`
- :func:`~repro.postree.merge.three_way_merge` /
  :class:`~repro.postree.merge.MergeStats`
- :mod:`~repro.postree.siri` — checkers for the SIRI properties.
"""

from repro.postree.config import TreeConfig
from repro.postree.diff import TreeDiff, diff_trees
from repro.postree.listtree import PositionalTree
from repro.postree.merge import MergeResult, MergeStats, three_way_merge
from repro.postree.tree import PosTree

__all__ = [
    "TreeConfig",
    "TreeDiff",
    "diff_trees",
    "PositionalTree",
    "MergeResult",
    "MergeStats",
    "three_way_merge",
    "PosTree",
]
