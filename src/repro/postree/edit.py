"""Incremental POS-Tree editing.

Applying a batch of upserts/deletes does **not** rebuild the tree.  At the
leaf level we re-run the content-defined chunker only from the first
affected leaf, and stop as soon as the emitted boundaries *resynchronize*
with the old ones — from that point every following page is reused.  The
replaced page range then propagates to the parent level, where the same
splice repeats on index entries, up to the root.  Total cost is
O((D + resync window) · log N) pages, independent of tree size.

Structural invariance (SIRI Property 1) makes this safe to verify: the
property tests assert that ``apply_edits`` yields a byte-identical root to
bulk-building the edited record set from scratch.

Limitation (documented, deliberate): a batch whose keys span a wide range
re-chunks everything between the smallest and largest edited key in one
splice.  Callers with scattered edits can apply them as several batches;
content addressing guarantees the same final tree either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.chunk import Uid
from repro.postree.builder import build_index_levels, bulk_build
from repro.postree.node import (
    IndexEntry,
    IndexNode,
    LeafEntry,
    LeafNode,
    empty_leaf,
    encode_index_entry,
    encode_leaf_entry,
)
from repro.rolling.fast import AnyEntryChunker, make_entry_chunker

if TYPE_CHECKING:
    from repro.postree.tree import PosTree

# A path records, from the root downward, (index node, child position)
# frames leading to — but not including — a node of interest.
PathFrame = Tuple[IndexNode, int]
Path = List[PathFrame]


class _Walker:
    """Left-to-right iterator over the nodes of one tree level.

    Tracks the parent path of the current node so the editor knows which
    index entries a consumed node occupies.
    """

    __slots__ = ("_tree", "_stack", "current")

    def __init__(
        self, tree: PosTree, stack: Path, current: Union[LeafNode, IndexNode]
    ) -> None:
        self._tree = tree
        self._stack = stack
        self.current = current

    @classmethod
    def at_key(cls, tree: PosTree, level: int, key: bytes) -> "_Walker":
        """Descend from the root toward ``key``, stopping at ``level``."""
        node = tree.root_node()
        stack: Path = []
        while isinstance(node, IndexNode) and node.level > level:
            pos = node.child_for(key)
            stack.append((node, pos))
            node = tree.node(node.entries[pos].child)
        return cls(tree, stack, node)

    @classmethod
    def from_path(cls, tree: PosTree, path: Path) -> "_Walker":
        """Position on the node addressed by an explicit parent path."""
        if not path:
            return cls(tree, [], tree.root_node())
        parent, pos = path[-1]
        node = tree.node(parent.entries[pos].child)
        return cls(tree, list(path), node)

    def path(self) -> Path:
        """Copy of the current node's parent path."""
        return list(self._stack)

    def position_vector(self) -> Tuple[int, ...]:
        """Positions along the path (for ordering comparisons)."""
        return tuple(pos for _, pos in self._stack)

    def advance(self) -> bool:
        """Move to the next node at this level; False at the level's end."""
        level = self.current.level if isinstance(self.current, IndexNode) else 0
        while self._stack:
            parent, pos = self._stack.pop()
            pos += 1
            if pos < len(parent.entries):
                self._stack.append((parent, pos))
                node = self._tree.node(parent.entries[pos].child)
                while isinstance(node, IndexNode) and node.level > level:
                    self._stack.append((node, 0))
                    node = self._tree.node(node.entries[0].child)
                self.current = node
                return True
        self.current = None
        return False

    def prev_tail(self, window: int) -> bytes:
        """Entry-stream bytes preceding the current node (window seeding)."""
        level = self.current.level if isinstance(self.current, IndexNode) else 0
        for depth in range(len(self._stack) - 1, -1, -1):
            parent, pos = self._stack[depth]
            if pos > 0:
                node = self._tree.node(parent.entries[pos - 1].child)
                while isinstance(node, IndexNode) and node.level > level:
                    node = self._tree.node(node.entries[-1].child)
                return node.tail_bytes(window)
        return b""


#: One unit of splice work: ``(entry, encoded, edited)`` — or None, an
#: edit-point marker (a deletion: the stream diverges with nothing emitted).
_EmitItem = Optional[Tuple[object, bytes, bool]]


class _Emitter:
    """Shared boundary/buffer state machine for one level's splice.

    Entries arrive in *batches* (typically one old node's worth) so the
    chunker can hash each run with one vectorized pass instead of an
    interpreted loop per byte — the same batching contract the bulk
    builder uses, keeping editor and builder boundaries bit-identical.
    """

    __slots__ = ("_tree", "_chunker", "_level", "buffer", "descriptors", "bytes_since_edit")

    def __init__(self, tree: PosTree, chunker: AnyEntryChunker, level: int) -> None:
        self._tree = tree
        self._chunker = chunker
        self._level = level
        self.buffer: List = []
        self.descriptors: List[IndexEntry] = []
        self.bytes_since_edit: Optional[int] = None  # None: edit not reached

    def emit_batch(self, items: Sequence[_EmitItem]) -> None:
        """Feed a batch of entries, flushing nodes on chunker boundaries."""
        run: List[Tuple[object, bytes, bool]] = []
        for item in items:
            if item is None:
                self._emit_run(run)
                run = []
                self.bytes_since_edit = 0
            else:
                run.append(item)
        self._emit_run(run)

    def _emit_run(self, run: List[Tuple[object, bytes, bool]]) -> None:
        if not run:
            return
        boundaries = self._chunker.push_many([encoded for _, encoded, _ in run])
        next_boundary = 0
        for index, (entry, encoded, edited) in enumerate(run):
            self.buffer.append(entry)
            if edited:
                self.bytes_since_edit = 0
            elif self.bytes_since_edit is not None:
                self.bytes_since_edit += len(encoded)
            if next_boundary < len(boundaries) and boundaries[next_boundary] == index:
                next_boundary += 1
                self.flush()

    def mark_edit_point(self) -> None:
        """Note that the stream diverges here even with nothing emitted."""
        self.bytes_since_edit = 0

    def flush(self) -> None:
        """Materialize the buffered entries as one node."""
        if not self.buffer:
            return
        if self._level == 0:
            node = LeafNode(self.buffer)
        else:
            node = IndexNode(self._level, self.buffer)
        self._tree.store.put(node.to_chunk())
        self.descriptors.append(node.descriptor())
        self.buffer = []

    def can_resync(self, window: int) -> bool:
        """True when emitted boundaries have realigned with old ones."""
        return (
            not self.buffer
            and self.bytes_since_edit is not None
            and self.bytes_since_edit >= window
        )


def _splice_leaves(
    tree: PosTree,
    ops: Sequence[Tuple[bytes, Optional[bytes]]],
) -> Tuple[List[IndexEntry], Path, Path]:
    """Re-chunk the leaf level across the edited key range.

    ``ops`` is sorted by key; value None means delete.  Returns the new
    leaves' descriptors plus the parent paths of the first and last
    *consumed* (replaced) old leaves.
    """
    config = tree.config.leaf
    walker = _Walker.at_key(tree, 0, ops[0][0])
    chunker = make_entry_chunker(config)
    tail = walker.prev_tail(config.window)
    if tail:
        chunker.seed(tail)
    emitter = _Emitter(tree, chunker, level=0)

    start_path = walker.path()
    last_path = walker.path()
    op_index = 0

    def op_item(key: bytes, value: Optional[bytes]) -> _EmitItem:
        if value is None:
            return None  # deletion: edit-point marker, nothing emitted
        entry = LeafEntry(key, value)
        return (entry, encode_leaf_entry(entry), True)

    while True:
        leaf: LeafNode = walker.current
        if op_index >= len(ops) and emitter.can_resync(config.window):
            break  # every remaining leaf is reused verbatim
        last_path = walker.path()
        # Merge this leaf's entries with the pending ops into one batch
        # (the chunker hashes it in a single vectorized pass).
        batch: List[_EmitItem] = []
        for entry in leaf.entries:
            while op_index < len(ops) and ops[op_index][0] < entry.key:
                batch.append(op_item(*ops[op_index]))
                op_index += 1
            if op_index < len(ops) and ops[op_index][0] == entry.key:
                batch.append(op_item(*ops[op_index]))
                op_index += 1
            else:
                batch.append((entry, encode_leaf_entry(entry), False))
        emitter.emit_batch(batch)
        if not walker.advance():
            # End of the tree: any remaining ops append past the max key.
            emitter.emit_batch(
                [op_item(*ops[index]) for index in range(op_index, len(ops))]
            )
            op_index = len(ops)
            emitter.flush()
            break
    return emitter.descriptors, start_path, last_path


def _splice_index_level(
    tree: PosTree,
    level: int,
    start_path: Path,
    end_path: Path,
    replacements: List[IndexEntry],
) -> Tuple[List[IndexEntry], Path, Path]:
    """Replace an entry range at an index level and re-chunk it.

    The range runs from entry ``start_path[-1].pos`` of the node addressed
    by ``start_path`` through entry ``end_path[-1].pos`` of the node
    addressed by ``end_path`` (inclusive); ``replacements`` are the new
    child descriptors.  Same return convention as :func:`_splice_leaves`.
    """
    config = tree.config.index
    start_parent_path = start_path[:-1]
    start_pos = start_path[-1][1]
    end_vector = tuple(pos for _, pos in end_path[:-1])
    end_pos = end_path[-1][1]

    walker = _Walker.from_path(tree, start_parent_path)
    chunker = make_entry_chunker(config)
    tail = walker.prev_tail(config.window)
    if tail:
        chunker.seed(tail)
    emitter = _Emitter(tree, chunker, level=level)

    new_start_path = walker.path()
    last_path = walker.path()

    # 1. Pre-edit entries of the start node (re-chunked but unchanged).
    start_node: IndexNode = walker.current
    emitter.emit_batch(
        [(entry, encode_index_entry(entry), False)
         for entry in start_node.entries[:start_pos]]
    )

    # 2. The replacement range.
    emitter.mark_edit_point()
    emitter.emit_batch(
        [(entry, encode_index_entry(entry), True) for entry in replacements]
    )

    # 3. Skip wholly-replaced nodes, then the end node's surviving tail.
    while walker.position_vector() != end_vector:
        if not walker.advance():
            raise AssertionError("end node not found while splicing index level")
        last_path = walker.path()
    end_node: IndexNode = walker.current
    emitter.emit_batch(
        [(entry, encode_index_entry(entry), False)
         for entry in end_node.entries[end_pos + 1 :]]
    )

    # 4. Subsequent nodes until boundaries resynchronize.
    while True:
        if not walker.advance():
            emitter.flush()
            break
        if emitter.can_resync(config.window):
            break
        last_path = walker.path()
        emitter.emit_batch(
            [(entry, encode_index_entry(entry), False)
             for entry in walker.current.entries]
        )

    return emitter.descriptors, new_start_path, last_path


def _covers_whole_level(start_path: Path, end_path: Path) -> bool:
    """True when the consumed node range spans its entire tree level."""
    leftmost = all(pos == 0 for _, pos in start_path)
    rightmost = all(pos == len(node.entries) - 1 for node, pos in end_path)
    return leftmost and rightmost


def apply_edits(
    tree: PosTree,
    puts: Dict[bytes, bytes],
    deletes: Set[bytes],
) -> Uid:
    """Apply a batch of edits; return the new root uid.

    Keys present in both ``puts`` and ``deletes`` are treated as puts.
    """
    ops: List[Tuple[bytes, Optional[bytes]]] = []
    for key in deletes:
        if key not in puts:
            ops.append((key, None))
    for key, value in puts.items():
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("POS-Tree keys and values must be bytes")
        ops.append((key, value))
    if not ops:
        return tree.root
    ops.sort(key=lambda op: op[0])

    root_node = tree.root_node()
    if isinstance(root_node, LeafNode):
        # Height-0 tree: merge directly and bulk build (already O(node)).
        merged: Dict[bytes, bytes] = {e.key: e.value for e in root_node.entries}
        for key, value in ops:
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        entries = [LeafEntry(k, merged[k]) for k in sorted(merged)]
        return bulk_build(tree.store, entries, tree.config)

    replacements, start_path, end_path = _splice_leaves(tree, ops)
    level_below = 0
    while len(start_path) > 1:
        if _covers_whole_level(start_path, end_path):
            # Every node of the level below was consumed: the tree above
            # no longer constrains anything — rebuild it from scratch so
            # the result matches bulk semantics (in particular, a single
            # surviving node becomes the root instead of being wrapped).
            if not replacements:
                node = empty_leaf()
                tree.store.put(node.to_chunk())
                return node.uid
            return build_index_levels(
                tree.store, replacements, tree.config, first_level=level_below + 1
            )
        level = start_path[-1][0].level
        replacements, start_path, end_path = _splice_index_level(
            tree, level, start_path, end_path, replacements
        )
        level_below = level

    # The paths now address children of the root: final assembly.
    root: IndexNode = start_path[0][0]
    start_pos = start_path[0][1]
    end_pos = end_path[0][1]
    entries = root.entries[:start_pos] + replacements + root.entries[end_pos + 1 :]
    if not entries:
        node = empty_leaf()
        tree.store.put(node.to_chunk())
        return node.uid
    return build_index_levels(tree.store, entries, tree.config, first_level=root.level)
