"""Bulk construction of POS-Trees.

The builder is the *reference semantics* of the structure: a POS-Tree is
defined as "what :func:`bulk_build` produces for this record set under
this config."  The incremental editor must reproduce it bit-for-bit; the
property tests compare the two on random workloads.

Construction follows §II-A: "the entire list of data entries is treated as
a byte sequence, and the pattern detection process scans it from the
beginning.  When a pattern occurs, a node is created from recently scanned
bytes" — then the emitted nodes' index entries form the next level's entry
sequence, recursively, until a single node remains.

Each level runs in three vector-friendly steps: encode every entry once,
compute the node spans with the fast chunker (numpy when available,
byte-identical pure fallback otherwise — see :mod:`repro.rolling.fast`),
then materialize nodes from span slices, reusing the encodings for the
chunk payloads.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.chunk import Uid
from repro.errors import KeyOrderError
from repro.postree.config import DEFAULT_TREE_CONFIG, TreeConfig
from repro.postree.node import (
    IndexEntry,
    IndexNode,
    LeafEntry,
    LeafNode,
    empty_leaf,
    encode_index_entries,
    encode_leaf_entries,
)
from repro.rolling.fast import fast_entry_spans
from repro.store.base import ChunkStore


def build_leaf_level(
    store: ChunkStore,
    entries: Iterable[LeafEntry],
    config: TreeConfig,
    check_order: bool = True,
) -> List[IndexEntry]:
    """Chunk sorted records into leaf nodes; return their descriptors."""
    if not isinstance(entries, list):
        entries = list(entries)
    if check_order:
        previous_key = None
        for entry in entries:
            if previous_key is not None and entry.key <= previous_key:
                raise KeyOrderError(
                    f"keys must be strictly increasing: {previous_key!r} "
                    f"then {entry.key!r}"
                )
            previous_key = entry.key
    encoded = encode_leaf_entries(entries)
    descriptors: List[IndexEntry] = []
    for start, end in fast_entry_spans(encoded, config.leaf):
        node = LeafNode(entries[start:end], encoded=encoded[start:end])
        store.put(node.to_chunk())
        descriptors.append(node.descriptor())
    return descriptors


def build_index_levels(
    store: ChunkStore,
    descriptors: List[IndexEntry],
    config: TreeConfig,
    first_level: int = 1,
) -> Uid:
    """Stack index levels over ``descriptors`` until a single root remains.

    ``descriptors`` describe the nodes of level ``first_level - 1``; if
    there is exactly one, it *is* the root (no index node is built over a
    single child — bulk build and editor must agree on this).
    """
    level = first_level
    while len(descriptors) > 1:
        encoded = encode_index_entries(descriptors)
        next_descriptors: List[IndexEntry] = []
        for start, end in fast_entry_spans(encoded, config.index):
            node = IndexNode(level, descriptors[start:end], encoded=encoded[start:end])
            store.put(node.to_chunk())
            next_descriptors.append(node.descriptor())
        descriptors = next_descriptors
        level += 1
    return descriptors[0].child


def bulk_build(
    store: ChunkStore,
    entries: Iterable[LeafEntry],
    config: TreeConfig = DEFAULT_TREE_CONFIG,
    check_order: bool = True,
) -> Uid:
    """Build a POS-Tree over sorted, unique-keyed records; return its root.

    An empty record set yields the canonical empty leaf.
    """
    descriptors = build_leaf_level(store, entries, config, check_order=check_order)
    if not descriptors:
        node = empty_leaf()
        store.put(node.to_chunk())
        return node.uid
    return build_index_levels(store, descriptors, config)
