"""Fast differential queries between POS-Tree instances (paper §II-B).

"Because two sub-trees with identical content must have the same root id,
the Diff operation can be performed recursively by following the sub-trees
with different ids, and pruning ones with the same ids.  The complexity of
Diff is therefore O(D·log N)."

The implementation walks both trees with *lazy* entry cursors: a cursor
only loads a child node when the walk actually needs to look inside it.
Whenever both cursors sit at the start of sub-trees with equal uids — at
any level, even different levels on the two sides — the whole sub-tree is
skipped without ever being fetched from storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.chunk import Uid
from repro.postree.node import IndexNode, LeafEntry, LeafNode

if TYPE_CHECKING:
    from repro.postree.tree import PosTree


class TreeDiff:
    """Key-level differences from tree A to tree B."""

    __slots__ = ("added", "removed", "changed", "subtrees_pruned", "nodes_loaded")

    def __init__(self) -> None:
        #: Keys present only in B (key → B value).
        self.added: Dict[bytes, bytes] = {}
        #: Keys present only in A (key → A value).
        self.removed: Dict[bytes, bytes] = {}
        #: Keys in both with different values (key → (A value, B value)).
        self.changed: Dict[bytes, Tuple[bytes, bytes]] = {}
        #: Sub-trees skipped because their uids matched (the pruning win).
        self.subtrees_pruned = 0
        #: Node chunks actually loaded during the walk (the measured cost).
        self.nodes_loaded = 0

    @property
    def edit_count(self) -> int:
        """D: the number of differing keys."""
        return len(self.added) + len(self.removed) + len(self.changed)

    def is_empty(self) -> bool:
        """True when the trees hold identical record sets."""
        return self.edit_count == 0

    def as_edits(self) -> Tuple[Dict[bytes, bytes], List[bytes]]:
        """Express the diff as (puts, deletes) that turn A into B."""
        puts: Dict[bytes, bytes] = dict(self.added)
        for key, (_, b_value) in self.changed.items():
            puts[key] = b_value
        return puts, list(self.removed)


class _LazyCursor:
    """Ordered record walk that loads nodes only when forced to look inside.

    The frame stack runs root→downward; the deepest frame is the
    *frontier*.  If the frontier node is an index node, its current child
    has not been loaded yet — :meth:`pending` exposes that child's uid so
    the diff can prune it against the other side before fetching.
    """

    __slots__ = ("_tree", "_frames", "done", "loads")

    def __init__(self, tree: PosTree) -> None:
        self._tree = tree
        self._frames: List[Tuple[object, int]] = []
        self.done = False
        self.loads = 0
        root = self._load(tree.root)
        if isinstance(root, LeafNode) and not root.entries:
            self.done = True
        elif isinstance(root, IndexNode) and not root.entries:
            self.done = True
        else:
            self._frames.append((root, 0))

    def _load(self, uid: Uid) -> Union[LeafNode, IndexNode]:
        self.loads += 1
        return self._tree.node(uid)

    # -- frontier inspection ---------------------------------------------------

    def leaf_ready(self) -> bool:
        """True when the frontier points directly at a record."""
        return isinstance(self._frames[-1][0], LeafNode)

    def pending(self) -> Tuple[Uid, int]:
        """(uid, level) of the unloaded child at the frontier."""
        node, pos = self._frames[-1]
        return node.entries[pos].child, node.level - 1

    def expand(self) -> None:
        """Load the frontier child and push it (one level of descent)."""
        node, pos = self._frames[-1]
        child = self._load(node.entries[pos].child)
        self._frames.append((child, 0))

    def entry(self) -> LeafEntry:
        """The current record (frontier must be leaf-ready)."""
        leaf, pos = self._frames[-1]
        return leaf.entries[pos]

    def aligned_subtrees(self) -> Dict[Uid, int]:
        """Sub-trees whose first record is the current position.

        Maps sub-tree uid → depth of the frame holding it (so skipping is
        "advance that frame").  Topmost candidates iterate first.  The
        frontier child itself is always aligned; higher children require
        every deeper frame to sit at position 0.
        """
        out: Dict[Uid, int] = {}
        frames = self._frames
        # suffix_zero[d] := frames[d:] are all at position 0.
        zero = True
        suffix_zero = [False] * (len(frames) + 1)
        suffix_zero[len(frames)] = True
        for depth in range(len(frames) - 1, -1, -1):
            if frames[depth][1] != 0:
                zero = False
            suffix_zero[depth] = zero
        for depth, (node, pos) in enumerate(frames):
            if isinstance(node, LeafNode):
                break
            if suffix_zero[depth + 1]:
                out[node.entries[pos].child] = depth
        return out

    # -- movement ---------------------------------------------------------------

    def _retreat(self) -> None:
        """Pop exhausted frames; leave the cursor at an unvisited child."""
        while self._frames:
            node, pos = self._frames[-1]
            if pos < len(node.entries):
                return
            self._frames.pop()
            if self._frames:
                parent, ppos = self._frames[-1]
                self._frames[-1] = (parent, ppos + 1)
        self.done = True

    def advance(self) -> None:
        """Step past the current record (frontier must be leaf-ready)."""
        leaf, pos = self._frames[-1]
        self._frames[-1] = (leaf, pos + 1)
        self._retreat()

    def skip_subtree(self, depth: int) -> None:
        """Jump past the aligned sub-tree held by frame ``depth``."""
        del self._frames[depth + 1 :]
        node, pos = self._frames[-1]
        self._frames[-1] = (node, pos + 1)
        self._retreat()


def diff_trees(tree_a: PosTree, tree_b: PosTree) -> TreeDiff:
    """Compute the key-level diff from ``tree_a`` to ``tree_b``.

    Cost is O(D·log N) node loads: identical sub-trees are pruned by uid
    without being fetched.
    """
    diff = TreeDiff()
    if tree_a.root == tree_b.root:
        diff.subtrees_pruned = 1
        return diff

    cursor_a = _LazyCursor(tree_a)
    cursor_b = _LazyCursor(tree_b)

    while not cursor_a.done and not cursor_b.done:
        subs_a = cursor_a.aligned_subtrees()
        subs_b = cursor_b.aligned_subtrees()
        common = None
        for uid, depth_a in subs_a.items():  # topmost first
            if uid in subs_b:
                common = (depth_a, subs_b[uid])
                break
        if common is not None:
            cursor_a.skip_subtree(common[0])
            cursor_b.skip_subtree(common[1])
            diff.subtrees_pruned += 1
            continue
        # No prune possible at the current frontiers: descend one level on
        # the taller side (or both), re-checking for prunes as new child
        # uids surface.
        ready_a = cursor_a.leaf_ready()
        ready_b = cursor_b.leaf_ready()
        if not ready_a or not ready_b:
            if not ready_a and not ready_b:
                level_a = cursor_a.pending()[1]
                level_b = cursor_b.pending()[1]
                if level_a >= level_b:
                    cursor_a.expand()
                if level_b >= level_a:
                    cursor_b.expand()
            elif not ready_a:
                cursor_a.expand()
            else:
                cursor_b.expand()
            continue
        entry_a = cursor_a.entry()
        entry_b = cursor_b.entry()
        if entry_a.key < entry_b.key:
            diff.removed[entry_a.key] = entry_a.value
            cursor_a.advance()
        elif entry_a.key > entry_b.key:
            diff.added[entry_b.key] = entry_b.value
            cursor_b.advance()
        else:
            if entry_a.value != entry_b.value:
                diff.changed[entry_a.key] = (entry_a.value, entry_b.value)
            cursor_a.advance()
            cursor_b.advance()

    while not cursor_a.done:
        if not cursor_a.leaf_ready():
            cursor_a.expand()
            continue
        entry_a = cursor_a.entry()
        diff.removed[entry_a.key] = entry_a.value
        cursor_a.advance()
    while not cursor_b.done:
        if not cursor_b.leaf_ready():
            cursor_b.expand()
            continue
        entry_b = cursor_b.entry()
        diff.added[entry_b.key] = entry_b.value
        cursor_b.advance()

    diff.nodes_loaded = cursor_a.loads + cursor_b.loads
    return diff


def diff_keys(tree_a: PosTree, tree_b: PosTree) -> List[bytes]:
    """Just the differing keys, sorted (convenience for renderers)."""
    diff = diff_trees(tree_a, tree_b)
    keys = set(diff.added) | set(diff.removed) | set(diff.changed)
    return sorted(keys)
