"""Boundary detection over rolling-hash streams.

A *pattern* occurs at a byte position when the rolling hash of the k-byte
window ending there satisfies ``Φ mod 2^q == 0`` (paper §II-A).  The
detector adds the two standard guards from content-defined-chunking
practice: a minimum chunk size (patterns inside the first ``min_size``
bytes after a boundary are ignored) and a maximum size (a boundary is
forced), bounding degenerate inputs without breaking resynchronization.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.rolling.hashes import CyclicPolynomialHash, RabinKarpHash, RollingHash


def make_hash(algorithm: str, window: int, bits: int, seed: bytes) -> RollingHash:
    """Instantiate a rolling hash by name (``cyclic`` or ``rabin-karp``)."""
    if algorithm == "cyclic":
        return CyclicPolynomialHash(window=window, bits=bits, seed=seed)
    if algorithm == "rabin-karp":
        return RabinKarpHash(window=window, bits=bits)
    raise ValueError(f"unknown rolling hash algorithm: {algorithm!r}")


class PatternDetector:
    """Streaming pattern detector with min/max-size clamps.

    Feed bytes with :meth:`step`; it returns True when the byte closes a
    chunk (pattern hit past ``min_size``, or ``max_size`` reached).  The
    rolling window is continuous across boundaries — only the size counter
    resets — so boundary positions resynchronize shortly after any edit,
    which is what makes page-level deduplication effective.
    """

    __slots__ = (
        "pattern_mask",
        "min_size",
        "max_size",
        "_hash",
        "_window",
        "_backlog",
        "_since_boundary",
    )

    def __init__(
        self,
        hash_: RollingHash,
        pattern_bits: int,
        min_size: int = 1,
        max_size: Optional[int] = None,
    ) -> None:
        if pattern_bits < 1:
            raise ValueError("pattern_bits must be >= 1")
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        if max_size is not None and max_size < min_size:
            raise ValueError("max_size must be >= min_size")
        self.pattern_mask = (1 << pattern_bits) - 1
        self.min_size = min_size
        self.max_size = max_size
        self._hash = hash_
        self._window = hash_.window
        self._backlog = bytearray(self._window)  # zero pre-fill
        self._since_boundary = 0

    def seed(self, preceding: bytes) -> None:
        """Prime the window with bytes that precede the stream.

        Used when re-chunking from the middle of an entry sequence during
        incremental POS-Tree edits: the window state must match what a
        full build would have had at that position.
        """
        for byte in preceding:
            self._slide(byte)
        self._since_boundary = 0

    def _slide(self, byte: int) -> int:
        backlog = self._backlog
        outgoing = backlog[0]
        del backlog[0]
        backlog.append(byte)
        return self._hash.update(byte, outgoing)

    def step(self, byte: int) -> bool:
        """Consume one byte; return True if it closes a chunk."""
        value = self._slide(byte)
        self._since_boundary += 1
        if self._since_boundary < self.min_size:
            return False
        if value & self.pattern_mask == 0:
            self._since_boundary = 0
            return True
        if self.max_size is not None and self._since_boundary >= self.max_size:
            self._since_boundary = 0
            return True
        return False

    def mark_boundary(self) -> None:
        """Externally reset the size counter (entry-extended boundaries)."""
        self._since_boundary = 0

    def scan(self, data: bytes) -> Iterator[int]:
        """Yield 0-based offsets of bytes that close chunks in ``data``."""
        for index, byte in enumerate(data):
            if self.step(byte):
                yield index

    def feed_all(self, data: Iterable[int]) -> None:
        """Consume bytes without reporting boundaries."""
        for byte in data:
            self._slide(byte)
