"""Content-defined chunkers for byte streams and entry streams.

Two flavours, both driven by the same pattern rule ``Φ mod 2^q == 0``:

- :func:`chunk_bytes` slices a raw byte sequence (used for blob leaves);
  a chunk ends exactly at the byte where the pattern fires.
- :class:`EntryChunker` groups a sequence of *entries* (serialized records
  or index entries) into nodes; per the paper, "if a pattern occurs in the
  middle of an entry, the page boundary is extended to cover the whole
  entry, so that no entries are stored across multiple pages."

Both keep the rolling window continuous across boundaries and support
seeding the window with preceding bytes, which lets the POS-Tree editor
re-chunk from the middle of a level and detect boundary resynchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.rolling.detector import make_hash
from repro.rolling.hashes import CyclicPolynomialHash, RollingHash


@dataclass(frozen=True)
class ChunkerConfig:
    """Parameters of the content-defined slicing.

    ``pattern_bits`` is the paper's *q*: a boundary fires with probability
    2^-q per byte, giving an expected chunk size of 2^q bytes (before
    min/max clamping).  ``window`` is the paper's *k*.
    """

    window: int = 16
    pattern_bits: int = 12
    min_size: int = 256
    max_size: int = 65536
    hash_bits: int = 31
    seed: bytes = b"forkbase-gamma"
    algorithm: str = "cyclic"
    #: Minimum entries per node for entry-stream chunking.  Index levels
    #: MUST use >= 2: with small pattern_bits a pattern can fire inside
    #: almost every entry, producing single-entry nodes at every level and
    #: a tree that never converges to a root.  >= 2 guarantees each index
    #: level at least halves.  Ignored by byte-stream chunking.
    min_entries: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.pattern_bits < 1:
            raise ValueError("pattern_bits must be >= 1")
        if self.min_size < 1:
            raise ValueError("min_size must be >= 1")
        if self.max_size < self.min_size:
            raise ValueError("max_size must be >= min_size")
        if self.hash_bits < self.pattern_bits:
            raise ValueError("hash_bits must be >= pattern_bits")
        if self.min_entries < 1:
            raise ValueError("min_entries must be >= 1")

    def make_hash(self) -> RollingHash:
        """Build the configured rolling hash, freshly reset."""
        return make_hash(self.algorithm, self.window, self.hash_bits, self.seed)

    def with_target(self, target_size: int) -> "ChunkerConfig":
        """Derive a config whose expected chunk size is ``target_size``.

        Sets q = log2(target), min = target/4, max = 8*target — the ratios
        used throughout the benchmarks' parameter sweeps.
        """
        if target_size < 4:
            raise ValueError("target_size too small")
        bits = max(1, target_size.bit_length() - 1)
        return replace(
            self,
            pattern_bits=bits,
            min_size=max(1, target_size // 4),
            max_size=target_size * 8,
        )


#: Default slicing for blob payloads (expected 4 KiB chunks).
BLOB_CONFIG = ChunkerConfig(pattern_bits=12, min_size=1024, max_size=65536)

#: Default slicing for POS-Tree entry streams (expected ~1 KiB nodes, so
#: index fan-out stays healthy for small synthetic datasets too).
ENTRY_CONFIG = ChunkerConfig(pattern_bits=10, min_size=64, max_size=16384)


def iter_chunk_spans(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, end)`` spans slicing ``data`` into chunks.

    ``preceding`` primes the rolling window with the bytes immediately
    before ``data`` (the stream is assumed to start at a chunk boundary).
    """
    if not data:
        return
    hasher = config.make_hash()
    window = config.window
    if preceding:
        hasher.feed(preceding[-window:])
    pattern_mask = (1 << config.pattern_bits) - 1
    min_size = config.min_size
    max_size = config.max_size

    if isinstance(hasher, CyclicPolynomialHash):
        yield from _iter_spans_cyclic(
            data, hasher, preceding[-window:], pattern_mask, min_size, max_size
        )
        return

    backlog = bytearray(window)
    if preceding:
        tail = preceding[-window:]
        backlog[-len(tail) :] = tail
    idx = 0
    start = 0
    since = 0
    for pos, byte in enumerate(data):
        outgoing = backlog[idx]
        backlog[idx] = byte
        idx = (idx + 1) % window
        value = hasher.update(byte, outgoing)
        since += 1
        if since >= min_size and (value & pattern_mask == 0 or since >= max_size):
            yield (start, pos + 1)
            start = pos + 1
            since = 0
    if start < len(data):
        yield (start, len(data))


def _scan_cyclic(
    data: bytes,
    backlog: bytearray,
    idx: int,
    value: int,
    since: int,
    table: Sequence[int],
    out_rot: Sequence[int],
    mask: int,
    top_shift: int,
    pattern_mask: int,
    min_size: int,
    max_size: int,
    reset_since_on_hit: bool,
) -> Tuple[int, int, int, List[int]]:
    """The single home of the cyclic hot loop (recurrence: δ(Φ) ⊕
    δ^k(Γ(out)) ⊕ Γ(in), i.e. :func:`repro.rolling.hashes.cyclic_step`,
    inlined here because a per-byte call is the cost being paid for).

    Scans ``data`` continuing from ``(backlog, idx, value, since)``,
    mutating ``backlog`` in place, and returns the advanced
    ``(idx, value, since, hits)`` where ``hits`` are the 0-based positions
    of bytes satisfying the min/max-gated pattern rule.  With
    ``reset_since_on_hit`` the size counter restarts after each hit (byte
    chunking: a hit *is* a boundary); without it, only the first hit is
    recorded and ``since`` keeps running (entry chunking: the boundary is
    extended to the entry end by the caller).

    Both modes, the scalar :meth:`CyclicPolynomialHash.update`, and the
    vectorized k-pass scheme in :mod:`repro.rolling.fast` must agree —
    asserted by tests/test_chunker.py, tests/test_fast_chunker.py and
    tests/test_fast_entry_chunker.py.
    """
    window = len(backlog)
    hits: List[int] = []
    checking = True
    for pos, byte in enumerate(data):
        outgoing = backlog[idx]
        backlog[idx] = byte
        idx += 1
        if idx == window:
            idx = 0
        value = ((value << 1) | (value >> top_shift)) & mask
        value ^= out_rot[outgoing]
        value ^= table[byte]
        since += 1
        if checking and since >= min_size and (
            value & pattern_mask == 0 or since >= max_size
        ):
            hits.append(pos)
            if reset_since_on_hit:
                since = 0
            else:
                checking = False  # first hit latches; hash state continues
    return idx, value, since, hits


def _iter_spans_cyclic(
    data: bytes,
    hasher: CyclicPolynomialHash,
    seed_tail: bytes,
    pattern_mask: int,
    min_size: int,
    max_size: int,
) -> Iterator[Tuple[int, int]]:
    """Byte-stream spans via the shared cyclic scan (the common case)."""
    window = hasher.window
    backlog = bytearray(window)
    if seed_tail:
        backlog[-len(seed_tail) :] = seed_tail
    _, _, _, hits = _scan_cyclic(
        data,
        backlog,
        0,
        hasher.value,
        0,
        hasher._table,
        hasher._out_rot,
        hasher._mask,
        hasher.bits - 1,
        pattern_mask,
        min_size,
        max_size,
        reset_since_on_hit=True,
    )
    start = 0
    for pos in hits:
        yield (start, pos + 1)
        start = pos + 1
    if start < len(data):
        yield (start, len(data))


def chunk_bytes(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> List[bytes]:
    """Slice ``data`` into content-defined chunks (materialized)."""
    return [data[s:e] for s, e in iter_chunk_spans(data, config, preceding)]


class EntryChunker:
    """Groups entries into nodes, extending patterns to entry boundaries.

    Usage::

        chunker = EntryChunker(config)
        for entry in entries:
            if chunker.push(entry):
                ...  # a node ends after this entry

    The final (possibly pattern-less) node is whatever was pushed since the
    last boundary; callers flush it themselves.
    """

    __slots__ = (
        "_config",
        "_table",
        "_out_rot",
        "_mask",
        "_top_shift",
        "_window",
        "_backlog",
        "_idx",
        "_value",
        "_since",
        "_pattern_mask",
        "_min_size",
        "_max_size",
        "_min_entries",
        "_entry_count",
        "_pending",
        "_generic_hash",
    )

    def __init__(self, config: ChunkerConfig = ENTRY_CONFIG) -> None:
        self._config = config
        self._window = config.window
        self._backlog = bytearray(self._window)
        self._idx = 0
        self._since = 0
        self._pattern_mask = (1 << config.pattern_bits) - 1
        self._min_size = config.min_size
        self._max_size = config.max_size
        self._min_entries = config.min_entries
        self._entry_count = 0
        self._pending = False
        hasher = config.make_hash()
        if isinstance(hasher, CyclicPolynomialHash):
            self._generic_hash: Optional[RollingHash] = None
            self._table = hasher._table
            self._out_rot = hasher._out_rot
            self._mask = hasher._mask
            self._top_shift = hasher.bits - 1
            self._value = hasher.value
        else:
            self._generic_hash = hasher
            self._value = hasher.value

    @property
    def config(self) -> ChunkerConfig:
        """The slicing parameters in force."""
        return self._config

    def seed(self, preceding: bytes) -> None:
        """Prime the window with the bytes preceding the restart point."""
        tail = preceding[-self._window :]
        for byte in tail:
            self._slide(byte)
        self._since = 0
        self._entry_count = 0
        self._pending = False

    def _slide(self, byte: int) -> int:
        backlog = self._backlog
        idx = self._idx
        outgoing = backlog[idx]
        backlog[idx] = byte
        idx += 1
        self._idx = 0 if idx == self._window else idx
        if self._generic_hash is not None:
            self._value = self._generic_hash.update(byte, outgoing)
            return self._value
        value = self._value
        value = ((value << 1) | (value >> self._top_shift)) & self._mask
        value ^= self._out_rot[outgoing]
        value ^= self._table[byte]
        self._value = value
        return value

    def push(self, entry: bytes) -> bool:
        """Consume one entry; return True if a node boundary closes here.

        A pattern detected before ``min_entries`` entries have joined the
        node stays *pending*; the node closes at the first entry end where
        both conditions hold.  This keeps every non-final node at least
        ``min_entries`` long, which is what guarantees index levels shrink.
        """
        if self._generic_hash is None:
            hit = self._push_cyclic(entry)
        else:
            hit = self._push_generic(entry)
        self._entry_count += 1
        if hit:
            self._pending = True
        if self._pending and self._entry_count >= self._min_entries:
            self._since = 0
            self._entry_count = 0
            self._pending = False
            return True
        return False

    def _push_generic(self, entry: bytes) -> bool:
        hit = False
        since = self._since
        for byte in entry:
            value = self._slide(byte)
            since += 1
            if not hit and since >= self._min_size and (
                value & self._pattern_mask == 0 or since >= self._max_size
            ):
                hit = True
        self._since = since
        return hit

    def _push_cyclic(self, entry: bytes) -> bool:
        # Same semantics as _push_generic, via the shared cyclic scan.
        self._idx, self._value, self._since, hits = _scan_cyclic(
            entry,
            self._backlog,
            self._idx,
            self._value,
            self._since,
            self._table,
            self._out_rot,
            self._mask,
            self._top_shift,
            self._pattern_mask,
            self._min_size,
            self._max_size,
            reset_since_on_hit=False,
        )
        return bool(hits)

    def push_many(self, encoded: Sequence[bytes]) -> List[int]:
        """Push a batch of encoded entries; return boundary indices.

        The returned indices ``i`` mean "a node ends after ``encoded[i]``"
        — exactly the entries for which :meth:`push` would have returned
        True.  :class:`repro.rolling.fast.VectorEntryChunker` implements
        the same contract vectorized.
        """
        return [index for index, entry in enumerate(encoded) if self.push(entry)]


def chunk_entries(
    entries: Sequence[bytes],
    config: ChunkerConfig = ENTRY_CONFIG,
    preceding: bytes = b"",
) -> List[Tuple[int, int]]:
    """Group ``entries`` into node spans ``(start_index, end_index)``."""
    spans: List[Tuple[int, int]] = []
    chunker = EntryChunker(config)
    if preceding:
        chunker.seed(preceding)
    start = 0
    for index, entry in enumerate(entries):
        if chunker.push(entry):
            spans.append((start, index + 1))
            start = index + 1
    if start < len(entries):
        spans.append((start, len(entries)))
    return spans
