"""Vectorized content-defined chunking (optional numpy fast path).

Pure-Python byte loops cap blob ingestion at a few MB/s; this module
computes the cyclic-polynomial hash for *every* position of a buffer with
k vectorized passes (one per window offset):

    value[i] = ⊕_{j=0..k-1} δ^j( Γ(data[i-j]) )

then replays the min/max-size state machine only over the sparse pattern
candidates.  The produced spans are **bit-identical** to
:func:`repro.rolling.chunker.iter_chunk_spans` — asserted by equivalence
tests — so the fast path can be swapped in freely wherever raw bytes are
chunked (blob ingestion being the hot case).

If numpy is unavailable the module degrades to the pure implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.rolling.chunker import BLOB_CONFIG, ChunkerConfig, iter_chunk_spans
from repro.rolling.hashes import CyclicPolynomialHash, gamma_table

try:  # pragma: no cover - exercised implicitly by which path runs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_available() -> bool:
    """True when the vectorized path can run."""
    return _np is not None


_TABLE_CACHE = {}


def _rotated_tables(config: ChunkerConfig):
    """Per-offset pre-rotated Γ tables: ROT_j[b] = δ^j(Γ(b))."""
    key = (config.window, config.hash_bits, config.seed)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    bits = config.hash_bits
    mask = (1 << bits) - 1
    base = gamma_table(bits, config.seed)

    def rotl(value: int, count: int) -> int:
        count %= bits
        if count == 0:
            return value
        return ((value << count) | (value >> (bits - count))) & mask

    tables = _np.empty((config.window, 256), dtype=_np.uint64)
    for offset in range(config.window):
        tables[offset] = [rotl(value, offset) for value in base]
    _TABLE_CACHE[key] = tables
    return tables


def fast_chunk_spans(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> List[Tuple[int, int]]:
    """Spans identical to ``list(iter_chunk_spans(data, config, preceding))``.

    Only the cyclic-polynomial algorithm is vectorized; other algorithms
    (and numpy-less environments) fall back to the reference path.
    """
    if _np is None or config.algorithm != "cyclic" or not data:
        return list(iter_chunk_spans(data, config, preceding))

    window = config.window
    # Prepend the conceptual prefix: zero pre-fill plus any preceding tail,
    # so position arithmetic matches the streaming chunker's window state.
    tail = preceding[-window:] if preceding else b""
    prefix = b"\x00" * (window - len(tail)) + tail
    buffer = _np.frombuffer(prefix + data, dtype=_np.uint8)
    n = len(data)

    tables = _rotated_tables(config)
    values = _np.zeros(n, dtype=_np.uint64)
    # value[i] covers the window ending at absolute index window + i.
    for offset in range(window):
        # Byte at distance `offset` behind the window end gets rotation
        # δ^offset.  The window ending at data[i] sits at buffer index
        # window + i, so that byte lives at buffer[window + i - offset].
        segment = buffer[window - offset : window - offset + n]
        values ^= tables[offset][segment]

    pattern_mask = _np.uint64((1 << config.pattern_bits) - 1)
    candidates = _np.nonzero((values & pattern_mask) == 0)[0]

    # Replay the min/max state machine over candidates + forced boundaries.
    spans: List[Tuple[int, int]] = []
    min_size = config.min_size
    max_size = config.max_size
    start = 0
    cand_index = 0
    total_candidates = len(candidates)
    while start < n:
        # Next pattern at or after start + min_size - 1 (0-based position
        # of the byte that completes min_size bytes).
        earliest = start + min_size - 1
        cand_index = int(_np.searchsorted(candidates, earliest)) if total_candidates else 0
        if cand_index < total_candidates:
            position = int(candidates[cand_index])
        else:
            position = n  # no more patterns
        forced = start + max_size - 1
        boundary = min(position, forced)
        end = boundary + 1
        if end >= n:
            spans.append((start, n))
            break
        spans.append((start, end))
        start = end
    return spans


def fast_chunk_bytes(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> List[bytes]:
    """Materialized fast-path chunks."""
    return [data[s:e] for s, e in fast_chunk_spans(data, config, preceding)]
