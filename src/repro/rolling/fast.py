"""Vectorized content-defined chunking (optional numpy fast path).

Pure-Python byte loops cap ingestion at a few MB/s; this module computes
the cyclic-polynomial hash for *every* position of a buffer with k
vectorized passes (one per window offset):

    value[i] = ⊕_{j=0..k-1} δ^j( Γ(data[i-j]) )

then replays the min/max-size state machine only over the sparse pattern
candidates.  Two consumers:

- :func:`fast_chunk_spans` slices raw bytes (blob leaves) — spans are
  **bit-identical** to :func:`repro.rolling.chunker.iter_chunk_spans`;
- :class:`VectorEntryChunker` / :func:`fast_entry_spans` group *entries*
  into POS-Tree nodes, replaying the min-size / max-size / min-entries /
  pattern-pending state machine at entry granularity (the paper's
  "boundary extended to cover the whole entry" rule) — boundaries are
  **bit-identical** to :class:`repro.rolling.chunker.EntryChunker`.

Both equivalences are asserted by tests (tests/test_fast_chunker.py,
tests/test_fast_entry_chunker.py); structural invariance makes them
mechanically checkable end-to-end: a tree bulk-built either way has the
same root uid.

If numpy is unavailable, or the configured algorithm is not ``cyclic``,
everything degrades to the pure reference implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Any, Iterator, List, Sequence, Tuple, Union

from repro.rolling.chunker import (
    BLOB_CONFIG,
    ChunkerConfig,
    ENTRY_CONFIG,
    EntryChunker,
    chunk_entries,
    iter_chunk_spans,
)
from repro.rolling.hashes import rotated_gamma_table

try:  # pragma: no cover - exercised implicitly by which path runs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Test/benchmark hook: force the pure reference path even with numpy.
_FORCE_PURE = False


def numpy_available() -> bool:
    """True when the vectorized path can run."""
    return _np is not None and not _FORCE_PURE


@contextmanager
def forced_pure() -> Iterator[None]:
    """Context manager forcing the pure reference path.

    Used by the equivalence tests and the throughput benchmark to measure
    the interpreted implementation on machines where numpy is installed.
    """
    global _FORCE_PURE
    previous = _FORCE_PURE
    _FORCE_PURE = True
    try:
        yield
    finally:
        _FORCE_PURE = previous


@lru_cache(maxsize=None)
def _gamma_array(bits: int, seed: bytes) -> Any:
    """Γ as a numpy lookup table, in the narrowest sufficient dtype."""
    dtype = _np.uint32 if bits <= 32 else _np.uint64
    return _np.array(rotated_gamma_table(bits, 0, seed), dtype=dtype)


@lru_cache(maxsize=None)
def _low_pair_tables(bits: int, window: int, seed: bytes) -> Tuple[Tuple[Any, ...], Any]:
    """Byte-pair gather tables for the low 16 bits of the position hashes.

    XOR is bitwise-independent, and the pattern rule only ever inspects the
    low ``pattern_bits`` bits of Φ, so the candidate scan can work on a
    16-bit truncation of the hash.  Two adjacent window offsets are folded
    into one 65536-entry table:

        PT_m[new << 8 | old] = low16(δ^{2m}(Γ(new)) ⊕ δ^{2m+1}(Γ(old)))

    halving both the gathers and the memory traffic versus one 256-entry
    gather (or shift pass) per offset.  Odd windows keep one single-byte
    table for the final offset.  Each table is 128 KB — L2-resident.
    """

    def low16(rotation: int) -> Any:
        table = _np.array(rotated_gamma_table(bits, rotation, seed), dtype=_np.uint64)
        return (table & _np.uint64(0xFFFF)).astype(_np.uint16)

    pair_tables = []
    for m in range(window // 2):
        new16 = low16(2 * m)
        old16 = low16(2 * m + 1)
        pair_tables.append((new16[:, None] ^ old16[None, :]).reshape(65536))
    single = low16(window - 1) if window % 2 else None
    return tuple(pair_tables), single


#: Positions hashed per block: index slices (8 B/position) and gather
#: outputs stay cache-resident, roughly halving wall time versus one
#: full-buffer pass per table (measured on 26.8 MB streams).
_LOW16_BLOCK = 1 << 17


def _position_low16(data: bytes, config: ChunkerConfig, tail: bytes) -> Any:
    """Low 16 bits of the window hash ending at every position of ``data``.

    Same contract as :func:`_position_hashes` but truncated to the low 16
    bits, which is all the pattern rule needs when ``pattern_bits <= 16``.
    Adjacent bytes are fused into 16-bit pair indices (two strided byte
    copies into a little-endian uint16 view — no integer math), so each
    pair table covers two window offsets in one gather; gathers run on
    ``intp`` indices (``np.take``'s fast path, converted per cache-sized
    block) so the index widening never touches DRAM-scale arrays.
    """
    window = config.window
    prefix = b"\x00" * (window - len(tail)) + tail
    buffer = _np.frombuffer(prefix + data, dtype=_np.uint8)
    n = len(data)
    pair_tables, single = _low_pair_tables(config.hash_bits, window, config.seed)
    count_pairs = len(pair_tables)
    if count_pairs:
        # pair16[t] = buffer[t+1] << 8 | buffer[t]: the pair *ending* at
        # buffer position p is pair16[p - 1].
        pair16 = _np.empty(len(buffer) - 1, dtype=_np.uint16)
        as_bytes = pair16.view(_np.uint8)
        if _np.little_endian:
            as_bytes[0::2] = buffer[:-1]
            as_bytes[1::2] = buffer[1:]
        else:  # pragma: no cover - big-endian hosts
            as_bytes[1::2] = buffer[:-1]
            as_bytes[0::2] = buffer[1:]
    values = _np.empty(n, dtype=_np.uint16)
    block = _LOW16_BLOCK
    seg = _np.empty(block + window, dtype=_np.intp)
    scratch = _np.empty(block, dtype=_np.uint16)
    for block_start in range(0, n, block):
        block_end = min(block_start + block, n)
        cnt = block_end - block_start
        acc = values[block_start:block_end]
        first = True
        if count_pairs:
            # Gather m covers offsets 2m/2m+1 via the pair ending at buffer
            # position window + i - 2m; widen the union of the slices once.
            lo = window - 2 * (count_pairs - 1) - 1 + block_start
            hi = window - 1 + block_start + cnt
            idx = seg[: hi - lo]
            _np.copyto(idx, pair16[lo:hi], casting="unsafe")
            base = hi - lo - cnt  # start of gather m=0 within idx
            for m, table in enumerate(pair_tables):
                part = idx[base - 2 * m : base - 2 * m + cnt]
                if first:
                    _np.take(table, part, out=acc, mode="clip")
                    first = False
                else:
                    _np.take(table, part, out=scratch[:cnt], mode="clip")
                    _np.bitwise_xor(acc, scratch[:cnt], out=acc)
        if single is not None:
            # Odd window: the last offset (window - 1) reads buffer[i + 1].
            idx = seg[:cnt]
            _np.copyto(idx, buffer[1 + block_start : 1 + block_end], casting="unsafe")
            if first:
                _np.take(single, idx, out=acc, mode="clip")
            else:
                _np.take(single, idx, out=scratch[:cnt], mode="clip")
                _np.bitwise_xor(acc, scratch[:cnt], out=acc)
    return values


def _position_hashes(data: bytes, config: ChunkerConfig, tail: bytes) -> Any:
    """Hash value of the window ending at every position of ``data``.

    ``tail`` is the byte stream immediately preceding ``data`` (at most
    ``window`` bytes); the conceptual zero pre-fill of the rolling window
    pads it on the left, matching the streaming chunkers' start state.

    One gather maps every byte through Γ; each of the k window offsets
    then contributes δ^offset of its slice via two shifts and a mask —
    value[i] = ⊕_j δ^j(Γ(buffer[window + i - j])) — which is ~4× faster
    than one 256-entry gather per offset.
    """
    window = config.window
    bits = config.hash_bits
    prefix = b"\x00" * (window - len(tail)) + tail
    buffer = _np.frombuffer(prefix + data, dtype=_np.uint8)
    n = len(data)
    table = _gamma_array(bits, config.seed)
    dtype = table.dtype
    mask = dtype.type((1 << bits) - 1)
    gamma = _np.take(table, buffer)
    values = _np.zeros(n, dtype=dtype)
    scratch = _np.empty(n, dtype=dtype)
    for offset in range(window):
        segment = gamma[window - offset : window - offset + n]
        rotation = offset % bits
        if rotation == 0:
            _np.bitwise_xor(values, segment, out=values)
            continue
        _np.left_shift(segment, dtype.type(rotation), out=scratch)
        _np.bitwise_and(scratch, mask, out=scratch)
        _np.bitwise_xor(values, scratch, out=values)
        _np.right_shift(segment, dtype.type(bits - rotation), out=scratch)
        _np.bitwise_xor(values, scratch, out=values)
    return values


def _pattern_candidates(data: bytes, config: ChunkerConfig, tail: bytes) -> Any:
    """Sorted positions of ``data`` where the raw pattern rule fires."""
    if config.pattern_bits <= 16:
        values = _position_low16(data, config, tail)
    else:
        values = _position_hashes(data, config, tail)
    pattern_mask = values.dtype.type((1 << config.pattern_bits) - 1)
    return _np.nonzero((values & pattern_mask) == 0)[0]


def fast_chunk_spans(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> List[Tuple[int, int]]:
    """Spans identical to ``list(iter_chunk_spans(data, config, preceding))``.

    Only the cyclic-polynomial algorithm is vectorized; other algorithms
    (and numpy-less environments) fall back to the reference path.
    """
    if not numpy_available() or config.algorithm != "cyclic" or not data:
        return list(iter_chunk_spans(data, config, preceding))

    window = config.window
    tail = preceding[-window:] if preceding else b""
    candidates = _pattern_candidates(data, config, tail)
    n = len(data)

    # Replay the min/max state machine over candidates + forced boundaries.
    spans: List[Tuple[int, int]] = []
    min_size = config.min_size
    max_size = config.max_size
    start = 0
    total_candidates = len(candidates)
    while start < n:
        # Next pattern at or after start + min_size - 1 (0-based position
        # of the byte that completes min_size bytes).
        earliest = start + min_size - 1
        cand_index = int(_np.searchsorted(candidates, earliest)) if total_candidates else 0
        if cand_index < total_candidates:
            position = int(candidates[cand_index])
        else:
            position = n  # no more patterns
        forced = start + max_size - 1
        boundary = min(position, forced)
        end = boundary + 1
        if end >= n:
            spans.append((start, n))
            break
        spans.append((start, end))
        start = end
    return spans


def fast_chunk_bytes(
    data: bytes,
    config: ChunkerConfig = BLOB_CONFIG,
    preceding: bytes = b"",
) -> List[bytes]:
    """Materialized fast-path chunks."""
    return [data[s:e] for s, e in fast_chunk_spans(data, config, preceding)]


class VectorEntryChunker:
    """Vectorized drop-in for :class:`EntryChunker` (cyclic hash + numpy).

    Same contract: entries are fed in stream order, a True/boundary means
    "the current node ends after this entry".  Internally each batch is
    concatenated, hashed with the k-pass scheme, and the state machine is
    replayed over the sparse candidate set with O(nodes · log candidates)
    work instead of O(bytes) interpreted steps.

    Carried state between batches:

    - the last ``window`` bytes of the stream (hash continuity — the
      rolling window never resets across node boundaries);
    - ``since`` (bytes since the last node boundary);
    - ``entry_count`` / ``pending`` (the min-entries gate: a pattern seen
      before ``min_entries`` entries joined the node stays pending until
      both conditions hold at an entry end).
    """

    __slots__ = ("_config", "_tail", "_since", "_entry_count", "_pending")

    def __init__(self, config: ChunkerConfig = ENTRY_CONFIG) -> None:
        if config.algorithm != "cyclic":
            raise ValueError("VectorEntryChunker supports only the cyclic hash")
        self._config = config
        self._tail = b""
        self._since = 0
        self._entry_count = 0
        self._pending = False

    @property
    def config(self) -> ChunkerConfig:
        """The slicing parameters in force."""
        return self._config

    def seed(self, preceding: bytes) -> None:
        """Prime the window with the bytes preceding the restart point."""
        self._tail = preceding[-self._config.window :]
        self._since = 0
        self._entry_count = 0
        self._pending = False

    def push(self, entry: bytes) -> bool:
        """Consume one entry; True if a node boundary closes here."""
        return bool(self.push_many((entry,)))

    def push_many(self, encoded: Sequence[bytes]) -> List[int]:
        """Consume a batch of encoded entries; return boundary indices.

        Bit-identical to calling :meth:`EntryChunker.push` per entry and
        collecting the indices that returned True — including across
        arbitrary batch splits (asserted by the property tests).
        """
        total = len(encoded)
        if total == 0:
            return []
        config = self._config
        data = b"".join(encoded)
        stream_len = len(data)

        if stream_len:
            candidates = _pattern_candidates(data, config, self._tail)
            self._tail = (self._tail + data)[-config.window :]
        else:
            candidates = _np.empty(0, dtype=_np.int64)
        total_candidates = len(candidates)
        ends = _np.cumsum(
            _np.fromiter((len(part) for part in encoded), dtype=_np.int64, count=total)
        )

        min_size = config.min_size
        max_size = config.max_size
        min_entries = config.min_entries
        entry_count = self._entry_count
        pending = self._pending
        # Local byte coordinate where the current node began (≤ 0 when the
        # node started in an earlier batch: `since` bytes already fed).
        node_start = -self._since

        boundaries: List[int] = []
        index = 0
        while index < total:
            if pending:
                # Pattern already latched: the node closes at the entry
                # where the count reaches min_entries.
                close = index + max(0, min_entries - entry_count - 1)
                if close >= total:
                    entry_count += total - index
                    break
                boundaries.append(close)
                node_start = int(ends[close])
                entry_count = 0
                pending = False
                index = close + 1
                continue
            entry_start = int(ends[index - 1]) if index else 0
            # First position satisfying the pattern rule with the min-size
            # gate (since ≥ min_size ⇔ position ≥ node_start + min_size - 1),
            # restricted to the unprocessed entries.
            threshold = max(node_start + min_size - 1, entry_start)
            cand_index = (
                int(_np.searchsorted(candidates, threshold)) if total_candidates else 0
            )
            pattern_pos = (
                int(candidates[cand_index]) if cand_index < total_candidates else stream_len
            )
            # First position where the max-size clamp forces a hit.  While
            # not pending, since < max_size holds at every entry end (a
            # byte reaching max_size latches pending), so forced ≥ entry_start.
            forced_pos = node_start + max_size - 1
            hit_pos = min(pattern_pos, forced_pos)
            if hit_pos >= stream_len:
                entry_count += total - index
                break
            # The paper's extension rule: the hit belongs to the entry
            # containing that byte, and the boundary moves to its end —
            # or later, if the min-entries gate is still unsatisfied.
            hit_entry = int(_np.searchsorted(ends, hit_pos, side="right"))
            close = max(hit_entry, index + min_entries - entry_count - 1)
            if close >= total:
                entry_count += total - index
                pending = True
                break
            boundaries.append(close)
            node_start = int(ends[close])
            entry_count = 0
            pending = False
            index = close + 1

        self._since = stream_len - node_start
        self._entry_count = entry_count
        self._pending = pending
        return boundaries


#: Either chunker implementation, as returned by :func:`make_entry_chunker`.
AnyEntryChunker = Union[EntryChunker, VectorEntryChunker]


def make_entry_chunker(config: ChunkerConfig = ENTRY_CONFIG) -> AnyEntryChunker:
    """Best available entry chunker for ``config``.

    Returns the vectorized implementation when numpy is present and the
    algorithm is the paper's cyclic hash; the pure streaming reference
    otherwise.  Both honour the same ``seed``/``push``/``push_many``
    contract, so call sites need not care which they got.
    """
    if numpy_available() and config.algorithm == "cyclic":
        return VectorEntryChunker(config)
    return EntryChunker(config)


def fast_entry_spans(
    entries: Sequence[bytes],
    config: ChunkerConfig = ENTRY_CONFIG,
    preceding: bytes = b"",
) -> List[Tuple[int, int]]:
    """Node spans identical to ``chunk_entries(entries, config, preceding)``.

    ``entries`` are the per-entry serializations (the byte stream the
    pattern rule scans); the returned ``(start, end)`` pairs index into
    ``entries``.  Falls back to the pure reference when the fast path
    cannot run.
    """
    if not numpy_available() or config.algorithm != "cyclic":
        return chunk_entries(entries, config, preceding)
    chunker = VectorEntryChunker(config)
    if preceding:
        chunker.seed(preceding)
    spans: List[Tuple[int, int]] = []
    start = 0
    for boundary in chunker.push_many(entries):
        spans.append((start, boundary + 1))
        start = boundary + 1
    if start < len(entries):
        spans.append((start, len(entries)))
    return spans
