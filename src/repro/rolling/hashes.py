"""Rolling hash functions.

The paper (§II-A) specifies the cyclic polynomial hash

    Φ(b1…bk) = δ(Φ(b0…bk−1)) ⊕ δ^k(Γ(b0)) ⊕ δ^0(Γ(bk))

where Γ maps a byte to an integer in [0, 2^q), δ rotates its input left by
one bit within q bits, and ⊕ is XOR.  Each step drops the oldest byte of the
window and admits the newest.  :class:`CyclicPolynomialHash` implements this
recurrence verbatim; :class:`RabinKarpHash` is the classical polynomial
alternative kept for ablation comparisons.

Both hashes are deterministic across runs and platforms: the Γ table is
derived from SHA-256 of a fixed seed, never from :mod:`random` global state.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Sequence, Tuple


@lru_cache(maxsize=None)
def gamma_table(bits: int, seed: bytes = b"forkbase-gamma") -> Tuple[int, ...]:
    """Deterministic Γ: byte → pseudo-random integer in [0, 2**bits).

    The table is expanded from SHA-256 in counter mode so two processes
    always agree on it — a prerequisite for structural invariance across
    independently built stores.  Memoized per ``(bits, seed)``: every
    hash/chunker construction used to re-run the expansion (once per tree
    level per build), now it is computed once per process.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    mask = (1 << bits) - 1
    table = []
    counter = 0
    while len(table) < 256:
        block = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        for offset in range(0, len(block) - 7, 8):
            if len(table) == 256:
                break
            value = int.from_bytes(block[offset : offset + 8], "big") & mask
            table.append(value)
        counter += 1
    return tuple(table)


@lru_cache(maxsize=None)
def rotated_gamma_table(
    bits: int, rotation: int, seed: bytes = b"forkbase-gamma"
) -> Tuple[int, ...]:
    """Pre-rotated Γ: byte → δ^rotation(Γ(byte)), memoized.

    ``rotation = window`` gives the outgoing-byte table of the recurrence;
    the vectorized chunker uses one table per window offset.
    """
    mask = (1 << bits) - 1
    count = rotation % bits
    base = gamma_table(bits, seed)
    if count == 0:
        return base
    return tuple(
        ((value << count) | (value >> (bits - count))) & mask for value in base
    )


@lru_cache(maxsize=None)
def zero_window_value(
    bits: int, window: int, seed: bytes = b"forkbase-gamma"
) -> int:
    """Hash of a window conceptually pre-filled with ``window`` zero bytes."""
    mask = (1 << bits) - 1
    table = gamma_table(bits, seed)
    value = 0
    for index in range(window):
        count = index % bits
        rotated = (
            table[0]
            if count == 0
            else ((table[0] << count) | (table[0] >> (bits - count))) & mask
        )
        value ^= rotated
    return value


def cyclic_step(
    value: int,
    incoming: int,
    outgoing: int,
    table: Sequence[int],
    out_rot: Sequence[int],
    mask: int,
    top_shift: int,
) -> int:
    """One step of the paper's recurrence: δ(Φ) ⊕ δ^k(Γ(out)) ⊕ Γ(in).

    This is the canonical form of the cyclic-polynomial update.  The hot
    loops in :mod:`repro.rolling.chunker` (byte-stream and entry-stream
    scanning) and the vectorized k-pass scheme in :mod:`repro.rolling.fast`
    restate this same recurrence; their agreement is asserted by the
    equivalence tests (tests/test_chunker.py, tests/test_fast_chunker.py,
    tests/test_fast_entry_chunker.py, tests/test_rolling_hashes.py).
    """
    value = ((value << 1) | (value >> top_shift)) & mask
    return value ^ out_rot[outgoing] ^ table[incoming]


class RollingHash:
    """Interface for rolling hashes over a fixed-width byte window.

    Subclasses maintain O(1) state and update it per byte; ``value`` is the
    current hash of the last ``window`` bytes fed in.
    """

    #: Window width k in bytes.
    window: int
    #: Current hash value.
    value: int

    def reset(self) -> None:
        """Forget all fed bytes."""
        raise NotImplementedError

    def update(self, incoming: int, outgoing: int) -> int:
        """Slide the window: admit ``incoming``, retire ``outgoing``.

        Returns the new hash value.  ``outgoing`` must be the byte that
        entered the window exactly ``self.window`` updates ago (0 while the
        window is still filling).
        """
        raise NotImplementedError

    def feed(self, data: bytes) -> int:
        """Convenience: slide over ``data`` byte-by-byte, return final value."""
        backlog = bytearray()
        for byte in data:
            outgoing = backlog[-self.window] if len(backlog) >= self.window else 0
            self.update(byte, outgoing)
            backlog.append(byte)
        return self.value


class CyclicPolynomialHash(RollingHash):
    """The paper's cyclic polynomial (buzhash) rolling hash.

    State is a ``bits``-wide integer; δ is a 1-bit left rotation within
    ``bits`` bits ("shifts its input by 1 bit to the left, and then pushes
    the q-th bit back to the lowest position").
    """

    __slots__ = ("window", "bits", "value", "_mask", "_table", "_out_rot", "_zero_init")

    def __init__(self, window: int = 16, bits: int = 31, seed: bytes = b"forkbase-gamma") -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._table = gamma_table(bits, seed)
        # Pre-rotate Γ by k for the outgoing byte: δ^k(Γ(b)).
        self._out_rot = rotated_gamma_table(bits, window, seed)
        # The window is conceptually pre-filled with k zero bytes, so that
        # callers may pass outgoing=0 while the window is still filling.
        self._zero_init = zero_window_value(bits, window, seed)
        self.value = self._zero_init

    def _rotl(self, value: int, count: int) -> int:
        count %= self.bits
        if count == 0:
            return value
        return ((value << count) | (value >> (self.bits - count))) & self._mask

    def reset(self) -> None:
        self.value = self._zero_init

    def update(self, incoming: int, outgoing: int) -> int:
        value = cyclic_step(
            self.value,
            incoming,
            outgoing,
            self._table,
            self._out_rot,
            self._mask,
            self.bits - 1,
        )
        self.value = value
        return value


class RabinKarpHash(RollingHash):
    """Classical Rabin–Karp polynomial rolling hash (ablation baseline).

    ``h = (h * base + b_in - b_out * base**k) mod 2**bits``.
    """

    __slots__ = ("window", "bits", "value", "_mask", "_base", "_base_k")

    def __init__(self, window: int = 16, bits: int = 31, base: int = 257) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._base = base
        self._base_k = pow(base, window, 1 << bits)
        self.value = 0

    def reset(self) -> None:
        self.value = 0

    def update(self, incoming: int, outgoing: int) -> int:
        value = (self.value * self._base + incoming - outgoing * self._base_k) & self._mask
        self.value = value
        return value


def direct_cyclic_hash(
    data: Sequence[int], bits: int = 31, seed: bytes = b"forkbase-gamma"
) -> int:
    """Non-rolling reference: hash an entire window from scratch.

    Used by tests to verify the O(1) recurrence agrees with the definition
    Φ(b1…bk) = δ^{k-1}(Γ(b1)) ⊕ δ^{k-2}(Γ(b2)) ⊕ … ⊕ Γ(bk).
    """
    table = gamma_table(bits, seed)
    mask = (1 << bits) - 1

    def rotl(value: int, count: int) -> int:
        count %= bits
        if count == 0:
            return value
        return ((value << count) | (value >> (bits - count))) & mask

    result = 0
    k = len(data)
    for index, byte in enumerate(data):
        result ^= rotl(table[byte], k - 1 - index)
    return result
