"""Content-defined slicing (paper §II-A).

POS-Tree node boundaries are "patterns detected from the contained entries":
a rolling hash :math:`\\Phi` is computed over a sliding k-byte window and a
boundary occurs wherever :math:`\\Phi \\bmod 2^q = 0`.  This package provides

- :class:`~repro.rolling.hashes.CyclicPolynomialHash` — the exact
  recurrence from the paper (buzhash),
- :class:`~repro.rolling.hashes.RabinKarpHash` — a classical alternative
  used by the ablation benchmarks,
- :class:`~repro.rolling.detector.PatternDetector` — boundary detection
  with min/max-size clamps,
- :mod:`~repro.rolling.chunker` — byte-stream and entry-stream chunkers
  (entry streams extend a mid-entry pattern to the entry boundary, as the
  paper specifies).
"""

from repro.rolling.chunker import (
    ChunkerConfig,
    EntryChunker,
    chunk_bytes,
    chunk_entries,
    iter_chunk_spans,
)
from repro.rolling.detector import PatternDetector
from repro.rolling.fast import (
    VectorEntryChunker,
    fast_chunk_spans,
    fast_entry_spans,
    make_entry_chunker,
    numpy_available,
)
from repro.rolling.hashes import CyclicPolynomialHash, RabinKarpHash, RollingHash

__all__ = [
    "ChunkerConfig",
    "EntryChunker",
    "chunk_bytes",
    "chunk_entries",
    "iter_chunk_spans",
    "PatternDetector",
    "VectorEntryChunker",
    "fast_chunk_spans",
    "fast_entry_spans",
    "make_entry_chunker",
    "numpy_available",
    "CyclicPolynomialHash",
    "RabinKarpHash",
    "RollingHash",
]
