"""Immutable typed chunks.

A chunk is the unit of deduplication (paper §II-C): "data are split into
chunks, each of which is immutable after complete construction and uniquely
identified by its SHA-256 hash."  The uid covers both the type tag and the
payload so that, e.g., a map leaf and a blob leaf with coincidentally equal
bytes never collide.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Optional

from repro.chunk.uid import Uid
from repro.errors import ChunkCorruptionError


class ChunkType(enum.IntEnum):
    """Tags for every chunk kind materialized in physical storage."""

    #: Raw byte segment of a blob (POS-Tree leaf for FBlob).
    BLOB = 1
    #: POS-Tree leaf holding serialized keyed entries (map/set).
    LEAF = 2
    #: POS-Tree index node holding (split key, child uid) entries.
    INDEX = 3
    #: POS-Tree leaf holding positional entries (list).
    LIST_LEAF = 4
    #: POS-Tree index node for positional trees (child uid + count).
    LIST_INDEX = 5
    #: FNode: a committed version (value root + hash-chained bases).
    FNODE = 6
    #: Serialized primitive value (string / number / boolean).
    PRIMITIVE = 7
    #: Table schema descriptor.
    SCHEMA = 8
    #: Free-form metadata blob (engine bookkeeping).
    META = 9

    def tag(self) -> bytes:
        """Single tag byte mixed into the hash."""
        return bytes([int(self)])


class Chunk:
    """An immutable `(type, payload)` pair addressed by its SHA-256 uid."""

    __slots__ = ("_type", "_data", "_uid")

    def __init__(
        self, type_: ChunkType, data: bytes, uid: Optional[Uid] = None
    ) -> None:
        # Enum re-construction costs ~0.4us; skip it when the caller
        # already hands us members (every store read path does).
        self._type = type_ if type_.__class__ is ChunkType else ChunkType(type_)
        self._data = data if data.__class__ is bytes else bytes(data)
        self._uid = uid if uid is not None else self.compute_uid(self._type, self._data)

    @staticmethod
    def compute_uid(type_: ChunkType, data: bytes) -> Uid:
        """SHA-256 over the tag byte followed by the payload."""
        hasher = hashlib.sha256()
        hasher.update(ChunkType(type_).tag())
        hasher.update(data)
        return Uid(hasher.digest())

    @property
    def type(self) -> ChunkType:
        """The chunk kind."""
        return self._type

    @property
    def data(self) -> bytes:
        """The immutable payload bytes."""
        return self._data

    @property
    def uid(self) -> Uid:
        """The content address of this chunk."""
        return self._uid

    def size(self) -> int:
        """Payload size in bytes (the unit Fig. 4's KB numbers count)."""
        return len(self._data)

    def verify(self) -> None:
        """Recompute the uid and raise if the payload was tampered with.

        This is the primitive behind the tamper-evidence property of
        §III-C: a malicious store can return arbitrary bytes for a uid, but
        cannot make them hash back to that uid.
        """
        actual = self.compute_uid(self._type, self._data)
        if actual != self._uid:
            raise ChunkCorruptionError(
                f"chunk {self._uid.short()} fails verification "
                f"(content hashes to {actual.short()})"
            )

    def is_valid(self) -> bool:
        """Boolean form of :meth:`verify`."""
        return self.compute_uid(self._type, self._data) == self._uid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Chunk):
            return self._uid == other._uid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._uid)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Chunk({self._type.name}, {len(self._data)}B, {self._uid.short()}…)"
