"""Content addresses (uids).

A :class:`Uid` is the SHA-256 digest of a chunk's type tag and payload.  It
is the only kind of "pointer" in the system: POS-Tree index entries, FNode
value references and derivation links are all uids (paper §II-A: "the child
node's identifier is the cryptographic hash value of the child").

The demo paper (§III-C) displays versions "encoded using the RFC 4648
Base32 alphabet"; :meth:`Uid.base32` reproduces that rendering.
"""

from __future__ import annotations

import base64
import hashlib

_DIGEST_SIZE = 32
_BASE32_LEN = 52  # ceil(32 * 8 / 5) without padding


class Uid:
    """An immutable 32-byte content address.

    Instances compare by digest bytes, hash cheaply (first 8 bytes), and
    sort lexicographically so they can key ordered structures.
    """

    __slots__ = ("_digest", "_hash")

    def __init__(self, digest: bytes) -> None:
        if not isinstance(digest, (bytes, bytearray, memoryview)):
            raise TypeError(f"digest must be bytes, got {type(digest).__name__}")
        digest = bytes(digest)
        if len(digest) != _DIGEST_SIZE:
            raise ValueError(
                f"digest must be {_DIGEST_SIZE} bytes, got {len(digest)}"
            )
        self._digest = digest
        self._hash = int.from_bytes(digest[:8], "big")

    @classmethod
    def of(cls, data: bytes) -> "Uid":
        """Hash raw bytes into a uid (SHA-256)."""
        return cls(hashlib.sha256(data).digest())

    @classmethod
    def from_hex(cls, text: str) -> "Uid":
        """Parse a 64-char hex rendering."""
        return cls(bytes.fromhex(text))

    @classmethod
    def from_base32(cls, text: str) -> "Uid":
        """Parse the RFC 4648 Base32 rendering produced by :meth:`base32`."""
        text = text.upper()
        padding = "=" * (-len(text) % 8)
        raw = base64.b32decode(text + padding)
        return cls(raw)

    @classmethod
    def parse(cls, text: str) -> "Uid":
        """Parse either rendering, dispatching on length."""
        text = text.strip()
        if len(text) == _DIGEST_SIZE * 2:
            return cls.from_hex(text)
        if len(text) == _BASE32_LEN:
            return cls.from_base32(text)
        raise ValueError(f"unrecognized uid rendering: {text!r}")

    @property
    def digest(self) -> bytes:
        """The raw 32-byte SHA-256 digest."""
        return self._digest

    def hex(self) -> str:
        """Lowercase hex rendering (64 chars)."""
        return self._digest.hex()

    def base32(self) -> str:
        """RFC 4648 Base32 rendering without padding (52 chars, §III-C)."""
        return base64.b32encode(self._digest).decode("ascii").rstrip("=")

    def short(self, length: int = 10) -> str:
        """Abbreviated Base32 prefix for human-oriented output."""
        return self.base32()[:length]

    def __bytes__(self) -> bytes:
        return self._digest

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Uid):
            return self._digest == other._digest
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Uid):
            return self._digest != other._digest
        return NotImplemented

    def __lt__(self, other: "Uid") -> bool:
        return self._digest < other._digest

    def __le__(self, other: "Uid") -> bool:
        return self._digest <= other._digest

    def __gt__(self, other: "Uid") -> bool:
        return self._digest > other._digest

    def __ge__(self, other: "Uid") -> bool:
        return self._digest >= other._digest

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Uid({self.short()}…)"


#: Sentinel uid (all zero bytes); used to mark "no value" references.
NULL_UID = Uid(b"\x00" * _DIGEST_SIZE)
