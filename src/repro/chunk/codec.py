"""Deterministic binary codec.

Every Merkle-hashed structure in the system (POS-Tree nodes, FNodes, table
schemas) serializes through this module.  Determinism is load-bearing: SIRI
Property 1 (structural invariance, paper Def. 1) requires that logically
equal content always produce byte-identical pages, so the encoding must not
depend on dict ordering, platform, or interning accidents.

The format is a minimal length-prefixed scheme:

- unsigned varints (LEB128) for lengths and small counts,
- zigzag varints for signed integers,
- UTF-8 for strings,
- IEEE-754 big-endian for floats,
- raw 32-byte digests for uids.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence

from repro.chunk.uid import Uid
from repro.errors import ChunkEncodingError

_UID_SIZE = 32


class Writer:
    """Append-only builder for the canonical encoding."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def uvarint(self, value: int) -> "Writer":
        """Append an unsigned LEB128 varint."""
        if value < 0:
            raise ChunkEncodingError(f"uvarint cannot encode negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))
        return self

    def svarint(self, value: int) -> "Writer":
        """Append a signed integer as a zigzag varint."""
        zigzag = (value << 1) ^ (value >> 63) if -(2**62) <= value < 2**62 else None
        if zigzag is None:
            # Arbitrary-precision fallback: sign byte + magnitude bytes.
            self._parts.append(b"\xff")
            sign = 1 if value < 0 else 0
            mag = abs(value)
            raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
            self.uvarint(sign)
            self.blob(raw)
            return self
        self._parts.append(b"\x00")
        return self.uvarint(zigzag)

    def float64(self, value: float) -> "Writer":
        """Append an IEEE-754 double, big-endian."""
        self._parts.append(struct.pack(">d", value))
        return self

    def blob(self, data: bytes) -> "Writer":
        """Append length-prefixed raw bytes."""
        self.uvarint(len(data))
        self._parts.append(bytes(data))
        return self

    def text(self, value: str) -> "Writer":
        """Append a length-prefixed UTF-8 string."""
        return self.blob(value.encode("utf-8"))

    def uid(self, uid: Uid) -> "Writer":
        """Append a raw 32-byte uid."""
        self._parts.append(uid.digest)
        return self

    def raw(self, data: bytes) -> "Writer":
        """Append raw bytes with no prefix (caller manages framing)."""
        self._parts.append(bytes(data))
        return self

    def uid_list(self, uids: Iterable[Uid]) -> "Writer":
        """Append a count-prefixed list of uids."""
        uids = list(uids)
        self.uvarint(len(uids))
        for uid in uids:
            self.uid(uid)
        return self

    def text_list(self, items: Sequence[str]) -> "Writer":
        """Append a count-prefixed list of strings."""
        self.uvarint(len(items))
        for item in items:
            self.text(item)
        return self

    def getvalue(self) -> bytes:
        """Concatenate everything appended so far."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Reader:
    """Sequential decoder matching :class:`Writer`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    def uvarint(self) -> int:
        """Read an unsigned LEB128 varint."""
        result = 0
        shift = 0
        data = self._data
        pos = self._pos
        while True:
            if pos >= len(data):
                raise ChunkEncodingError("truncated uvarint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 126:
                raise ChunkEncodingError("uvarint too long")
        self._pos = pos
        return result

    def svarint(self) -> int:
        """Read a signed zigzag varint (or big-int fallback)."""
        marker = self._take(1)[0]
        if marker == 0xFF:
            sign = self.uvarint()
            raw = self.blob()
            mag = int.from_bytes(raw, "big")
            return -mag if sign else mag
        if marker != 0x00:
            raise ChunkEncodingError(f"bad svarint marker {marker:#x}")
        zigzag = self.uvarint()
        return (zigzag >> 1) ^ -(zigzag & 1)

    def float64(self) -> float:
        """Read an IEEE-754 double."""
        return struct.unpack(">d", self._take(8))[0]

    def blob(self) -> bytes:
        """Read length-prefixed raw bytes."""
        length = self.uvarint()
        return self._take(length)

    def text(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        return self.blob().decode("utf-8")

    def uid(self) -> Uid:
        """Read a raw 32-byte uid."""
        return Uid(self._take(_UID_SIZE))

    def uid_list(self) -> List[Uid]:
        """Read a count-prefixed list of uids."""
        return [self.uid() for _ in range(self.uvarint())]

    def text_list(self) -> List[str]:
        """Read a count-prefixed list of strings."""
        return [self.text() for _ in range(self.uvarint())]

    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        """True when the whole buffer has been consumed."""
        return self._pos >= len(self._data)

    def expect_end(self) -> None:
        """Raise if trailing bytes remain (strict decoding)."""
        if not self.at_end():
            raise ChunkEncodingError(
                f"{self.remaining()} trailing byte(s) after decode"
            )

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise ChunkEncodingError(
                f"truncated read: wanted {count}, have {self.remaining()}"
            )
        out = self._data[self._pos : end]
        self._pos = end
        return out
