"""Content-addressed chunk model.

This package implements the bottom layer of Fig. 1 in the paper: immutable
chunks uniquely identified by the SHA-256 hash of their content, with uids
rendered in the RFC 4648 Base32 alphabet exactly as the ForkBase demo UI
shows them (paper §III-C).

Public surface:

- :class:`~repro.chunk.uid.Uid` — 32-byte content address.
- :class:`~repro.chunk.chunk.Chunk` / :class:`~repro.chunk.chunk.ChunkType`
  — typed immutable byte payloads.
- :mod:`~repro.chunk.codec` — deterministic binary encoding used by every
  Merkle-hashed structure (POS-Tree nodes, FNodes), so that equal logical
  content always serializes to equal bytes.
"""

from repro.chunk.chunk import Chunk, ChunkType
from repro.chunk.codec import Reader, Writer
from repro.chunk.uid import NULL_UID, Uid

__all__ = ["Chunk", "ChunkType", "Reader", "Writer", "Uid", "NULL_UID"]
