"""The ForkBase engine: Git-like data management over the substrate.

This is the facade a branchable application talks to.  It exposes the
verbs listed on the API layer of Fig. 1 — Put, Get, List, Branch, Merge,
Diff, Head, Latest, Meta, Rename — over the typed-object, version and
chunk layers.
"""

from repro.db.engine import ForkBase, VersionInfo

__all__ = ["ForkBase", "VersionInfo"]
