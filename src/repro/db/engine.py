"""The ForkBase engine.

An extended key-value model (§II-D): "each object is identified by a key,
and contains a value of a specific type.  A key may have multiple
branches.  Given a key we can retrieve not only the current value in each
branch, but also its historical versions."

All writes are immutable — a Put creates an FNode whose uid is the
tamper-evident version stamped onto the branch (Fig. 6) — and all shared
content deduplicates at the page level in the chunk store (Fig. 4).
"""

from __future__ import annotations

import errno
import functools
import json
import os
import time
from dataclasses import dataclass
from typing import IO, Any, Callable, Dict, List, Optional, Tuple, TypeVar, Union

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

T = TypeVar("T")

from repro.chunk import Uid
from repro.errors import (
    ChunkCorruptionError,
    DiskFaultError,
    DiskFullError,
    EngineError,
    EngineLockedError,
    MergeConflictError,
    ReadOnlyError,
    TypeMismatchError,
    UnknownKeyError,
    map_os_error,
)
from repro.faults.crash import crashing_write, crashpoint
from repro.faults.retry import RetryPolicy
from repro.postree.diff import TreeDiff
from repro.postree.merge import MergeConflict, Resolver
from repro.store import FileStore, InMemoryStore, NodeCacheStore, PackStore
from repro.store.base import ChunkStore
from repro.store.durability import durable_replace, fsync_file, read_check
from repro.types import FBlob, FList, FMap, FObject, FSet, load_object
from repro.types.convert import PyValue, unwrap, wrap
from repro.vcs import BranchTable, CommitJournal, FNode, VersionGraph, replay_into
from repro.vcs.branches import DEFAULT_BRANCH

#: Engine health states: a disk fault that may have lost acknowledged
#: state demotes the engine to read-only; a disk fault on the *read*
#: path while already degraded fails it outright.  Reopening the
#: directory runs recovery and yields a fresh, healthy engine.
HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded-read-only"
HEALTH_FAILED = "failed"


@dataclass(frozen=True)
class HealthReport:
    """What :meth:`ForkBase.health` returns."""

    state: str
    reason: Optional[str] = None

    @property
    def writable(self) -> bool:
        return self.state == HEALTH_HEALTHY


def _writable_verb(fn: Callable[..., T]) -> Callable[..., T]:
    """Gate a mutating verb on engine health and degrade on disk faults.

    A :class:`DiskFullError` passes through untouched: ENOSPC exhausts
    its bounded retries with the op cleanly un-acked, so the engine
    stays healthy and the caller may free space and try again.  A
    :class:`DiskFaultError` means state on disk can no longer be
    trusted to advance: the engine drops to read-only.
    """

    @functools.wraps(fn)
    def wrapper(self: "ForkBase", *args: Any, **kwargs: Any) -> T:
        self._check_writable()
        try:
            return fn(self, *args, **kwargs)
        except DiskFaultError as exc:
            self._degrade(str(exc))
            raise

    return wrapper


@dataclass(frozen=True)
class VersionInfo:
    """What a Put/Merge returns: the stamped version and its context."""

    key: str
    branch: str
    uid: Uid
    type_name: str
    author: str
    message: str

    @property
    def version(self) -> str:
        """Base32 rendering of the uid (the demo UI's version string)."""
        return self.uid.base32()

    def __repr__(self) -> str:
        return f"VersionInfo({self.key!r}@{self.branch}: {self.uid.short(16)})"


class ForkBase:
    """Git-for-data engine over an immutable chunk store."""

    def __init__(
        self,
        store: Optional[ChunkStore] = None,
        author: str = "anonymous",
        clock: Optional[Callable[[], float]] = None,
        retry: Optional[RetryPolicy] = None,
        self_heal: bool = True,
    ) -> None:
        self.store = store if store is not None else InMemoryStore()
        self.graph = VersionGraph(self.store)
        self.branch_table = BranchTable()
        self.author = author
        # Commit timestamps are metadata, not identity: the wall-clock
        # default is the injectable-clock escape hatch, not a hashing input.
        self._clock = clock if clock is not None else time.time  # fbcheck: ignore[FB-DETERM]
        self._directory: Optional[str] = None
        #: Open handle on ``<directory>/.lock`` while this engine holds the
        #: single-writer advisory lock (durable engines only).
        self._lock_handle: Optional[IO[str]] = None
        #: Write-ahead commit journal (durable engines only): every head
        #: mutation is recorded here before it is acknowledged.
        self._journal: Optional[CommitJournal] = None
        #: Last journal sequence number issued (or recovered).
        self._seq = 0
        #: Journal size (bytes) beyond which a commit triggers compaction.
        self._journal_limit = 1 << 20
        #: Transparent retry for transient store faults on read verbs
        #: (None disables; the default never sleeps).
        self.retry = retry if retry is not None else RetryPolicy.instant()
        #: On a detected-corrupt read, scrub the store (quarantine + repair
        #: where replicas allow) and retry once — the read then returns
        #: healed data or an honest ChunkNotFoundError, never wrong bytes.
        self.self_heal = self_heal
        #: Disk-fault health machine: HEALTHY → DEGRADED_READ_ONLY → FAILED.
        self._health = HEALTH_HEALTHY
        self._health_reason: Optional[str] = None

    # -- health machine -----------------------------------------------------------

    def health(self) -> HealthReport:
        """Current engine health (see :class:`HealthReport`)."""
        return HealthReport(self._health, self._health_reason)

    def _degrade(self, reason: str) -> None:
        """Demote to read-only after a write-path disk fault (one-way)."""
        if self._health == HEALTH_HEALTHY:
            self._health = HEALTH_DEGRADED
            self._health_reason = reason

    def _fail(self, reason: str) -> None:
        """Terminal state: the read path faulted while already degraded."""
        if self._health != HEALTH_FAILED:
            self._health = HEALTH_FAILED
            self._health_reason = reason

    def _check_writable(self) -> None:
        if self._health != HEALTH_HEALTHY:
            raise ReadOnlyError(self._health, self._health_reason)

    def _guarded(self, fn: Callable[[], T]) -> T:
        """Run a read verb with transient retry and corruption self-healing."""
        try:
            return self.retry.call(fn) if self.retry is not None else fn()
        except ChunkCorruptionError:
            if not self.self_heal:
                raise
            self.scrub()
            return self.retry.call(fn) if self.retry is not None else fn()
        except DiskFaultError as exc:
            if self._health == HEALTH_DEGRADED:
                self._fail(str(exc))
            raise

    # -- persistence -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        author: str = "anonymous",
        fsync: str = "batch",
        journal_limit: int = 1 << 20,
        backend: str = "auto",
        compression: str = "auto",
        node_cache: int = 0,
    ) -> "ForkBase":
        """Open (or create) a durable engine rooted at ``directory``.

        Chunks live in an append-only durable store — ``backend`` picks
        one-record-per-read :class:`FileStore` (``"file"``, the default
        for fresh directories) or mmap-backed, compressed
        :class:`~repro.store.packstore.PackStore` (``"pack"``);
        ``"auto"`` detects which layout already lives on disk.  Both
        yield bit-identical uids and roots — the backend is invisible
        above the chunk layer.  ``compression`` is the pack codec policy
        (``auto`` / ``zstd`` / ``zlib`` / ``none``) and ``node_cache``
        (entries; 0 disables) layers a decoded-node LRU on top for hot
        tree descents.  Branch heads live in ``branches.json`` next to
        the chunks (the client-side head record of the paper's threat
        model), kept crash-consistent by a write-ahead commit journal
        (``journal.wal``): recovery loads the last heads snapshot and
        replays every journal record it does not yet cover.  ``fsync``
        is the journal's durability policy (``always`` / ``batch`` /
        ``never``); ``journal_limit`` is the size at which a commit
        triggers snapshot compaction.

        The directory is guarded by an advisory ``fcntl.flock`` on
        ``<directory>/.lock``: a second live process opening the same
        directory gets :class:`~repro.errors.EngineLockedError` instead
        of interleaving journal appends.  The OS releases the lock when
        its holder dies, so a stale ``.lock`` file never wedges the
        store.
        """
        os.makedirs(directory, exist_ok=True)
        lock_handle = cls._acquire_lock(directory)
        try:
            chunk_dir = os.path.join(directory, "chunks")
            store = cls._open_store(chunk_dir, backend, compression, node_cache)
            engine = cls(store, author=author)
            engine._lock_handle = lock_handle
            engine._directory = directory
            engine._journal_limit = journal_limit
            table = BranchTable()
            snapshot_seq = 0
            heads_path = os.path.join(directory, "branches.json")
            if os.path.exists(heads_path):
                try:
                    read_check(heads_path, label="branches.json")
                    with open(heads_path, "r", encoding="utf-8") as handle:
                        data = json.load(handle)
                except OSError as exc:
                    raise map_os_error(exc, "read", heads_path) from exc
                if isinstance(data, dict) and "heads" in data:
                    snapshot_seq = int(data.get("seq", 0))
                    table = BranchTable.from_dict(data["heads"])
                else:  # legacy snapshot: the bare heads dict, pre-journal
                    table = BranchTable.from_dict(data)
            journal = CommitJournal(os.path.join(directory, "journal.wal"), fsync=fsync)
            engine._seq = replay_into(table, journal.records, after_seq=snapshot_seq)
            engine.branch_table = table
            engine._journal = journal
        except BaseException:
            cls._release_lock(lock_handle)
            raise
        return engine

    @staticmethod
    def _open_store(
        chunk_dir: str, backend: str, compression: str, node_cache: int
    ) -> ChunkStore:
        """Build the durable chunk store for :meth:`open`.

        ``auto`` keeps reopen honest: an existing layout on disk decides
        the backend, and a *fresh* directory defaults to the file layout
        (seed-compatible) — overridable via the ``FORKBASE_BACKEND``
        environment variable, which is how CI runs the whole suite against
        each backend.  Asking explicitly for the wrong backend on a
        populated directory is an :class:`~repro.errors.EngineError`
        rather than a silently empty store.
        """
        file_layout = os.path.isdir(os.path.join(chunk_dir, "segments"))
        pack_layout = os.path.isdir(os.path.join(chunk_dir, "packs"))
        if backend == "auto":
            if pack_layout and file_layout:
                raise EngineError(
                    f"{chunk_dir} holds both a file layout (segments/) and "
                    f"a pack layout (packs/); open with an explicit backend"
                )
            if pack_layout:
                backend = "pack"
            elif file_layout:
                backend = "file"
            else:
                backend = os.environ.get("FORKBASE_BACKEND", "file")
        elif backend == "file" and pack_layout and not file_layout:
            raise EngineError(
                f"{chunk_dir} holds a pack-layout store; open with "
                f"backend='pack' (or 'auto')"
            )
        elif backend == "pack" and file_layout and not pack_layout:
            raise EngineError(
                f"{chunk_dir} holds a file-layout store; open with "
                f"backend='file' (or 'auto')"
            )
        store: ChunkStore
        if backend == "file":
            store = FileStore(chunk_dir)
        elif backend == "pack":
            store = PackStore(chunk_dir, compression=compression)
        else:
            raise EngineError(f"unknown storage backend {backend!r}")
        if node_cache:
            store = NodeCacheStore(store, capacity=node_cache)
        return store

    @staticmethod
    def _acquire_lock(directory: str) -> Optional[IO[str]]:
        """Take the single-writer advisory lock on ``<directory>/.lock``.

        ``flock`` is bound to the open file description, so the OS drops
        the lock the moment the holder exits or crashes — stale lock
        files are harmless.  Returns None where ``fcntl`` is unavailable
        (no advisory locking on this platform).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return None
        handle = open(os.path.join(directory, ".lock"), "a+", encoding="utf-8")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            handle.close()
            # Contention is the only OSError that means "locked"; a disk
            # fault here must not masquerade as a second live writer.
            if exc.errno in (errno.EAGAIN, errno.EACCES, errno.EWOULDBLOCK):
                raise EngineLockedError(directory) from None
            raise map_os_error(exc, "flock", directory) from exc
        return handle

    @staticmethod
    def _release_lock(handle: Optional[IO[str]]) -> None:
        """Release and close the advisory lock handle (idempotent)."""
        if handle is None or handle.closed:
            return
        try:
            if fcntl is not None:  # pragma: no branch
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _journal_op(
        self, op: str, undo: Optional[Callable[[], None]] = None, **fields: object
    ) -> None:
        """Append one head mutation to the commit journal (then maybe compact).

        The in-memory table has already applied (and CAS-validated) the
        mutation; the journal append makes it durable before the verb
        returns — a crash in between loses only an *unacknowledged* op.
        If the append fails on a disk fault, ``undo`` rolls the in-memory
        table back so it matches what recovery will reconstruct: the verb
        raises with the op cleanly un-acked, never half-applied.
        """
        if self._journal is None:
            return
        self._seq += 1
        record: Dict[str, object] = {"op": op, "seq": self._seq}
        record.update(fields)
        try:
            self._journal.append(record)
        except (DiskFullError, DiskFaultError):
            self._seq -= 1
            if undo is not None:
                undo()
            raise
        if self._journal.size() >= self._journal_limit:
            try:
                self._compact()
            except DiskFullError:
                # Deferred, not lost: the op itself is acked and durable
                # in the journal; the snapshot rewrite just could not fit.
                # The journal keeps growing until space frees up.
                pass

    def _compact(self) -> None:
        """Rewrite the heads snapshot durably, then truncate the journal.

        Ordering is the whole crash-safety argument: the snapshot
        (stamped with the last journaled sequence number) is fully
        durable *before* the journal is truncated, and replay skips
        records the snapshot covers — a crash anywhere in between loses
        nothing and double-applies nothing.
        """
        if self._directory is None:
            return
        heads_path = os.path.join(self._directory, "branches.json")
        tmp = heads_path + ".tmp"
        payload = json.dumps(
            {
                "format": "forkbase-heads/2",
                "seq": self._seq,
                "heads": self.branch_table.to_dict(),
            },
            indent=2,
            sort_keys=True,
        ).encode("utf-8")
        with open(tmp, "wb") as handle:
            crashing_write(handle, payload, kind="snapshot-write", label="branches.json")
            crashpoint("snapshot-fsync", "branches.json")
            fsync_file(handle)
        crashpoint("snapshot-replace", "branches.json")
        durable_replace(tmp, heads_path)
        if self._journal is not None and not self._journal.closed:
            self._journal.reset()

    def close(self) -> None:
        """Persist branch heads (if durable) and close the store.

        A degraded or failed engine does **not** rewrite snapshots over a
        faulty device — it abandons, leaving the journal exactly as the
        last successful append left it; the next :meth:`open` recovers.
        """
        if self._health != HEALTH_HEALTHY:
            self.abandon()
            return
        try:
            if self._directory is not None:
                try:
                    self._compact()
                    if self._journal is not None:
                        self._journal.close()
                        self._journal = None
                except (DiskFullError, DiskFaultError) as exc:
                    self._degrade(str(exc))
                    self.abandon()
                    raise
            try:
                self.store.close()
            except (DiskFullError, DiskFaultError) as exc:
                self._degrade(str(exc))
                self.abandon()
                raise
        finally:
            self._release_lock(self._lock_handle)
            self._lock_handle = None

    def abandon(self) -> None:
        """Drop the engine without persisting anything (crash simulation).

        The in-process SIGKILL analogue for tests: OS handles are
        released, no heads snapshot is written, and the journal stays
        exactly as the last append left it — recovery happens in the
        next :meth:`open`.
        """
        if self._journal is not None:
            self._journal.abandon()
            self._journal = None
        self.store.abandon()
        self._release_lock(self._lock_handle)
        self._lock_handle = None

    def __enter__(self) -> "ForkBase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- resolution helpers --------------------------------------------------------

    def _resolve(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> Uid:
        """Resolve a (branch | version) reference to a version uid."""
        if version is not None:
            uid = Uid.parse(version) if isinstance(version, str) else version
            if not self.graph.exists(uid):
                raise UnknownKeyError(f"{key}@{uid.short(16)}")
            return uid
        branch = branch or DEFAULT_BRANCH
        return self.branch_table.head(key, branch)

    def _load_fnode(
        self, key: str, branch: Optional[str], version: Optional[Union[Uid, str]]
    ) -> FNode:
        return self.graph.load(self._resolve(key, branch, version))

    # -- core verbs -------------------------------------------------------------------

    @_writable_verb
    def put(
        self,
        key: str,
        value: Union[PyValue, FObject],
        branch: str = DEFAULT_BRANCH,
        message: str = "",
        author: Optional[str] = None,
    ) -> VersionInfo:
        """Store a new version of ``key`` on ``branch``.

        The first Put on a branch creates it (from nothing for a new key).
        Every Put is "stamped with a unique version that is appended to
        the corresponding branch" (§III-C).
        """
        obj = wrap(self.store, value)
        bases: Tuple[Uid, ...] = ()
        expected: Optional[Uid] = None
        if self.branch_table.has_branch(key, branch):
            parent_uid = self.branch_table.head(key, branch)
            parent = self.graph.load(parent_uid)
            if parent.type_name != obj.TYPE_NAME:
                raise TypeMismatchError(
                    f"{key!r} is {parent.type_name}, cannot put {obj.TYPE_NAME}"
                )
            bases = (parent_uid,)
            expected = parent_uid
        fnode = FNode(
            key=key,
            type_name=obj.TYPE_NAME,
            value_root=obj.root,
            bases=bases,
            author=author or self.author,
            message=message,
            timestamp=float(self._clock()),
        )
        uid = self.graph.commit(fnode)
        # CAS against the parent this commit was derived from: if another
        # writer moved the head in between, fail instead of orphaning them.
        self.branch_table.set_head(key, branch, uid, expected=expected)

        def _undo() -> None:
            if expected is not None:
                self.branch_table.set_head(key, branch, expected)
            else:
                self.branch_table.delete(key, branch)

        self._journal_op(
            "set-head",
            key=key,
            branch=branch,
            head=uid.base32(),
            prev=expected.base32() if expected is not None else None,
            undo=_undo,
        )
        return VersionInfo(key, branch, uid, obj.TYPE_NAME, fnode.author, message)

    def get(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> FObject:
        """Fetch the typed object at a branch head or explicit version."""

        def read() -> FObject:
            fnode = self._load_fnode(key, branch, version)
            return load_object(self.store, fnode.type_name, fnode.value_root)

        return self._guarded(read)

    def get_value(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> PyValue:
        """Like :meth:`get` but materialized to a plain Python value."""
        return self._guarded(lambda: unwrap(self.get(key, branch, version)))

    def head(self, key: str, branch: str = DEFAULT_BRANCH) -> Uid:
        """Current head version of a branch."""
        return self.branch_table.head(key, branch)

    def latest(self, key: str) -> Dict[str, Uid]:
        """All branch heads for a key."""
        return self.branch_table.heads(key)

    def keys(self) -> List[str]:
        """All data keys (the List verb)."""
        return self.branch_table.keys()

    def exists(self, key: str, branch: Optional[str] = None) -> bool:
        """Does the key (and optionally the branch) exist?"""
        if branch is None:
            return key in self.branch_table.keys()
        return self.branch_table.has_branch(key, branch)

    def branches(self, key: str) -> List[str]:
        """Branch names for a key."""
        if key not in self.branch_table.keys():
            raise UnknownKeyError(key)
        return self.branch_table.branches(key)

    @_writable_verb
    def branch(
        self,
        key: str,
        new_branch: str,
        from_branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ) -> Uid:
        """Fork a branch from another branch's head or from a version."""
        head = self._resolve(key, from_branch, version)
        self.branch_table.create(key, new_branch, head)
        self._journal_op(
            "create-branch",
            key=key,
            branch=new_branch,
            head=head.base32(),
            undo=lambda: self.branch_table.delete(key, new_branch),
        )
        return head

    fork = branch  # the paper uses both words for the same operation

    @_writable_verb
    def rename_branch(self, key: str, old: str, new: str) -> None:
        """Rename a branch (head preserved)."""
        self.branch_table.rename(key, old, new)
        self._journal_op(
            "rename-branch",
            key=key,
            old=old,
            new=new,
            undo=lambda: self.branch_table.rename(key, new, old),
        )

    @_writable_verb
    def delete_branch(self, key: str, branch: str) -> None:
        """Drop a branch head; its versions remain addressable."""
        head = self.branch_table.head(key, branch)
        self.branch_table.delete(key, branch)
        self._journal_op(
            "delete-branch",
            key=key,
            branch=branch,
            undo=lambda: self.branch_table.set_head(key, branch, head),
        )

    @_writable_verb
    def rename(self, key: str, new_key: str) -> None:
        """Rename a data key (branch heads move; history keeps old name)."""
        self.branch_table.rename_key(key, new_key)
        self._journal_op(
            "rename-key",
            old=key,
            new=new_key,
            undo=lambda: self.branch_table.rename_key(new_key, key),
        )

    @_writable_verb
    def drop(self, key: str) -> None:
        """Forget every branch head of ``key`` (versions stay addressable)."""
        if key not in self.branch_table.keys():
            raise UnknownKeyError(key)
        heads = self.branch_table.heads(key)

        def _undo() -> None:
            for branch, head in heads.items():
                self.branch_table.set_head(key, branch, head)

        self.branch_table.drop_key(key)
        self._journal_op("drop-key", key=key, undo=_undo)

    def history(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
        limit: Optional[int] = None,
    ) -> List[FNode]:
        """Versions reachable from a head, newest first."""
        head = self._resolve(key, branch, version)
        return self._guarded(lambda: list(self.graph.history(head, limit=limit)))

    def meta(self, key: str, branch: str = DEFAULT_BRANCH) -> Dict[str, object]:
        """The Meta verb: descriptive facts about a branch head."""
        head = self.branch_table.head(key, branch)
        fnode = self.graph.load(head)
        obj = load_object(self.store, fnode.type_name, fnode.value_root)
        size: Optional[int]
        if isinstance(obj, (FMap, FSet, FList)):
            size = len(obj)
        elif isinstance(obj, FBlob):
            size = obj.size()
        else:
            size = None
        return {
            "key": key,
            "branch": branch,
            "version": head.base32(),
            "type": fnode.type_name,
            "author": fnode.author,
            "message": fnode.message,
            "timestamp": fnode.timestamp,
            "bases": [base.base32() for base in fnode.bases],
            "size": size,
            "branches": self.branch_table.branches(key),
        }

    # -- diff / merge -------------------------------------------------------------------

    def diff(
        self,
        key: str,
        branch_a: Optional[str] = None,
        branch_b: Optional[str] = None,
        version_a: Optional[Union[Uid, str]] = None,
        version_b: Optional[Union[Uid, str]] = None,
    ) -> TreeDiff:
        """Differential query between two branches/versions of one key.

        Supported for map and set values (the POS-Tree-backed types); the
        result prunes shared sub-trees, so cost is O(D log N).
        """
        fnode_a = self._load_fnode(key, branch_a, version_a)
        fnode_b = self._load_fnode(key, branch_b, version_b)
        if fnode_a.type_name != fnode_b.type_name:
            raise TypeMismatchError(
                f"cannot diff {fnode_a.type_name} against {fnode_b.type_name}"
            )
        obj_a = load_object(self.store, fnode_a.type_name, fnode_a.value_root)
        obj_b = load_object(self.store, fnode_b.type_name, fnode_b.value_root)
        if isinstance(obj_a, FMap):
            return obj_a.diff(obj_b)
        if isinstance(obj_a, FSet):
            from repro.postree.diff import diff_trees

            return diff_trees(obj_a.tree, obj_b.tree)
        raise TypeMismatchError(
            f"differential query unsupported for type {fnode_a.type_name}"
        )

    @_writable_verb
    def merge(
        self,
        key: str,
        from_branch: str,
        into_branch: str = DEFAULT_BRANCH,
        resolver: Optional[Resolver] = None,
        message: str = "",
        author: Optional[str] = None,
    ) -> VersionInfo:
        """Three-way merge of ``from_branch`` into ``into_branch``.

        The merge base is the lowest common ancestor in the derivation
        graph.  Fast-forwards are detected (head simply moves).  Map/set
        values merge at sub-tree granularity; other types merge only when
        one side is unchanged (or via ``resolver`` on whole values).
        """
        head_into = self.branch_table.head(key, into_branch)
        head_from = self.branch_table.head(key, from_branch)
        if head_into == head_from or self.graph.is_ancestor(head_from, head_into):
            fnode = self.graph.load(head_into)
            return VersionInfo(
                key, into_branch, head_into, fnode.type_name, fnode.author,
                "already up to date",
            )
        if self.graph.is_ancestor(head_into, head_from):
            # Fast-forward: no new commit needed, the head just advances.
            self.branch_table.set_head(key, into_branch, head_from, expected=head_into)
            self._journal_op(
                "set-head",
                key=key,
                branch=into_branch,
                head=head_from.base32(),
                prev=head_into.base32(),
                undo=lambda: self.branch_table.set_head(key, into_branch, head_into),
            )
            fnode = self.graph.load(head_from)
            return VersionInfo(
                key, into_branch, head_from, fnode.type_name, fnode.author,
                "fast-forward",
            )

        base_uid = self.graph.lowest_common_ancestor(head_into, head_from)
        if base_uid is None:
            raise EngineError(
                f"no common ancestor between {into_branch!r} and {from_branch!r}"
            )
        fnode_base = self.graph.load(base_uid)
        fnode_a = self.graph.load(head_into)
        fnode_b = self.graph.load(head_from)
        if not (fnode_a.type_name == fnode_b.type_name == fnode_base.type_name):
            raise TypeMismatchError("cannot merge versions of different types")

        merged_root = self._merge_values(fnode_base, fnode_a, fnode_b, resolver)
        fnode = FNode(
            key=key,
            type_name=fnode_a.type_name,
            value_root=merged_root,
            bases=(head_into, head_from),
            author=author or self.author,
            message=message or f"merge {from_branch} into {into_branch}",
            timestamp=float(self._clock()),
        )
        uid = self.graph.commit(fnode)
        self.branch_table.set_head(key, into_branch, uid, expected=head_into)
        self._journal_op(
            "set-head",
            key=key,
            branch=into_branch,
            head=uid.base32(),
            prev=head_into.base32(),
            undo=lambda: self.branch_table.set_head(key, into_branch, head_into),
        )
        return VersionInfo(
            key, into_branch, uid, fnode.type_name, fnode.author, fnode.message
        )

    def _merge_values(
        self,
        base: FNode,
        side_a: FNode,
        side_b: FNode,
        resolver: Optional[Resolver],
    ) -> Uid:
        """Merge two value roots against a base; return the merged root."""
        if side_a.value_root == side_b.value_root:
            return side_a.value_root
        if side_a.value_root == base.value_root:
            return side_b.value_root
        if side_b.value_root == base.value_root:
            return side_a.value_root
        obj_base = load_object(self.store, base.type_name, base.value_root)
        obj_a = load_object(self.store, side_a.type_name, side_a.value_root)
        obj_b = load_object(self.store, side_b.type_name, side_b.value_root)
        if isinstance(obj_a, FMap):
            merged, _ = obj_a.merge(obj_base, obj_b, resolver)
            return merged.root
        if isinstance(obj_a, FSet):
            from repro.postree.merge import three_way_merge

            result = three_way_merge(
                obj_base.tree, obj_a.tree, obj_b.tree, resolver
            )
            return result.root
        # Whole-value conflict for non-mergeable types.
        conflict = MergeConflict(
            key=base.key.encode("utf-8"),
            base_value=bytes(base.value_root),
            a_value=bytes(side_a.value_root),
            b_value=bytes(side_b.value_root),
        )
        if resolver is None:
            raise MergeConflictError([conflict])
        choice = resolver(conflict)
        if choice == conflict.a_value:
            return side_a.value_root
        if choice == conflict.b_value:
            return side_b.value_root
        raise MergeConflictError([conflict])

    def diff_objects(
        self,
        key_a: str,
        key_b: str,
        branch_a: Optional[str] = None,
        branch_b: Optional[str] = None,
        version_a: Optional[Union[Uid, str]] = None,
        version_b: Optional[Union[Uid, str]] = None,
    ) -> TreeDiff:
        """Differential query across two *different* keys.

        The demo loads two near-identical CSVs as Dataset-1 and Dataset-2
        and compares them; structural invariance makes this exactly as
        cheap as a branch diff — the trees share pages purely by content.
        """
        fnode_a = self._load_fnode(key_a, branch_a, version_a)
        fnode_b = self._load_fnode(key_b, branch_b, version_b)
        if fnode_a.type_name != fnode_b.type_name:
            raise TypeMismatchError(
                f"cannot diff {fnode_a.type_name} against {fnode_b.type_name}"
            )
        obj_a = load_object(self.store, fnode_a.type_name, fnode_a.value_root)
        obj_b = load_object(self.store, fnode_b.type_name, fnode_b.value_root)
        if isinstance(obj_a, (FMap, FSet)):
            from repro.postree.diff import diff_trees

            return diff_trees(obj_a.tree, obj_b.tree)
        raise TypeMismatchError(
            f"differential query unsupported for type {fnode_a.type_name}"
        )

    # -- maintenance & integrity --------------------------------------------------------

    def verify(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
        check_history: bool = True,
    ):
        """Client-side tamper-evidence validation of a head or version.

        Returns a :class:`repro.security.verify.VerificationReport`.
        """
        from repro.security.verify import Verifier

        uid = self._resolve(key, branch, version)
        return Verifier(self.store).verify_version(uid, check_history=check_history)

    def scrub(self, **kwargs):
        """One integrity-scrub pass over the chunk store.

        Re-hashes every materialized copy against its content address,
        quarantines rot, and (on replicated stores) repairs from healthy
        replicas.  Returns a :class:`repro.store.scrub.ScrubReport`.
        """
        from repro.store.scrub import scrub

        return scrub(self.store, **kwargs)

    @_writable_verb
    def collect_garbage(self, dry_run: bool = False, compact: bool = False):
        """Sweep chunks unreachable from any branch head (see
        :mod:`repro.store.gc`).  ``compact=True`` additionally rewrites a
        pack-backed store's segments so swept bytes return to the OS."""
        from repro.store.gc import collect_garbage

        return collect_garbage(self, dry_run=dry_run, compact=compact)

    # -- storage accounting ----------------------------------------------------------

    def storage_stats(self):
        """The chunk store's accounting (Fig. 4 / Table I numbers)."""
        return self.store.stats

    def storage_snapshot(self):
        """One self-contained :class:`~repro.store.stats.StoreStats` copy:
        logical/physical bytes, dedup ratio, cache hit rate, and I/O
        amplification — the row the storage benches report per backend."""
        return self.store.stats_snapshot()

    def physical_size(self) -> int:
        """Total materialized payload bytes."""
        return self.store.physical_size()
