"""A simulated storage node: an in-memory chunk store with a health flag
and simple service-time accounting."""

from __future__ import annotations

from typing import Optional

from repro.chunk import Chunk, Uid
from repro.errors import NodeDownError
from repro.store.base import ChunkStore
from repro.store.memory import InMemoryStore


class StorageNode:
    """One member of the simulated cluster.

    ``store`` defaults to a fresh :class:`InMemoryStore`; fault-injection
    tests pass a :class:`~repro.faults.store.FaultyStore` instead, so the
    node misbehaves exactly as its plan dictates.
    """

    def __init__(
        self,
        name: str,
        latency_ms: float = 0.2,
        store: Optional[ChunkStore] = None,
    ) -> None:
        self.name = name
        self.store = store if store is not None else InMemoryStore()
        self.up = True
        #: Simulated per-request service time; accumulated, never slept.
        self.latency_ms = latency_ms
        self.simulated_ms = 0.0
        self.requests = 0

    def _touch(self) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.name} is down")
        self.requests += 1
        self.simulated_ms += self.latency_ms

    def ping(self) -> bool:
        """Heartbeat: the cheapest liveness check (raises if down)."""
        self._touch()
        return True

    def put(self, chunk: Chunk) -> bool:
        """Store a replica (raises if the node is down)."""
        self._touch()
        return self.store.put(chunk)

    def get(self, uid: Uid) -> Optional[Chunk]:
        """Fetch a replica or None (raises if the node is down)."""
        self._touch()
        return self.store.get_maybe(uid)

    def has(self, uid: Uid) -> bool:
        """Replica presence (raises if the node is down)."""
        self._touch()
        return self.store.has(uid)

    def drop(self, uid: Uid) -> bool:
        """Remove a replica (management-plane call, works while down).

        Used by rebalancing (shedding strays) and by scrub/read-repair
        (quarantining a rotten copy before re-replication).
        """
        return self.store.delete(uid)

    def chunk_count(self) -> int:
        """Replicas held (management-plane call, works while down)."""
        return len(self.store)

    def bytes_held(self) -> int:
        """Payload bytes held (management-plane call, works while down)."""
        return self.store.physical_size()

    def kill(self) -> None:
        """Fail the node."""
        self.up = False

    def revive(self, wipe: bool = False) -> None:
        """Bring the node back, optionally with its disk wiped."""
        self.up = True
        if wipe:
            if hasattr(self.store, "clear"):
                self.store.clear()  # type: ignore[attr-defined]
            else:
                for uid in self.store.ids():
                    self.store.delete(uid)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"StorageNode({self.name}, {state}, {self.chunk_count()} chunks)"
