"""A simulated storage node: an in-memory chunk store with a health flag
and simple service-time accounting."""

from __future__ import annotations

from typing import Optional

from repro.chunk import Chunk, Uid
from repro.errors import NodeDownError
from repro.store.memory import InMemoryStore


class StorageNode:
    """One member of the simulated cluster."""

    def __init__(self, name: str, latency_ms: float = 0.2) -> None:
        self.name = name
        self.store = InMemoryStore()
        self.up = True
        #: Simulated per-request service time; accumulated, never slept.
        self.latency_ms = latency_ms
        self.simulated_ms = 0.0
        self.requests = 0

    def _touch(self) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.name} is down")
        self.requests += 1
        self.simulated_ms += self.latency_ms

    def put(self, chunk: Chunk) -> bool:
        """Store a replica (raises if the node is down)."""
        self._touch()
        return self.store.put(chunk)

    def get(self, uid: Uid) -> Optional[Chunk]:
        """Fetch a replica or None (raises if the node is down)."""
        self._touch()
        return self.store.get_maybe(uid)

    def has(self, uid: Uid) -> bool:
        """Replica presence (raises if the node is down)."""
        self._touch()
        return self.store.has(uid)

    def chunk_count(self) -> int:
        """Replicas held (management-plane call, works while down)."""
        return len(self.store)

    def bytes_held(self) -> int:
        """Payload bytes held (management-plane call, works while down)."""
        return self.store.physical_size()

    def kill(self) -> None:
        """Fail the node."""
        self.up = False

    def revive(self, wipe: bool = False) -> None:
        """Bring the node back, optionally with its disk wiped."""
        self.up = True
        if wipe:
            self.store.clear()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"StorageNode({self.name}, {state}, {self.chunk_count()} chunks)"
