"""Tamper attribution: per-(origin, node) scorecards and quarantine.

Detection without attribution is just a retry.  The cluster already
*survives* a replica that serves wrong bytes — read repair re-fetches from
a sibling — but nothing remembers *which* replica lied, so a byzantine
node (``repro.faults.byzantine``) can keep poisoning reads, acks, and
anti-entropy forever at retry cost.  This module is the memory: every
digest-mismatched or withheld read is recorded against the serving
replica as portable evidence, and a state machine escalates

    TRUSTED  →  SUSPECT  →  QUARANTINED

where quarantined nodes are excluded from quorums, hedges, repair
sourcing, and hint replay until :meth:`ClusterStore.readmit` completes a
fully re-verified resync.

The hard problem is discrimination: honest disks rot too (the scrub plane
models exactly that), and an honest-but-rotten replica must *never* reach
QUARANTINED.  The scorecard therefore separates two evidence grades:

- **weak events** — a single corrupt/withheld/unproducible read.  Rot
  produces these; they only raise TRUSTED to SUSPECT (telemetry, no
  routing effect) and feed the evidence log.
- **strikes** — patterns rot cannot plausibly produce:

  * a *post-repair audit failure*: immediately after a read-repair write
    that the writer verified by read-back, ``audit_reads`` consecutive
    management-plane re-reads all fail.  Rot striking the same fresh
    chunk that many times in a row has probability ~(rate²)ᵃᵘᵈⁱᵗˢ.
  * a *forged-digest audit failure*: anti-entropy spot-checks a claimed
    uid behind agreeing digests and the node cannot substantiate it.
  * an *unverified-write run*: ``write_strike_run`` consecutive write
    exchanges whose read-back never verified.  Any verified write
    resets the run.

QUARANTINED requires ``quarantine_after`` strikes on *distinct* uids, so
even a pathological single-chunk coincidence cannot quarantine alone.

Determinism: the board holds no wall-clock time and iterates nothing
unordered — snapshots and evidence replay bit-identically under a fixed
fault seed (FB-DETERM applies to this module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.chunk import Uid

TRUSTED = "trusted"
SUSPECT = "suspect"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class TamperEvidence:
    """One portable attribution record: who served what instead of what.

    ``expected`` is the claimed uid's digest (hex); ``served`` is the
    digest of the bytes actually received, or ``None`` for a withheld /
    missing response.  These records flow out through ``health_report()``,
    the ``Verifier`` report, and ``GET /v1/status`` so an operator (or a
    client that distrusts the provider, per the paper's §III-C) can see
    the lie itself, not just a counter.
    """

    node: str
    uid: Uid
    op: str
    kind: str
    expected: str
    served: Optional[str] = None
    origin: str = ""
    strike: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "uid": self.uid.base32(),
            "op": self.op,
            "kind": self.kind,
            "expected": self.expected,
            "served": self.served,
            "origin": self.origin,
            "strike": self.strike,
        }


class NodeScorecard:
    """Evidence accumulated against one node, and its trust state."""

    __slots__ = (
        "state",
        "weak_events",
        "weak_uids",
        "strikes",
        "strike_uids",
        "consecutive_unverified_writes",
        "verified_writes",
        "clean_audits",
        "by_origin",
        "readmissions",
    )

    def __init__(self) -> None:
        self.state = TRUSTED
        self.weak_events = 0
        self.weak_uids: Set[Uid] = set()
        self.strikes = 0
        self.strike_uids: Set[Uid] = set()
        self.consecutive_unverified_writes = 0
        self.verified_writes = 0
        self.clean_audits = 0
        self.by_origin: Dict[str, int] = {}
        self.readmissions = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "weak_events": self.weak_events,
            "weak_uids": len(self.weak_uids),
            "strikes": self.strikes,
            "strike_uids": len(self.strike_uids),
            "consecutive_unverified_writes": self.consecutive_unverified_writes,
            "verified_writes": self.verified_writes,
            "clean_audits": self.clean_audits,
            "by_origin": dict(sorted(self.by_origin.items())),
            "readmissions": self.readmissions,
        }


@dataclass
class AccountabilityBoard:
    """The cluster-wide tamper scorecard and quarantine state machine.

    Thresholds:

    - ``suspect_after``: weak events before TRUSTED becomes SUSPECT.
    - ``quarantine_after``: distinct-uid strikes before QUARANTINED.
    - ``write_strike_run``: consecutive unverified write exchanges that
      together count as one strike.
    - ``audit_reads``: consecutive post-repair / spot-check re-reads that
      must *all* fail before the audit is strike-grade (consumed by the
      cluster and anti-entropy, recorded here for the report).
    - ``evidence_limit``: ring-buffer bound on retained evidence records;
      ``evidence_total`` keeps the monotonic count so consumers can pull
      increments with :meth:`evidence_since`.
    """

    suspect_after: int = 2
    quarantine_after: int = 2
    write_strike_run: int = 3
    audit_reads: int = 2
    evidence_limit: int = 256
    cards: Dict[str, NodeScorecard] = field(default_factory=dict)
    evidence: List[TamperEvidence] = field(default_factory=list)
    evidence_total: int = 0
    quarantines: int = 0

    # -- recording -----------------------------------------------------------

    def _card(self, node: str) -> NodeScorecard:
        card = self.cards.get(node)
        if card is None:
            card = self.cards[node] = NodeScorecard()
        return card

    def _log(self, record: TamperEvidence) -> None:
        self.evidence.append(record)
        self.evidence_total += 1
        if len(self.evidence) > self.evidence_limit:
            del self.evidence[: len(self.evidence) - self.evidence_limit]

    def record_suspicion(
        self,
        origin: str,
        node: str,
        uid: Uid,
        op: str,
        kind: str,
        served: Optional[str] = None,
    ) -> str:
        """Attribute one weak event (corrupt/withheld read, bad payload).

        Weak evidence never quarantines: honest rot produces it too.  It
        moves TRUSTED to SUSPECT at ``suspect_after`` events, which is
        telemetry only — SUSPECT nodes still serve (scrub and read repair
        fix honest rot in place; quarantining it would shrink quorums for
        no integrity gain).  Returns the node's state after recording.
        """
        card = self._card(node)
        card.weak_events += 1
        card.weak_uids.add(uid)
        if origin:
            card.by_origin[origin] = card.by_origin.get(origin, 0) + 1
        self._log(
            TamperEvidence(
                node=node,
                uid=uid,
                op=op,
                kind=kind,
                expected=uid.hex(),
                served=served,
                origin=origin,
            )
        )
        if card.state == TRUSTED and card.weak_events >= self.suspect_after:
            card.state = SUSPECT
        return card.state

    def record_strike(
        self,
        origin: str,
        node: str,
        uid: Uid,
        op: str,
        kind: str,
        served: Optional[str] = None,
    ) -> str:
        """Attribute quarantine-grade evidence (rot cannot plausibly do this).

        At ``quarantine_after`` strikes on distinct uids the node is
        QUARANTINED: out of quorums, hedges, and repair sourcing until a
        re-verified resync readmits it.  Returns the state after.
        """
        card = self._card(node)
        card.strikes += 1
        card.strike_uids.add(uid)
        if origin:
            card.by_origin[origin] = card.by_origin.get(origin, 0) + 1
        self._log(
            TamperEvidence(
                node=node,
                uid=uid,
                op=op,
                kind=kind,
                expected=uid.hex(),
                served=served,
                origin=origin,
                strike=True,
            )
        )
        if card.state != QUARANTINED and len(card.strike_uids) >= self.quarantine_after:
            card.state = QUARANTINED
            self.quarantines += 1
        return card.state

    def record_unverified_write(self, origin: str, node: str, uid: Uid) -> str:
        """One write exchange exhausted retries with read-back never verifying.

        A single occurrence is weak (transient wire rot during every
        attempt is unlikely but possible); ``write_strike_run`` of them
        *consecutively* — with no verified write in between — is the
        fake-ack signature and converts to a strike.
        """
        card = self._card(node)
        card.consecutive_unverified_writes += 1
        if card.consecutive_unverified_writes >= self.write_strike_run:
            card.consecutive_unverified_writes = 0
            return self.record_strike(
                origin, node, uid, op="put", kind="unverified-writes"
            )
        return self.record_suspicion(
            origin, node, uid, op="put", kind="unverified-write"
        )

    def record_verified_write(self, node: str) -> None:
        """A write read back and verified — resets the fake-ack run."""
        card = self._card(node)
        card.verified_writes += 1
        card.consecutive_unverified_writes = 0

    def record_clean_audit(self, node: str) -> None:
        """A post-repair or spot-check audit found valid bytes."""
        self._card(node).clean_audits += 1

    # -- queries -------------------------------------------------------------

    def state(self, node: str) -> str:
        card = self.cards.get(node)
        return card.state if card is not None else TRUSTED

    def is_quarantined(self, node: str) -> bool:
        return self.state(node) == QUARANTINED

    def quarantined(self) -> List[str]:
        return sorted(
            name for name, card in self.cards.items() if card.state == QUARANTINED
        )

    def evidence_for(self, node: str) -> List[TamperEvidence]:
        return [record for record in self.evidence if record.node == node]

    def evidence_since(self, total: int) -> List[TamperEvidence]:
        """Records logged after the given ``evidence_total`` watermark.

        Older-than-retained increments return only what the ring buffer
        still holds — consumers (the ``Verifier``) snapshot the watermark
        immediately before the work they want evidence for.
        """
        fresh = self.evidence_total - total
        if fresh <= 0:
            return []
        return list(self.evidence[-min(fresh, len(self.evidence)):])

    # -- re-admission --------------------------------------------------------

    def readmit(self, node: str) -> None:
        """Re-admit a quarantined node after a fully re-verified resync.

        The node re-enters at SUSPECT (probation): its strike ledger is
        cleared so fresh evidence is judged on its own, but the weak
        history is kept so the scorecard still tells the story.
        """
        card = self._card(node)
        card.state = SUSPECT
        card.strikes = 0
        card.strike_uids.clear()
        card.consecutive_unverified_writes = 0
        card.readmissions += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view for ``health_report()`` / ``GET /v1/status``."""
        return {
            "nodes": {
                name: card.to_dict() for name, card in sorted(self.cards.items())
            },
            "quarantined": self.quarantined(),
            "quarantines": self.quarantines,
            "evidence_total": self.evidence_total,
            "thresholds": {
                "suspect_after": self.suspect_after,
                "quarantine_after": self.quarantine_after,
                "write_strike_run": self.write_strike_run,
                "audit_reads": self.audit_reads,
            },
        }
