"""Merkle anti-entropy: structure-aware replica reconciliation.

The SIRI properties that make Fast Diff O(D log N) (paper §II-B) apply to
replicas too: two copies of the same uid space can be compared by digest
and reconciled by descending only into the parts that differ, instead of
sweeping every chunk on every node the way ``full_sweep_repair`` does.

Each node's holdings are summarized by a :class:`DigestTree`: uids are
bucketed by their **ring position** (the same coordinate placement uses,
so a bucket is a contiguous arc of the ring), each bucket's digest is the
XOR of its member uid digests (order-independent, incremental), and the
buckets are folded into a binary Merkle tree with SHA-256 — the same
``chunk.uid`` hash the whole substrate is built on.  Equal roots mean
equal holdings; a diff descends only through differing interior nodes and
returns exactly the differing buckets.

``sync``/``anti_entropy_pass`` then ship **only the missing or rotten
chunks**: tree construction re-hashes each local copy (reusing the
scrubber's wire-vs-disk discrimination), so a rotted replica drops out of
its node's digest, shows up as a differing bucket, and gets re-shipped
from a healthy peer — O(divergence) transfers, not O(N).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.chunk import Chunk, Uid
from repro.cluster.ring import POSITION_BITS, ring_position
from repro.errors import StoreError, TransientError

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no runtime cycle
    from repro.cluster.cluster import ClusterStore
    from repro.cluster.node import StorageNode

#: 2**8 = 256 leaf buckets: fine enough that 1% divergence on a 10k-chunk
#: store touches a minority of buckets, coarse enough that trees stay tiny.
DEFAULT_DEPTH = 8

_EMPTY_DIGEST = b"\x00" * 32


class DigestTree:
    """A Merkle summary of one node's uid holdings, bucketed by ring arc."""

    __slots__ = ("depth", "buckets", "_levels")

    def __init__(self, depth: int = DEFAULT_DEPTH) -> None:
        if not 1 <= depth <= 16:
            raise ValueError(f"depth must be in [1, 16], got {depth}")
        self.depth = depth
        #: Per-bucket member sets (bucket index -> uids on this arc).
        self.buckets: List[Set[Uid]] = [set() for _ in range(1 << depth)]
        self._levels: Optional[List[List[bytes]]] = None

    @classmethod
    def from_uids(cls, uids: Iterable[Uid], depth: int = DEFAULT_DEPTH) -> "DigestTree":
        """Build a tree over a uid collection."""
        tree = cls(depth)
        for uid in uids:
            tree.add(uid)
        return tree

    def bucket_of(self, uid: Uid) -> int:
        """Which bucket (ring arc) a uid falls into."""
        return ring_position(uid) >> (POSITION_BITS - self.depth)

    def add(self, uid: Uid) -> None:
        """Include a uid (idempotent)."""
        self.buckets[self.bucket_of(uid)].add(uid)
        self._levels = None

    def remove(self, uid: Uid) -> None:
        """Exclude a uid (no-op when absent)."""
        self.buckets[self.bucket_of(uid)].discard(uid)
        self._levels = None

    def bucket_uids(self, index: int) -> Set[Uid]:
        """The member set of one bucket (treat as read-only)."""
        return self.buckets[index]

    def bucket_digest(self, index: int) -> bytes:
        """XOR of member uid digests: order-independent and incremental."""
        acc = 0
        for uid in self.buckets[index]:
            acc ^= int.from_bytes(uid.digest, "big")
        return acc.to_bytes(32, "big")

    def _level_digests(self) -> List[List[bytes]]:
        """All tree levels, root first: levels[0] = [root], levels[depth] = leaves."""
        if self._levels is None:
            leaves = [self.bucket_digest(i) for i in range(1 << self.depth)]
            levels = [leaves]
            while len(levels[0]) > 1:
                below = levels[0]
                levels.insert(
                    0,
                    [
                        hashlib.sha256(below[2 * i] + below[2 * i + 1]).digest()
                        for i in range(len(below) // 2)
                    ],
                )
            self._levels = levels
        return self._levels

    def root(self) -> bytes:
        """The Merkle root: equal roots mean identical holdings."""
        return self._level_digests()[0][0]

    def diff(self, other: "DigestTree") -> Tuple[List[int], int]:
        """Differing bucket indices plus the number of tree nodes compared.

        Descends only into subtrees whose digests differ, so comparing
        two nearly identical trees costs O(divergence · depth) node
        comparisons — the replica-reconciliation analogue of Fast Diff.
        """
        if self.depth != other.depth:
            raise ValueError("cannot diff digest trees of different depth")
        mine = self._level_digests()
        theirs = other._level_digests()
        compared = 0
        differing: List[int] = []
        stack: List[Tuple[int, int]] = [(0, 0)]
        while stack:
            level, index = stack.pop()
            compared += 1
            if mine[level][index] == theirs[level][index]:
                continue
            if level == self.depth:
                differing.append(index)
            else:
                stack.append((level + 1, 2 * index + 1))
                stack.append((level + 1, 2 * index))
        return sorted(differing), compared

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DigestTree):
            return self.depth == other.depth and self.root() == other.root()
        return NotImplemented

    def __repr__(self) -> str:
        return f"DigestTree(depth={self.depth}, uids={len(self)})"


@dataclass
class SyncReport:
    """Counters from one anti-entropy pass (or one pairwise sync).

    ``chunks_transferred`` is the headline number: the torture suite
    asserts it is O(divergence) — strictly below what a full sweep
    touches — and the benchmark reports it next to the sweep baseline.
    """

    #: Queued hints replayed before the Merkle phase (cheap, exact).
    hints_flushed: int = 0
    #: Local copies re-hashed while building digest indexes.
    copies_verified: int = 0
    #: Copies whose bytes failed uid verification and were quarantined.
    rotten_quarantined: int = 0
    #: First-read mismatches a re-read resolved (wire, not disk).
    wire_mismatches: int = 0
    #: Copies skipped because every read attempt failed transiently.
    unreadable: int = 0
    #: Digest trees built (one per source pull; destination trees are
    #: built once and updated incrementally as transfers land).
    trees_built: int = 0
    #: Merkle tree nodes compared across every diff descent.
    tree_nodes_compared: int = 0
    #: Buckets that differed and were opened.
    buckets_differing: int = 0
    #: Candidate uids examined inside differing buckets.
    chunks_examined: int = 0
    #: Replica copies actually shipped between nodes.
    chunks_transferred: int = 0
    #: Transfers abandoned past the retry budget (a later pass retries).
    transfer_failures: int = 0
    #: Directional pulls executed.
    pulls: int = 0
    #: Hint replays rejected on the receiving side (payload failed to
    #: hash to its uid) during this pass's flush phase.
    hints_rejected: int = 0
    #: Live nodes excluded from the pass because they are QUARANTINED.
    quarantined_excluded: int = 0
    #: Self-reported (unverified) index claims spot-check-audited.
    audit_samples: int = 0
    #: Audited claims the node could not substantiate (strike-grade).
    audit_failures: int = 0

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"anti-entropy: {self.hints_flushed} hints flushed, "
            f"{self.pulls} pulls, {self.copies_verified} copies verified, "
            f"{self.tree_nodes_compared} tree nodes compared, "
            f"{self.buckets_differing} buckets differed -> "
            f"{self.chunks_transferred} transferred "
            f"({self.rotten_quarantined} rotten quarantined, "
            f"{self.transfer_failures} failed, "
            f"{self.hints_rejected} hints rejected, "
            f"{self.audit_failures}/{self.audit_samples} audits failed)"
        )


def build_valid_index(
    cluster: "ClusterStore",
    node: "StorageNode",
    report: Optional[SyncReport] = None,
    quarantine: bool = True,
) -> Set[Uid]:
    """Every uid on ``node`` whose bytes re-hash to their address.

    Reuses the scrubber's wire-vs-disk discrimination: a first-read
    mismatch is re-read once, so transient wire corruption does not get a
    healthy copy quarantined.  With ``quarantine`` (the default), copies
    that are rotten *on disk* are dropped on the spot — they re-enter the
    store via the transfer phase, from a peer whose copy verifies.
    """
    from repro.store.scrub import diagnose_copy  # deferred: scrub sits a layer above

    report = report if report is not None else SyncReport()
    valid: Set[Uid] = set()
    for uid in list(node.store.ids()):
        report.copies_verified += 1
        # Fast path: one direct read plus one re-hash covers the healthy
        # majority of copies; anything anomalous falls through to the
        # scrubber's careful retry-and-re-read discrimination below.
        try:
            fast = node.store.get_maybe(uid)
        except StoreError:
            fast = None
        if fast is not None and fast.is_valid():
            valid.add(uid)
            continue
        status, _, resolved = diagnose_copy(node.store, uid, retry=cluster.retry)
        if resolved:
            report.wire_mismatches += 1
        if status == "ok":
            valid.add(uid)
        elif status == "corrupt":
            if quarantine:
                node.drop(uid)
                report.rotten_quarantined += 1
        elif status == "unreadable":
            report.unreadable += 1
        # "missing" (listed but no bytes) simply stays out of the index.
    return valid


def node_index(
    cluster: "ClusterStore", node: "StorageNode", report: SyncReport
) -> Tuple[Set[Uid], bool]:
    """The uid index one node contributes, plus whether it was self-reported.

    Honest nodes have their index *built* here — every copy read back and
    re-hashed by :func:`build_valid_index`, so the digests that enter the
    Merkle comparison are grounded in verified bytes.  A store exposing
    ``claimed_ids`` (the byzantine forgery surface) self-reports instead:
    its claims enter the comparison unverified, exactly as a real node
    computing its own digest tree would, and the returned flag routes it
    through :func:`_audit_index` — trust is earned per-chunk by the
    seeded spot-check, never assumed from the digest.
    """
    claimed = getattr(node.store, "claimed_ids", None)
    if callable(claimed):
        return set(claimed()), True
    return build_valid_index(cluster, node, report), False


def _audit_draw(seed: int, node: str, uid: Uid) -> float:
    """Uniform [0, 1) deciding whether one claimed uid gets audited.

    Hash-derived like every other fault/defense decision, so the sample —
    and therefore detection latency — replays bit-identically from
    ``cluster.audit_seed``.
    """
    hasher = hashlib.sha256()
    hasher.update(b"ae-audit:")
    hasher.update(struct.pack(">q", seed))
    hasher.update(node.encode("utf-8"))
    hasher.update(uid.digest)
    return int.from_bytes(hasher.digest()[:8], "big") / float(1 << 64)


def _audit_index(
    cluster: "ClusterStore",
    node: "StorageNode",
    index: Set[Uid],
    report: SyncReport,
) -> None:
    """Spot-check a seeded sample of a self-reported index.

    A forged digest can *agree* with honest peers while the bytes behind
    it do not exist (fake-acked claims) — agreement alone proves nothing
    when the node computes its own tree.  Each sampled claim is re-read
    ``audit_reads`` times through the scrubber's discrimination; a claim
    the node cannot substantiate on any read is a forged-digest strike on
    its scorecard, and the uid is evicted from the index so the ordinary
    diff re-ships a real copy from a trusted peer.
    """
    from repro.store.scrub import diagnose_copy  # deferred: scrub sits a layer above

    rate = cluster.audit_rate
    if rate <= 0.0:
        return
    board = cluster.accountability
    for uid in sorted(index):
        if _audit_draw(cluster.audit_seed, node.name, uid) >= rate:
            continue
        report.audit_samples += 1
        verdict: Optional[bool] = None
        served = None
        for _ in range(max(board.audit_reads, 1)):
            status, got, _ = diagnose_copy(node.store, uid, retry=cluster.retry)
            if status == "ok":
                board.record_clean_audit(node.name)
                verdict = True
                break
            if status == "unreadable":
                verdict = None  # transient plane down: no verdict either way
                break
            verdict = False
            served = got
        if verdict is False:
            report.audit_failures += 1
            board.record_strike(
                "anti-entropy",
                node.name,
                uid,
                op="get",
                kind="forged-digest",
                served=(
                    Chunk.compute_uid(served.type, served.data).hex()
                    if served is not None
                    else None
                ),
            )
            index.discard(uid)


def _participants(cluster: "ClusterStore", report: SyncReport) -> List["StorageNode"]:
    """Live nodes admitted to this pass (QUARANTINED replicas excluded)."""
    admitted = []
    for node in cluster.live_nodes():
        if cluster.accountability.is_quarantined(node.name):
            report.quarantined_excluded += 1
        else:
            admitted.append(node)
    return admitted


def _owner_map(
    cluster: "ClusterStore", indexes: Dict[str, Set[Uid]]
) -> Dict[Uid, FrozenSet[str]]:
    """Ring placement for every uid seen in any index, computed once."""
    owners: Dict[Uid, FrozenSet[str]] = {}
    for held in indexes.values():
        for uid in held:
            if uid not in owners:
                owners[uid] = frozenset(
                    cluster.ring.replicas(uid, cluster.replication)
                )
    return owners


def _read_transfer_source(cluster: "ClusterStore", src: "StorageNode", uid: Uid) -> Optional["Chunk"]:
    """A verified copy from the source node, re-reading once past wire rot."""
    for _ in range(2):
        try:
            chunk = cluster.retry.call(lambda: src.store.get_maybe(uid))
        except TransientError:
            return None
        if chunk is not None and chunk.is_valid():
            return chunk
    return None


def _pull(
    cluster: "ClusterStore",
    dst: "StorageNode",
    src: "StorageNode",
    indexes: Dict[str, Set[Uid]],
    owners: Dict[Uid, FrozenSet[str]],
    report: SyncReport,
    depth: int,
    dst_tree: Optional[DigestTree] = None,
) -> None:
    """One directional sync: give ``dst`` every owned chunk ``src`` holds.

    Both sides build their tree over the *same* key space — uids that
    ``dst`` owns by ring placement — so equal roots prove there is
    nothing to ship, and the diff opens only the differing arcs.  A
    caller pulling from several sources passes the destination tree in
    once; it is updated incrementally as transfers land.
    """
    report.pulls += 1
    if dst_tree is None:
        dst_tree = DigestTree.from_uids(
            (uid for uid in indexes[dst.name] if dst.name in owners[uid]), depth
        )
        report.trees_built += 1
    src_tree = DigestTree.from_uids(
        (uid for uid in indexes[src.name] if dst.name in owners[uid]), depth
    )
    report.trees_built += 1
    differing, compared = dst_tree.diff(src_tree)
    report.tree_nodes_compared += compared
    for bucket in differing:
        wanted = sorted(src_tree.bucket_uids(bucket) - dst_tree.bucket_uids(bucket))
        if not wanted:
            continue  # dst-only surplus in this bucket; nothing to pull
        report.buckets_differing += 1
        for uid in wanted:
            report.chunks_examined += 1
            chunk = _read_transfer_source(cluster, src, uid)
            if chunk is None:
                report.transfer_failures += 1
                if callable(getattr(src.store, "claimed_ids", None)):
                    # A self-reported index claimed a chunk its node could
                    # not produce when asked — for a verified index that is
                    # a transient read, for an unverified one it is weak
                    # tamper evidence against the claimant.
                    cluster.accountability.record_suspicion(
                        dst.name,
                        src.name,
                        uid,
                        op="transfer",
                        kind="unproducible-claim",
                    )
                continue
            if cluster.transfer(src, dst, chunk):
                report.chunks_transferred += 1
                indexes[dst.name].add(uid)
                dst_tree.add(uid)
            else:
                report.transfer_failures += 1


def sync(
    cluster: "ClusterStore",
    node_a: "StorageNode",
    node_b: "StorageNode",
    depth: int = DEFAULT_DEPTH,
) -> SyncReport:
    """Two-way Merkle reconciliation between one pair of nodes.

    A QUARANTINED node sits the sync out entirely: it must not be
    repaired *from* (its holdings are untrusted) and is not repaired *to*
    (re-admission re-verifies and resyncs in one step).
    """
    report = SyncReport()
    pair = [
        node
        for node in (node_a, node_b)
        if not cluster.accountability.is_quarantined(node.name)
    ]
    report.quarantined_excluded += 2 - len(pair)
    if len(pair) < 2:
        return report
    indexes = {}
    for node in pair:
        index, self_reported = node_index(cluster, node, report)
        if self_reported:
            _audit_index(cluster, node, index, report)
        indexes[node.name] = index
    # The audit may have quarantined a claimant mid-sync: re-check before
    # any bytes move.
    pair = [
        node for node in pair if not cluster.accountability.is_quarantined(node.name)
    ]
    report.quarantined_excluded += 2 - len(pair)
    if len(pair) < 2:
        return report
    owners = _owner_map(cluster, indexes)
    _pull(cluster, node_a, node_b, indexes, owners, report, depth)
    _pull(cluster, node_b, node_a, indexes, owners, report, depth)
    return report


def anti_entropy_pass(
    cluster: "ClusterStore", depth: int = DEFAULT_DEPTH
) -> SyncReport:
    """One full reconciliation round over every live node pair.

    Flushes pending hints first (cheap, exact — rejected replays are
    counted), builds each node's verified digest index once
    (self-reported indexes get the seeded spot-check audit instead:
    agreeing digests are *audited*, not believed), then runs directional
    pulls between every live, non-quarantined pair.  Run it after a
    partition heals — or on a background cadence — and the cluster
    converges to every chunk valid on its full trusted replica set,
    shipping only what actually diverged.
    """
    report = SyncReport()
    rejected_before = cluster.hint_rejections
    report.hints_flushed = cluster.flush_hints()
    report.hints_rejected = cluster.hint_rejections - rejected_before
    live = _participants(cluster, report)
    indexes = {}
    for node in live:
        index, self_reported = node_index(cluster, node, report)
        if self_reported:
            _audit_index(cluster, node, index, report)
        indexes[node.name] = index
    # The audit may have quarantined a forging claimant mid-pass: nodes
    # struck out here neither give nor receive chunks below.
    live = [
        node for node in live if not cluster.accountability.is_quarantined(node.name)
    ]
    owners = _owner_map(cluster, indexes)
    for dst in live:
        dst_tree = DigestTree.from_uids(
            (uid for uid in indexes[dst.name] if dst.name in owners[uid]), depth
        )
        report.trees_built += 1
        for src in live:
            if src is not dst:
                _pull(
                    cluster, dst, src, indexes, owners, report, depth,
                    dst_tree=dst_tree,
                )
    return report


def digests_agree(cluster: "ClusterStore", depth: int = DEFAULT_DEPTH) -> bool:
    """Do all live replicas summarize identically? (Convergence check.)

    For every pair of live, trusted nodes, the digest trees over their
    *shared* ownership must match: after a converged anti-entropy pass
    this holds cluster-wide.  QUARANTINED nodes are outside the trusted
    set, so convergence is judged — like every quorum — without them; a
    self-reported (``claimed_ids``) index is compared as claimed, which
    is exactly what a digest comparison against that node would see.
    Read-only — no quarantine, no transfers.
    """
    live = [
        node
        for node in cluster.live_nodes()
        if not cluster.accountability.is_quarantined(node.name)
    ]
    report = SyncReport()
    indexes = {}
    for node in live:
        claimed = getattr(node.store, "claimed_ids", None)
        if callable(claimed):
            indexes[node.name] = set(claimed())
        else:
            indexes[node.name] = build_valid_index(
                cluster, node, report, quarantine=False
            )
    owners = _owner_map(cluster, indexes)
    for position, node_a in enumerate(live):
        for node_b in live[position + 1 :]:
            shared_a = DigestTree.from_uids(
                (
                    uid
                    for uid in indexes[node_a.name]
                    if node_a.name in owners[uid] and node_b.name in owners[uid]
                ),
                depth,
            )
            shared_b = DigestTree.from_uids(
                (
                    uid
                    for uid in indexes[node_b.name]
                    if node_a.name in owners[uid] and node_b.name in owners[uid]
                ),
                depth,
            )
            if shared_a.root() != shared_b.root():
                return False
    return True
