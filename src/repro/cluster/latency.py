"""Latency tracking and deadline budgets for the simulated cluster.

Gray failure — a replica that is up, answering probes, and ~100x slow —
is invisible to the phi-style failure detector in
:mod:`repro.cluster.membership`: heartbeats *succeed*, just slowly.  The
defenses against it (hedged reads, deadline propagation, circuit
breakers; Dean & Barroso, "The Tail at Scale") all need one ingredient
the cluster did not have: a memory of how long each peer usually takes.

:class:`LatencyTracker` is that memory.  It keeps, per ``(origin, node,
op)``, an EWMA plus a streaming quantile over a bounded window of
observed service ticks, and derives the hedging threshold ("this read
has taken longer than the primary's p95 — fire the hedge").  Time is
whatever :class:`~repro.cluster.membership.LogicalClock` the caller
injects — never the wall clock (FB-DETERM), so two replays of the same
workload track identical latencies and hedge at identical moments.

:class:`Deadline` is the budget half: a fixed number of ticks granted to
one client verb, decremented by the same logical clock, threaded through
``ClusterStore`` sends and into ``RetryPolicy.call(deadline=)`` so no
layer keeps retrying past the point where the caller has already given
up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.membership import LogicalClock

#: Key identifying one latency stream: (observing origin, peer node, op).
StreamKey = Tuple[str, str, str]


class LatencyStats:
    """EWMA + bounded-window quantiles for one stream of service ticks.

    The EWMA answers "what does this peer cost *lately*" (it forgets an
    old gray episode once the node recovers); the ring window answers
    "what is the p95" without storing unbounded history.  Both are exact
    functions of the observation sequence — no clocks, no randomness —
    so they replay bit-identically (FB-DETERM).
    """

    __slots__ = ("alpha", "count", "ewma", "_window", "_ring", "_next")

    def __init__(self, alpha: float = 0.2, window: int = 128) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.alpha = alpha
        self.count = 0
        self.ewma = 0.0
        self._window = window
        self._ring: List[int] = []
        self._next = 0

    def observe(self, ticks: int) -> None:
        """Fold one observed service duration into the stream."""
        if ticks < 0:
            raise ValueError("service ticks must be >= 0")
        if self.count == 0:
            self.ewma = float(ticks)
        else:
            self.ewma += self.alpha * (ticks - self.ewma)
        self.count += 1
        if len(self._ring) < self._window:
            self._ring.append(ticks)
        else:
            self._ring[self._next] = ticks
            self._next = (self._next + 1) % self._window

    def quantile(self, q: float) -> Optional[int]:
        """The ``q`` quantile over the retained window (None when empty).

        Nearest-rank over a sorted copy of the window: O(w log w) per
        call, which is fine for hedging decisions (one call per read)
        at window sizes in the low hundreds.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary for health reports and benches."""
        return {
            "count": self.count,
            "ewma": round(self.ewma, 3),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"LatencyStats(count={self.count}, ewma={self.ewma:.1f})"


class LatencyTracker:
    """Per-``(origin, node, op)`` service-time statistics for one cluster.

    The split by *origin* mirrors the per-observer failure detectors: a
    node can be slow from one side of a degraded link and fast from the
    other, and each observer must hedge on its own evidence.  The clock
    is injected (defaulting to a fresh
    :class:`~repro.cluster.membership.LogicalClock`) so callers measure
    elapsed logical ticks, never wall time.
    """

    def __init__(
        self,
        clock: Optional[LogicalClock] = None,
        alpha: float = 0.2,
        window: int = 128,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.clock = clock if clock is not None else LogicalClock()
        self.alpha = alpha
        self.window = window
        self._streams: Dict[StreamKey, LatencyStats] = {}
        #: Total observations folded in (diagnostic).
        self.observations = 0

    def _stream(self, origin: str, node: str, op: str) -> LatencyStats:
        key = (origin, node, op)
        stats = self._streams.get(key)
        if stats is None:
            stats = LatencyStats(alpha=self.alpha, window=self.window)
            self._streams[key] = stats
        return stats

    def observe(self, origin: str, node: str, op: str, ticks: int) -> None:
        """Record that ``op`` against ``node``, seen from ``origin``, took ``ticks``."""
        self._stream(origin, node, op).observe(ticks)
        self.observations += 1

    def ewma(self, origin: str, node: str, op: str) -> Optional[float]:
        """Smoothed service ticks for a stream, or None before any data."""
        stats = self._streams.get((origin, node, op))
        if stats is None or stats.count == 0:
            return None
        return stats.ewma

    def quantile(self, origin: str, node: str, op: str, q: float) -> Optional[int]:
        """Windowed quantile for a stream, or None before any data."""
        stats = self._streams.get((origin, node, op))
        if stats is None:
            return None
        return stats.quantile(q)

    def samples(self, origin: str, node: str, op: str) -> int:
        """How many observations a stream has absorbed (0 if never seen)."""
        stats = self._streams.get((origin, node, op))
        return stats.count if stats is not None else 0

    def hedge_threshold(
        self,
        origin: str,
        node: str,
        op: str,
        q: float = 0.95,
        min_samples: int = 8,
    ) -> Optional[int]:
        """Ticks to wait on ``node`` before hedging, or None to not hedge.

        None until ``min_samples`` observations exist: hedging off a
        two-sample "p95" would fire on noise and double load exactly
        when the system knows least.  The Tail-at-Scale rule of thumb —
        hedge after the p95, bounding extra load near 5% — is the
        default.
        """
        if self.samples(origin, node, op) < min_samples:
            return None
        return self.quantile(origin, node, op, q)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able map of every stream, keyed ``origin->node:op``."""
        return {
            f"{origin}->{node}:{op}": stats.snapshot()
            for (origin, node, op), stats in sorted(self._streams.items())
        }

    def __repr__(self) -> str:
        return (
            f"LatencyTracker(streams={len(self._streams)}, "
            f"observations={self.observations})"
        )


class Deadline:
    """A fixed tick budget for one client verb, measured on an injected clock.

    Created when the verb starts; every layer below (replica selection,
    transport sends, retry loops) asks :meth:`remaining` and stops work
    — raising :class:`~repro.errors.DeadlineExceededError` at the
    cluster layer — once the budget is spent.  Propagating the *one*
    budget downward is what prevents the classic pathology where each
    layer retries within its own generous timeout and the user-visible
    call blocks for the product of them all.
    """

    __slots__ = ("budget", "_now", "_start")

    def __init__(self, budget: int, now: Callable[[], int]) -> None:
        if budget < 1:
            raise ValueError("deadline budget must be >= 1 tick")
        self.budget = budget
        self._now = now
        self._start = now()

    def elapsed(self) -> int:
        """Ticks consumed since the verb started."""
        return max(0, self._now() - self._start)

    def remaining(self) -> int:
        """Ticks left in the budget (never negative)."""
        return max(0, self.budget - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is fully spent."""
        return self.remaining() <= 0

    def __repr__(self) -> str:
        return f"Deadline(budget={self.budget}, remaining={self.remaining()})"
