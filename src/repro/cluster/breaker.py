"""Per-(origin, node) circuit breakers for the simulated cluster.

The failure detector answers "is the node *dead*?"; the breaker answers
the gray-failure question it cannot: "should *I* keep sending to it
right now?".  A node that times out or blows the caller's deadline K
times in a row trips the breaker OPEN — reads and writes route around
it without burning retry budget — and after a cooldown the breaker goes
HALF_OPEN, letting exactly one probe attempt through.  Success snaps it
CLOSED (mirroring the membership layer's one-good-probe snap-back);
failure re-opens it for another cooldown.

Breakers are per-``(origin, node)`` for the same reason suspicion is
per-observer: a link can be gray in one direction only, and each client
must act on its own evidence.  Time is the injected logical clock —
cooldowns elapse in ticks, never wall seconds (FB-DETERM).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker: CLOSED -> OPEN after K consecutive failures -> HALF_OPEN probe.

    ``record(ok)`` feeds outcomes; :meth:`begin_attempt` gates sends.
    While OPEN, attempts are refused until ``cooldown`` ticks have
    elapsed since the trip, after which one caller is admitted as the
    HALF_OPEN probe.  Failures while OPEN or HALF_OPEN restart the
    cooldown — a still-gray node keeps the circuit open without needing
    K fresh strikes.
    """

    __slots__ = (
        "threshold",
        "cooldown",
        "now",
        "state",
        "consecutive_failures",
        "opened_at",
        "opens",
        "probes",
        "snap_backs",
    )

    def __init__(self, threshold: int, cooldown: int, now: Callable[[], int]) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.now = now
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0
        self.opens = 0
        self.probes = 0
        self.snap_backs = 0

    def begin_attempt(self) -> bool:
        """May the caller send now?  May transition OPEN -> HALF_OPEN."""
        if self.state == OPEN:
            if self.now() - self.opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self.probes += 1
                return True
            return False
        return True

    def record(self, ok: bool) -> None:
        """Feed one attempt outcome (timeout/deadline-miss counts as not ok)."""
        if ok:
            if self.state != CLOSED:
                self.snap_backs += 1
            self.state = CLOSED
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if self.state == CLOSED:
            if self.consecutive_failures >= self.threshold:
                self.state = OPEN
                self.opened_at = self.now()
                self.opens += 1
        else:
            # OPEN or HALF_OPEN: a failed probe restarts the cooldown.
            self.state = OPEN
            self.opened_at = self.now()

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state for health reports."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "probes": self.probes,
            "snap_backs": self.snap_backs,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state}, opens={self.opens})"


class BreakerBoard:
    """All of one cluster's breakers, keyed ``(origin, node)``.

    ``threshold=None`` disables the board entirely: every attempt is
    admitted and outcomes are discarded, so callers can keep one code
    path.  Breakers materialise lazily on first use — an origin that
    never talks to a node carries no state for it.
    """

    def __init__(
        self,
        threshold: Optional[int] = 5,
        cooldown: int = 64,
        now: Optional[Callable[[], int]] = None,
    ) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError("threshold must be >= 1 (or None to disable)")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.now: Callable[[], int] = now if now is not None else (lambda: 0)
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    @property
    def enabled(self) -> bool:
        """False when the board was constructed with ``threshold=None``."""
        return self.threshold is not None

    def _breaker(self, origin: str, node: str) -> Optional[CircuitBreaker]:
        if self.threshold is None:
            return None
        key = (origin, node)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.cooldown, self.now)
            self._breakers[key] = breaker
        return breaker

    def begin_attempt(self, origin: str, node: str) -> bool:
        """Gate one send from ``origin`` to ``node`` (always True when disabled)."""
        breaker = self._breaker(origin, node)
        return True if breaker is None else breaker.begin_attempt()

    def record(self, origin: str, node: str, ok: bool) -> None:
        """Feed one outcome (no-op when disabled)."""
        breaker = self._breaker(origin, node)
        if breaker is not None:
            breaker.record(ok)

    def state(self, origin: str, node: str) -> str:
        """Current state for a pair (CLOSED if never used or disabled)."""
        breaker = self._breakers.get((origin, node))
        return breaker.state if breaker is not None else CLOSED

    def open_for(self, origin: str) -> list:
        """Nodes whose breaker from ``origin`` is not CLOSED, sorted."""
        return sorted(
            node
            for (who, node), breaker in self._breakers.items()
            if who == origin and breaker.state != CLOSED
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able map of every materialised breaker, keyed ``origin->node``."""
        return {
            f"{origin}->{node}": breaker.snapshot()
            for (origin, node), breaker in sorted(self._breakers.items())
        }

    def __repr__(self) -> str:
        tripped = sum(1 for b in self._breakers.values() if b.state != CLOSED)
        return f"BreakerBoard(breakers={len(self._breakers)}, tripped={tripped})"
