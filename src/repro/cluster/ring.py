"""Consistent hashing ring with virtual nodes."""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

from repro.chunk import Uid


def _point(label: bytes) -> int:
    """Ring position of a label (first 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(label).digest()[:8], "big")


#: Width of a ring coordinate in bits (anti-entropy buckets by prefix).
POSITION_BITS = 64


def ring_position(uid: Uid) -> int:
    """Public: the 64-bit ring coordinate of a uid.

    Placement and anti-entropy bucketing share this coordinate, so a
    digest-tree bucket corresponds to a contiguous arc of the ring — the
    property that keeps replica digests comparable across nodes.
    """
    return _point(uid.digest)


class HashRing:
    """Maps chunk uids to an ordered replica list of node names."""

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: List[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[str]:
        """Current member names (sorted)."""
        return sorted(self._nodes)

    def add_node(self, name: str) -> None:
        """Join a node: scatter its virtual points around the ring."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already in ring")
        self._nodes.append(name)
        for vnode in range(self._vnodes):
            point = _point(f"{name}#{vnode}".encode("utf-8"))
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, name)

    def remove_node(self, name: str) -> None:
        """Leave a node: drop its virtual points."""
        if name not in self._nodes:
            raise ValueError(f"node {name!r} not in ring")
        self._nodes.remove(name)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != name]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def replicas(self, uid: Uid, count: int) -> List[str]:
        """The first ``count`` distinct nodes clockwise from the uid."""
        if not self._nodes:
            return []
        count = min(count, len(self._nodes))
        start = bisect.bisect(self._points, _point(uid.digest))
        chosen: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def primary(self, uid: Uid) -> str:
        """The first replica."""
        return self.replicas(uid, 1)[0]
