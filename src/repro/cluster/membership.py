"""Failure detection and membership for the simulated cluster.

A :class:`FailureDetector` watches the cluster from one named network
endpoint (its *origin*): each probe round pings every node through the
cluster's transport, so a node looks dead for exactly the reasons it would
in production — it crashed, or the network between here and there is
partitioned, dropping, or delaying.  Consecutive missed heartbeats push a
node through ``ALIVE -> SUSPECT -> DEAD``; one successful probe snaps it
straight back to ``ALIVE``.

Every detector runs on a :class:`LogicalClock` — a deterministic tick
counter, never the wall clock (FB-DETERM): two runs of the same workload
see identical heartbeat timing, which is what makes suspicion-dependent
routing decisions replayable.

Suspicion is *per observer*: during a partition the clients on side A
suspect the nodes on side B and vice versa, which is exactly the split-
brain view a real cluster has.  The cluster consults the detector bound
to the origin a request came from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import, no cycle at runtime
    from repro.cluster.cluster import ClusterStore

#: Node states, in order of decay.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class LogicalClock:
    """A deterministic monotonic clock: time is a tick counter.

    The heartbeat layer must not read the wall clock (replays would
    diverge), so "time" advances only when the simulation says so —
    once per probe round by default, or explicitly via :meth:`advance`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = start

    def now(self) -> int:
        """Current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Move time forward; returns the new tick."""
        if ticks < 0:
            raise ValueError("time only moves forward")
        self._now += ticks
        return self._now

    def __repr__(self) -> str:
        return f"LogicalClock(t={self._now})"


class FailureDetector:
    """Heartbeat-based membership from one endpoint's point of view.

    ``suspicion_threshold`` consecutive missed probes mark a node
    SUSPECT (the cluster stops routing writes at it and queues hints
    instead); ``dead_threshold`` (default twice the suspicion threshold)
    escalates to DEAD — same routing behaviour, stronger signal for
    operators.  The thresholds absorb isolated message drops: a single
    lost heartbeat on a healthy link never triggers rerouting.
    """

    def __init__(
        self,
        cluster: "ClusterStore",
        origin: str = "client",
        suspicion_threshold: int = 3,
        dead_threshold: Optional[int] = None,
        clock: Optional[LogicalClock] = None,
    ) -> None:
        if suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        self.cluster = cluster
        self.origin = origin
        self.suspicion_threshold = suspicion_threshold
        self.dead_threshold = (
            dead_threshold if dead_threshold is not None else 2 * suspicion_threshold
        )
        if self.dead_threshold < self.suspicion_threshold:
            raise ValueError("dead_threshold must be >= suspicion_threshold")
        self.clock = clock if clock is not None else LogicalClock()
        self._missed: Dict[str, int] = {}
        self._states: Dict[str, str] = {}
        self._last_heard: Dict[str, int] = {}
        self.rounds = 0
        self.suspicions_raised = 0
        self.recoveries = 0

    # -- probing -------------------------------------------------------------

    def probe_round(self) -> Dict[str, str]:
        """Ping every node once; returns the post-round state map."""
        self.rounds += 1
        self.clock.advance()
        for name in sorted(self.cluster.nodes):
            if self.cluster.probe(self.origin, name):
                if self._states.get(name, ALIVE) != ALIVE:
                    self.recoveries += 1
                self._missed[name] = 0
                self._states[name] = ALIVE
                self._last_heard[name] = self.clock.now()
            else:
                missed = self._missed.get(name, 0) + 1
                self._missed[name] = missed
                if missed >= self.dead_threshold:
                    self._states[name] = DEAD
                elif missed >= self.suspicion_threshold:
                    if self._states.get(name, ALIVE) == ALIVE:
                        self.suspicions_raised += 1
                    self._states[name] = SUSPECT
        return dict(self._states)

    # -- queries -------------------------------------------------------------

    def state(self, name: str) -> str:
        """Current verdict for a node (optimistically ALIVE before data)."""
        return self._states.get(name, ALIVE)

    def is_suspect(self, name: str) -> bool:
        """True when the node should be routed around (SUSPECT or DEAD)."""
        return self.state(name) != ALIVE

    def alive(self, name: str) -> bool:
        """True when the node is believed reachable and serving."""
        return self.state(name) == ALIVE

    def suspected(self) -> List[str]:
        """Names currently routed around, sorted."""
        return sorted(
            name for name, state in self._states.items() if state != ALIVE
        )

    def degraded(self) -> List[str]:
        """Nodes this origin considers ALIVE but routes around anyway.

        The gray-failure verdict: heartbeats succeed (slowly), so the
        state machine rightly says ALIVE, yet the origin's circuit
        breaker for the node is tripped by consecutive timeouts.  A node
        in this list is slow-but-alive — distinct from SUSPECT/DEAD, and
        it snaps back the moment a probe succeeds at full speed.
        """
        board = getattr(self.cluster, "breakers", None)
        if board is None:
            return []
        return [
            name for name in board.open_for(self.origin) if self.state(name) == ALIVE
        ]

    def missed(self, name: str) -> int:
        """Consecutive missed heartbeats for a node."""
        return self._missed.get(name, 0)

    def last_heard(self, name: str) -> Optional[int]:
        """Tick of the last successful probe, or None if never heard."""
        return self._last_heard.get(name)

    def report(self) -> Dict[str, object]:
        """Counter snapshot (membership assertions in the torture suite)."""
        return {
            "origin": self.origin,
            "rounds": self.rounds,
            "tick": self.clock.now(),
            "suspected": self.suspected(),
            "degraded": self.degraded(),
            "suspicions_raised": self.suspicions_raised,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:
        return (
            f"FailureDetector(origin={self.origin!r}, rounds={self.rounds}, "
            f"suspected={self.suspected()})"
        )
