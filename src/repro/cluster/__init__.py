"""Simulated distributed chunk storage.

ForkBase is "a distributed storage system"; the authors ran it across
storage servicers.  Without a testbed we simulate the distribution layer
in-process: chunks are placed on N storage nodes by consistent hashing
with a configurable replication factor, nodes can be killed and repaired,
and reads fail over across replicas.  The store self-heals: writes take a
quorum with hinted handoff for down replicas, reads verify content
addresses and repair rotten or missing copies in place, and a scrub pass
(:mod:`repro.store.scrub`) re-hashes every replica.  All upper layers are
oblivious —
:class:`~repro.cluster.cluster.ClusterStore` is just another
:class:`~repro.store.base.ChunkStore` — which is exactly the property
that makes the substitution faithful: dedup, diff, merge and verification
run the same code paths against it.
"""

from repro.cluster.cluster import ClusterStore
from repro.cluster.node import StorageNode
from repro.cluster.ring import HashRing

__all__ = ["ClusterStore", "StorageNode", "HashRing"]
