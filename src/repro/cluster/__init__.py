"""Simulated distributed chunk storage.

ForkBase is "a distributed storage system"; the authors ran it across
storage servicers.  Without a testbed we simulate the distribution layer
in-process: chunks are placed on N storage nodes by consistent hashing
with a configurable replication factor, nodes can be killed and repaired,
and reads fail over across replicas.  The store self-heals: writes take a
quorum with hinted handoff for down replicas, reads verify content
addresses and repair rotten or missing copies in place, and a scrub pass
(:mod:`repro.store.scrub`) re-hashes every replica.  All upper layers are
oblivious —
:class:`~repro.cluster.cluster.ClusterStore` is just another
:class:`~repro.store.base.ChunkStore` — which is exactly the property
that makes the substitution faithful: dedup, diff, merge and verification
run the same code paths against it.
"""

from repro.cluster.accountability import (
    QUARANTINED,
    TRUSTED,
    AccountabilityBoard,
    TamperEvidence,
)
from repro.cluster.antientropy import (
    DigestTree,
    SyncReport,
    anti_entropy_pass,
    digests_agree,
    sync,
)
from repro.cluster.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.cluster.cluster import ClusterClient, ClusterStore
from repro.cluster.latency import Deadline, LatencyStats, LatencyTracker
from repro.cluster.membership import ALIVE, DEAD, SUSPECT, FailureDetector, LogicalClock
from repro.cluster.node import StorageNode
from repro.cluster.ring import HashRing, ring_position

__all__ = [
    "ALIVE",
    "CLOSED",
    "DEAD",
    "HALF_OPEN",
    "OPEN",
    "QUARANTINED",
    "SUSPECT",
    "TRUSTED",
    "AccountabilityBoard",
    "BreakerBoard",
    "CircuitBreaker",
    "ClusterClient",
    "ClusterStore",
    "Deadline",
    "DigestTree",
    "FailureDetector",
    "HashRing",
    "LatencyStats",
    "LatencyTracker",
    "LogicalClock",
    "StorageNode",
    "SyncReport",
    "TamperEvidence",
    "anti_entropy_pass",
    "digests_agree",
    "ring_position",
    "sync",
]
