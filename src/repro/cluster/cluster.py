"""ClusterStore: a ChunkStore spread over simulated storage nodes."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.chunk import Chunk, Uid
from repro.errors import NodeDownError
from repro.store.base import ChunkStore
from repro.cluster.node import StorageNode
from repro.cluster.ring import HashRing


class ClusterStore(ChunkStore):
    """Consistent-hash sharded, replicated chunk storage.

    Writes go to ``replication`` nodes chosen by the ring; reads try each
    replica in placement order and fail over past dead nodes.  The content
    address doubles as the placement key, so rebalancing and repair are
    just "copy chunks whose replica set changed" — no version metadata
    moves ever.
    """

    def __init__(
        self,
        node_count: int = 4,
        replication: int = 2,
        vnodes: int = 64,
        verify_reads: bool = False,
    ) -> None:
        super().__init__(verify_reads=verify_reads)
        if node_count < 1:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self.nodes: Dict[str, StorageNode] = {}
        names = [f"node-{index:02d}" for index in range(node_count)]
        for name in names:
            self.nodes[name] = StorageNode(name)
        self.ring = HashRing(names, vnodes=vnodes)
        self.failed_reads = 0
        self.failovers = 0

    # -- membership ----------------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> StorageNode:
        """Join a new node (chunks are NOT moved until :meth:`rebalance`)."""
        if name is None:
            name = f"node-{len(self.nodes):02d}"
        node = StorageNode(name)
        self.nodes[name] = node
        self.ring.add_node(name)
        return node

    def kill_node(self, name: str) -> None:
        """Fail a node in place (stays in the ring; reads fail over)."""
        self.nodes[name].kill()

    def revive_node(self, name: str, wipe: bool = False) -> None:
        """Recover a failed node."""
        self.nodes[name].revive(wipe=wipe)

    def live_nodes(self) -> List[StorageNode]:
        """Nodes currently serving requests."""
        return [node for node in self.nodes.values() if node.up]

    # -- ChunkStore primitives -------------------------------------------------------

    def _replica_nodes(self, uid: Uid) -> List[StorageNode]:
        return [self.nodes[name] for name in self.ring.replicas(uid, self.replication)]

    def _insert(self, chunk: Chunk) -> None:
        stored = 0
        for node in self._replica_nodes(chunk.uid):
            if node.up:
                node.put(chunk)
                stored += 1
        if stored == 0:
            raise NodeDownError(
                f"no live replica target for {chunk.uid.short()} "
                f"(all {self.replication} placement nodes down)"
            )

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        for index, node in enumerate(self._replica_nodes(uid)):
            if not node.up:
                continue
            chunk = node.get(uid)
            if chunk is not None:
                if index > 0:
                    self.failovers += 1
                return chunk
        self.failed_reads += 1
        return None

    def _contains(self, uid: Uid) -> bool:
        for node in self._replica_nodes(uid):
            if node.up and node.has(uid):
                return True
        return False

    def _ids(self) -> Iterator[Uid]:
        seen: Set[Uid] = set()
        for node in self.nodes.values():
            for uid in node.store.ids():
                if uid not in seen:
                    seen.add(uid)
                    yield uid

    # -- maintenance --------------------------------------------------------------------

    def repair(self) -> int:
        """Re-replicate: ensure every chunk sits on all its live replicas.

        Run after failures or membership changes; returns copies made.
        """
        copies = 0
        for uid in list(self._ids()):
            source: Optional[Chunk] = None
            targets = []
            for node in self._replica_nodes(uid):
                if not node.up:
                    continue
                if node.store.has(uid):
                    if source is None:
                        source = node.store.get(uid)
                else:
                    targets.append(node)
            if source is None:
                # All live replicas lost it; try any live node (rebalance
                # leftovers hold stale copies).
                for node in self.live_nodes():
                    if node.store.has(uid):
                        source = node.store.get(uid)
                        break
            if source is None:
                continue
            for node in targets:
                node.put(source)
                copies += 1
        return copies

    def rebalance(self) -> int:
        """Move chunks onto their current ring placement; drop strays.

        Returns chunks copied.  (Repair first places, then strays drop.)
        """
        copies = self.repair()
        dropped = 0
        for node in self.live_nodes():
            for uid in list(node.store.ids()):
                owners = self.ring.replicas(uid, self.replication)
                if node.name not in owners:
                    # Only drop if every live owner has a copy.
                    if all(
                        self.nodes[name].up and self.nodes[name].store.has(uid)
                        for name in owners
                    ):
                        del node.store._chunks[uid]  # intra-package reach
                        dropped += 1
        return copies

    # -- diagnostics -----------------------------------------------------------------------

    def placement_histogram(self) -> Dict[str, int]:
        """Chunks per node (balance metric for the cluster ablation)."""
        return {name: node.chunk_count() for name, node in sorted(self.nodes.items())}

    def total_replica_count(self) -> int:
        """Sum of replicas across nodes."""
        return sum(node.chunk_count() for node in self.nodes.values())

    def durability_check(self) -> Dict[str, int]:
        """How many chunks have 0 / 1 / ≥2 live replicas right now."""
        buckets = {"lost": 0, "single": 0, "replicated": 0}
        for uid in self._ids():
            live = sum(
                1
                for node in self._replica_nodes(uid)
                if node.up and node.store.has(uid)
            )
            if live == 0:
                # May still survive on a non-placement node (pre-rebalance).
                live = sum(
                    1 for node in self.live_nodes() if node.store.has(uid)
                )
            if live == 0:
                buckets["lost"] += 1
            elif live == 1:
                buckets["single"] += 1
            else:
                buckets["replicated"] += 1
        return buckets
