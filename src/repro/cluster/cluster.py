"""ClusterStore: a self-healing ChunkStore spread over simulated nodes."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.chunk import Chunk, Uid
from repro.errors import (
    ChunkCorruptionError,
    NodeDownError,
    QuorumWriteError,
    TransientError,
    TransientStoreError,
)
from repro.cluster.node import StorageNode
from repro.cluster.ring import HashRing
from repro.faults.retry import RetryPolicy
from repro.store.base import ChunkStore


class ClusterStore(ChunkStore):
    """Consistent-hash sharded, replicated, self-healing chunk storage.

    Writes go to ``replication`` nodes chosen by the ring and must be
    acknowledged by ``write_quorum`` of them; replicas that are down (or
    fail past the retry budget) get a *hint* queued and replayed when the
    node revives (hinted handoff).  Reads try each replica in placement
    order, fail over past dead nodes and past copies whose bytes do not
    hash to the uid, and write the good copy back to the replicas that
    missed or served rot (read-repair).  Transient per-node failures are
    retried with bounded backoff through an injectable
    :class:`~repro.faults.retry.RetryPolicy` (instant by default — the
    cluster is simulated).

    The content address doubles as both the placement key and the
    checksum, so every healing decision is local: a copy is good iff its
    bytes hash to its uid, and any good copy can repair any replica.
    """

    def __init__(
        self,
        node_count: int = 4,
        replication: int = 2,
        vnodes: int = 64,
        verify_reads: bool = False,
        write_quorum: Optional[int] = None,
        repair_reads: bool = True,
        verify_writes: bool = True,
        retry: Optional[RetryPolicy] = None,
        node_store_factory: Optional[Callable[[str], ChunkStore]] = None,
    ) -> None:
        super().__init__(verify_reads=verify_reads)
        if node_count < 1:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if write_quorum is not None and not 1 <= write_quorum <= replication:
            raise ValueError("write_quorum must be in [1, replication]")
        self.replication = replication
        #: Acks required for a put to succeed (default 1: availability-first,
        #: the seed behaviour; pass ``replication // 2 + 1`` for majority).
        self.write_quorum = write_quorum if write_quorum is not None else 1
        self.repair_reads = repair_reads
        #: An ack only counts once the replica's stored bytes re-hash to the
        #: uid, so torn and silently-dropped writes surface as retryable
        #: failures instead of durable rot.  Content addressing makes this a
        #: read-back plus one hash.
        self.verify_writes = verify_writes
        self.retry = retry if retry is not None else RetryPolicy.instant()
        self._store_factory = node_store_factory
        self.nodes: Dict[str, StorageNode] = {}
        names = [f"node-{index:02d}" for index in range(node_count)]
        for name in names:
            self.nodes[name] = self._make_node(name)
        self.ring = HashRing(names, vnodes=vnodes)
        self._hints: Dict[str, Dict[Uid, Chunk]] = {}
        self.failed_reads = 0
        self.failovers = 0
        self.corrupt_reads = 0
        self.read_repairs = 0
        self.hints_queued = 0
        self.hints_replayed = 0
        self.transient_failures = 0

    def _make_node(self, name: str) -> StorageNode:
        store = self._store_factory(name) if self._store_factory else None
        return StorageNode(name, store=store)

    # -- membership ----------------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> StorageNode:
        """Join a new node (chunks are NOT moved until :meth:`rebalance`)."""
        if name is None:
            name = f"node-{len(self.nodes):02d}"
        node = self._make_node(name)
        self.nodes[name] = node
        self.ring.add_node(name)
        return node

    def kill_node(self, name: str) -> None:
        """Fail a node in place (stays in the ring; reads fail over)."""
        self.nodes[name].kill()

    def revive_node(self, name: str, wipe: bool = False) -> int:
        """Recover a failed node and replay its queued hints.

        Returns the number of hinted chunks handed off.
        """
        self.nodes[name].revive(wipe=wipe)
        return self._replay_hints(name)

    def live_nodes(self) -> List[StorageNode]:
        """Nodes currently serving requests."""
        return [node for node in self.nodes.values() if node.up]

    # -- hinted handoff ---------------------------------------------------------------

    def _queue_hint(self, name: str, chunk: Chunk) -> None:
        hints = self._hints.setdefault(name, {})
        if chunk.uid not in hints:
            hints[chunk.uid] = chunk
            self.hints_queued += 1

    def _replay_hints(self, name: str) -> int:
        """Hand queued writes to a freshly revived node."""
        node = self.nodes[name]
        hints = self._hints.pop(name, {})
        replayed = 0
        for uid, chunk in hints.items():
            try:
                self._node_put(node, chunk)
            except TransientError:
                self.transient_failures += 1
                self._queue_hint(name, chunk)  # keep it for the next revive
                continue
            replayed += 1
            self.hints_replayed += 1
        return replayed

    def pending_hints(self) -> Dict[str, int]:
        """Queued hinted-handoff chunks per down node."""
        return {name: len(hints) for name, hints in self._hints.items() if hints}

    def flush_hints(self) -> int:
        """Replay hints queued against nodes that are currently up.

        A hint normally drains when its node revives, but a write can also
        miss a *live* replica (retry budget exhausted); those hints would
        otherwise sit forever.  Returns the number handed off.
        """
        return sum(
            self._replay_hints(name)
            for name in list(self._hints)
            if self.nodes[name].up
        )

    # -- ChunkStore primitives -------------------------------------------------------

    def replica_nodes(self, uid: Uid) -> List[StorageNode]:
        """The nodes responsible for ``uid``, in ring placement order.

        Part of the public surface: the scrubber walks placement to find
        healthy repair sources, and tests assert placement without reaching
        into ring internals.
        """
        return [self.nodes[name] for name in self.ring.replicas(uid, self.replication)]

    def _node_put(self, node: StorageNode, chunk: Chunk) -> None:
        """One replica write, retried through the policy.

        With ``verify_writes`` the written copy is read back and checked
        against the uid before it counts: a torn or dropped write looks like
        any other transient failure and gets retried.
        """

        def attempt() -> None:
            node.put(chunk)
            if not self.verify_writes:
                return
            got = node.store.get_maybe(chunk.uid)
            if got is None or not got.is_valid():
                # Evict the bad copy: put() dedups on uid, so a retry would
                # otherwise no-op against the torn bytes squatting there.
                node.store.delete(chunk.uid)
                raise TransientStoreError(
                    f"write of {chunk.uid.short()} to {node.name} did not verify"
                )

        self.retry.call(attempt)

    def _insert(self, chunk: Chunk) -> None:
        acked = 0
        missed: List[StorageNode] = []
        for node in self.replica_nodes(chunk.uid):
            if not node.up:
                missed.append(node)
                continue
            try:
                self._node_put(node, chunk)
            except TransientError:
                self.transient_failures += 1
                missed.append(node)
                continue
            acked += 1
        if acked == 0:
            raise NodeDownError(
                f"no live replica target for {chunk.uid.short()} "
                f"(all {self.replication} placement nodes down)"
            )
        if acked < self.write_quorum:
            raise QuorumWriteError(
                f"write of {chunk.uid.short()} acked by {acked}/{self.replication} "
                f"replicas, quorum is {self.write_quorum}",
                acked=acked,
                required=self.write_quorum,
            )
        for node in missed:
            self._queue_hint(node.name, chunk)

    def _read_replica(self, node: StorageNode, uid: Uid) -> Tuple[str, Optional[Chunk]]:
        """Read one replica: ('ok'|'missing'|'corrupt'|'unreachable', chunk).

        With ``repair_reads`` on, a mismatching payload is re-read up to
        the retry budget to separate wire corruption (a later attempt
        verifies) from rot on the replica (every attempt mismatches).
        """
        attempts = self.retry.attempts if self.repair_reads else 1
        saw_corrupt = False
        for _ in range(attempts):
            try:
                chunk = self.retry.call(lambda: node.get(uid))
            except TransientError:
                self.transient_failures += 1
                return "unreachable", None
            if chunk is None:
                return "missing", None
            if not self.repair_reads or chunk.is_valid():
                return "ok", chunk
            self.corrupt_reads += 1
            saw_corrupt = True
        return ("corrupt" if saw_corrupt else "missing"), None

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        found: Optional[Chunk] = None
        repair_targets: List[StorageNode] = []
        saw_rot = False
        for index, node in enumerate(self.replica_nodes(uid)):
            if not node.up:
                continue
            status, chunk = self._read_replica(node, uid)
            if status == "ok":
                if index > 0:
                    self.failovers += 1
                found = chunk
                break
            if status == "missing":
                repair_targets.append(node)
            elif status == "corrupt":
                # Rot on this replica: quarantine the copy, repair below.
                saw_rot = True
                node.drop(uid)
                repair_targets.append(node)
            # 'unreachable' nodes are skipped; repair() will catch them up.
        if found is None:
            self.failed_reads += 1
            if saw_rot:
                raise ChunkCorruptionError(
                    f"every reachable replica of {uid.short()} is corrupt"
                )
            return None
        for node in repair_targets:
            try:
                self._node_put(node, found)
            except TransientError:
                self.transient_failures += 1
                continue
            self.read_repairs += 1
        return found

    def _contains(self, uid: Uid) -> bool:
        for node in self.replica_nodes(uid):
            if not node.up:
                continue
            try:
                if self.retry.call(lambda: node.has(uid)):
                    return True
            except TransientError:
                self.transient_failures += 1
        return False

    def _ids(self) -> Iterator[Uid]:
        seen: Set[Uid] = set()
        for node in self.nodes.values():
            for uid in node.store.ids():
                if uid not in seen:
                    seen.add(uid)
                    yield uid

    def _delete(self, uid: Uid) -> bool:
        removed = False
        for node in self.nodes.values():
            removed = node.drop(uid) or removed
        for hints in self._hints.values():
            hints.pop(uid, None)
        return removed

    # -- maintenance --------------------------------------------------------------------

    def _healthy_source(self, uid: Uid) -> Optional[Chunk]:
        """A verified copy from any live node (placement replicas first)."""
        candidates = [node for node in self.replica_nodes(uid) if node.up]
        candidates.extend(
            node for node in self.live_nodes() if node not in candidates
        )
        for node in candidates:
            if not node.store.has(uid):
                continue
            try:
                chunk = self.retry.call(lambda: node.store.get_maybe(uid))
            except TransientError:
                self.transient_failures += 1
                continue
            if chunk is not None and chunk.is_valid():
                return chunk
        return None

    def repair(self) -> int:
        """Re-replicate: ensure every chunk sits on all its live replicas.

        Run after failures or membership changes; returns copies made.
        Source copies are verified against their uid before being copied,
        so repair never propagates rot.
        """
        self.flush_hints()
        copies = 0
        for uid in list(self._ids()):
            targets = [
                node
                for node in self.replica_nodes(uid)
                if node.up and not node.store.has(uid)
            ]
            if not targets:
                continue
            source = self._healthy_source(uid)
            if source is None:
                continue
            for node in targets:
                try:
                    self._node_put(node, source)
                except TransientError:
                    self.transient_failures += 1
                    continue  # a later repair / scrub pass will place it
                copies += 1
        return copies

    def rebalance(self) -> int:
        """Move chunks onto their current ring placement; drop strays.

        Returns chunks copied.  (Repair first places, then strays drop.)
        """
        copies = self.repair()
        for node in self.live_nodes():
            for uid in list(node.store.ids()):
                owners = self.ring.replicas(uid, self.replication)
                if node.name not in owners:
                    # Only drop if every live owner has a copy.
                    if all(
                        self.nodes[name].up and self.nodes[name].store.has(uid)
                        for name in owners
                    ):
                        node.drop(uid)
        return copies

    def scrub(self, **kwargs: object):
        """One scrub pass (see :mod:`repro.store.scrub`): re-hash every
        replica, quarantine rot, re-copy from healthy replicas."""
        from repro.store.scrub import Scrubber

        return Scrubber(self, **kwargs).scrub()  # type: ignore[arg-type]

    # -- diagnostics -----------------------------------------------------------------------

    def placement_histogram(self) -> Dict[str, int]:
        """Chunks per node (balance metric for the cluster ablation)."""
        return {name: node.chunk_count() for name, node in sorted(self.nodes.items())}

    def total_replica_count(self) -> int:
        """Sum of replicas across nodes."""
        return sum(node.chunk_count() for node in self.nodes.values())

    def durability_check(self) -> Dict[str, int]:
        """How many chunks have 0 / 1 / ≥2 live replicas right now.

        Counts hinted-handoff copies as live: a chunk whose only copies
        sit in the hint queue is recoverable, not lost.
        """
        buckets = {"lost": 0, "single": 0, "replicated": 0}
        hinted: Set[Uid] = set()
        for hints in self._hints.values():
            hinted.update(hints)
        for uid in self._ids():
            live = sum(
                1
                for node in self.replica_nodes(uid)
                if node.up and node.store.has(uid)
            )
            if live == 0:
                # May still survive on a non-placement node (pre-rebalance).
                live = sum(
                    1 for node in self.live_nodes() if node.store.has(uid)
                )
            if live == 0 and uid in hinted:
                live = 1
            if live == 0:
                buckets["lost"] += 1
            elif live == 1:
                buckets["single"] += 1
            else:
                buckets["replicated"] += 1
        return buckets

    def health_report(self) -> Dict[str, object]:
        """Operational counters in one place (chaos-suite assertions)."""
        return {
            "nodes_up": len(self.live_nodes()),
            "nodes_total": len(self.nodes),
            "failed_reads": self.failed_reads,
            "failovers": self.failovers,
            "corrupt_reads": self.corrupt_reads,
            "read_repairs": self.read_repairs,
            "hints_queued": self.hints_queued,
            "hints_replayed": self.hints_replayed,
            "hints_pending": sum(len(h) for h in self._hints.values()),
            "transient_failures": self.transient_failures,
            "durability": self.durability_check(),
        }
