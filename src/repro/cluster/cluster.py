"""ClusterStore: a self-healing ChunkStore spread over simulated nodes."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.chunk import Chunk, Uid
from repro.cluster.accountability import AccountabilityBoard
from repro.cluster.antientropy import SyncReport, anti_entropy_pass
from repro.cluster.breaker import BreakerBoard
from repro.cluster.latency import Deadline, LatencyStats, LatencyTracker
from repro.cluster.membership import FailureDetector
from repro.cluster.node import StorageNode
from repro.cluster.ring import HashRing
from repro.errors import (
    ChunkCorruptionError,
    DeadlineExceededError,
    NodeDownError,
    QuorumWriteError,
    TransientError,
    TransientStoreError,
)
from repro.faults.network import PartitionedTransport
from repro.faults.retry import RetryPolicy
from repro.store.base import ChunkStore


class ClusterStore(ChunkStore):
    """Consistent-hash sharded, replicated, self-healing chunk storage.

    Writes go to ``replication`` nodes chosen by the ring and must be
    acknowledged by ``write_quorum`` of them; replicas that are down (or
    fail past the retry budget) get a *hint* queued and replayed when the
    node revives (hinted handoff).  Reads try each replica in placement
    order, fail over past dead nodes and past copies whose bytes do not
    hash to the uid, and write the good copy back to the replicas that
    missed or served rot (read-repair).  Transient per-node failures are
    retried with bounded backoff through an injectable
    :class:`~repro.faults.retry.RetryPolicy` (instant by default — the
    cluster is simulated).

    Pass a :class:`~repro.faults.network.PartitionedTransport` and every
    request flows through the simulated network: partitions, drops,
    delays and duplicates hit the cluster exactly as the plan dictates.
    A :class:`~repro.cluster.membership.FailureDetector` per client
    origin turns missed heartbeats into SUSPECT verdicts, and the write
    path routes around suspected nodes: with ``sloppy_quorum`` it
    extends past the home replicas along the ring so writes stay
    available during a partition (stand-in copies migrate home via
    hinted handoff and Merkle anti-entropy);
    :class:`~repro.errors.QuorumWriteError` is raised only when no
    quorum of *reachable* nodes exists at all.

    The content address doubles as both the placement key and the
    checksum, so every healing decision is local: a copy is good iff its
    bytes hash to its uid, and any good copy can repair any replica.

    Gray failures — a replica that is up and answering probes but ~100x
    slow — get their own machinery (all of it transport-clocked, so it
    only engages when a ``transport`` is set): a
    :class:`~repro.cluster.latency.LatencyTracker` remembers per-node
    service times; ``hedge_reads`` arms the first read attempt with that
    node's tracked p-``hedge_quantile`` as a timeout and fails over to
    the next replica the moment it elapses (the Tail-at-Scale hedge —
    the abandoned response still lands late as a stale delivery);
    ``deadline_budget`` grants every client verb a fixed tick budget
    threaded through sends and retries, surfacing
    :class:`~repro.errors.DeadlineExceededError` instead of blocking
    past it; and a per-``(origin, node)``
    :class:`~repro.cluster.breaker.BreakerBoard` opens after
    ``breaker_threshold`` consecutive timeouts so a slow-but-alive node
    is routed around even though the failure detector rightly still
    calls it ALIVE.
    """

    #: Observations a latency stream needs before reads hedge off its p95
    #: (hedging on a two-sample quantile would fire on noise).
    HEDGE_MIN_SAMPLES = 8

    def __init__(
        self,
        node_count: int = 4,
        replication: int = 2,
        vnodes: int = 64,
        verify_reads: bool = False,
        write_quorum: Optional[int] = None,
        repair_reads: bool = True,
        verify_writes: bool = True,
        retry: Optional[RetryPolicy] = None,
        node_store_factory: Optional[Callable[[str], ChunkStore]] = None,
        transport: Optional[PartitionedTransport] = None,
        heartbeat_interval: Optional[int] = None,
        suspicion_threshold: int = 3,
        sloppy_quorum: bool = True,
        hedge_reads: bool = False,
        hedge_quantile: float = 0.95,
        deadline_budget: Optional[int] = None,
        breaker_threshold: Optional[int] = 5,
        breaker_cooldown: int = 64,
        accountability: Optional[AccountabilityBoard] = None,
        audit_repairs: bool = True,
        audit_rate: float = 0.05,
        audit_seed: int = 0,
    ) -> None:
        super().__init__(verify_reads=verify_reads)
        if node_count < 1:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if write_quorum is not None and not 1 <= write_quorum <= replication:
            raise ValueError("write_quorum must be in [1, replication]")
        if heartbeat_interval is not None and heartbeat_interval < 1:
            raise ValueError("heartbeat_interval must be >= 1")
        if not 0.0 < hedge_quantile <= 1.0:
            raise ValueError(f"hedge_quantile must be in (0, 1], got {hedge_quantile}")
        if deadline_budget is not None and deadline_budget < 1:
            raise ValueError("deadline_budget must be >= 1 tick")
        if not 0.0 <= audit_rate <= 1.0:
            raise ValueError(f"audit_rate must be in [0, 1], got {audit_rate}")
        self.replication = replication
        #: Acks required for a put to succeed (default 1: availability-first,
        #: the seed behaviour; pass ``replication // 2 + 1`` for majority).
        self.write_quorum = write_quorum if write_quorum is not None else 1
        self.repair_reads = repair_reads
        #: An ack only counts once the replica's stored bytes re-hash to the
        #: uid, so torn and silently-dropped writes surface as retryable
        #: failures instead of durable rot.  Content addressing makes this a
        #: read-back plus one hash.
        self.verify_writes = verify_writes
        self.retry = retry if retry is not None else RetryPolicy.instant()
        #: None means requests are direct function calls (the seed behaviour);
        #: set to route every request through the simulated network.
        self.transport = transport
        #: The endpoint name requests are currently issued from.  Clients
        #: made with :meth:`client` swap this for the duration of a call,
        #: so each client sits on its own side of a partition.
        self.origin = "client"
        #: When set, every N data-plane operations run one heartbeat probe
        #: round for the acting origin (background failure detection).
        self.heartbeat_interval = heartbeat_interval
        self.suspicion_threshold = suspicion_threshold
        #: Extend writes past the home replicas along the ring when the
        #: placement set cannot meet quorum (Dynamo-style sloppy quorum).
        self.sloppy_quorum = sloppy_quorum
        #: Arm the first read attempt with the primary's tracked p95 as a
        #: timeout and fail over when it elapses (gray-failure hedging).
        self.hedge_reads = hedge_reads
        self.hedge_quantile = hedge_quantile
        #: Tick budget granted to each client verb (None = no deadline).
        self.deadline_budget = deadline_budget
        #: Per-(origin, node, op) service-time statistics, on the transport
        #: clock.  Feeds the hedging threshold and the health report.
        self.latency = LatencyTracker()
        #: End-to-end read latency in transport ticks (bench percentiles).
        self.read_ticks = LatencyStats(window=256)
        #: Ticks the most recent read took end-to-end (bench sampling).
        self.last_read_ticks = 0
        #: Per-(origin, node) circuit breakers.  Clocked by the transport,
        #: so the board is disabled (threshold None) without one: with no
        #: ticking clock an OPEN breaker could never cool down to
        #: HALF_OPEN and a revived node would be shunned forever.
        self.breakers = BreakerBoard(
            threshold=breaker_threshold if transport is not None else None,
            cooldown=breaker_cooldown,
            now=self._now,
        )
        self._store_factory = node_store_factory
        self.nodes: Dict[str, StorageNode] = {}
        names = [f"node-{index:02d}" for index in range(node_count)]
        for name in names:
            self.nodes[name] = self._make_node(name)
        self.ring = HashRing(names, vnodes=vnodes)
        self._hints: Dict[str, Dict[Uid, Chunk]] = {}
        self._detectors: Dict[str, FailureDetector] = {}
        self._ping_uids: Dict[str, Uid] = {}
        self._ops_since_probe = 0
        #: The report from the most recent :meth:`repair` pass, if any.
        self.last_sync_report: Optional[SyncReport] = None
        self.failed_reads = 0
        self.failovers = 0
        self.corrupt_reads = 0
        self.read_repairs = 0
        self.hints_queued = 0
        self.hints_replayed = 0
        self.transient_failures = 0
        self.suspect_skips = 0
        self.sloppy_writes = 0
        #: Reads whose hedge timeout fired (the next replica was tried).
        self.hedges_issued = 0
        #: Hedged reads where the failover replica produced the answer.
        self.hedge_wins = 0
        #: Client verbs aborted because their deadline budget ran out.
        self.deadline_exceeded = 0
        #: Attempts refused because the target's circuit breaker was OPEN.
        self.breaker_skips = 0
        #: Chunks examined by the last :meth:`full_sweep_repair` (the
        #: baseline the anti-entropy benchmark compares against).
        self.sweep_examined = 0
        #: The tamper scorecard: every corrupt/withheld read and every
        #: unverified write exchange is attributed to the serving replica,
        #: and nodes that accumulate quarantine-grade evidence are routed
        #: out of quorums/hedges until :meth:`readmit` re-verifies them.
        self.accountability = (
            accountability if accountability is not None else AccountabilityBoard()
        )
        #: Audit each read-repair with management-plane re-reads right
        #: after the verified write — the discriminator between honest
        #: rot (the fresh copy verifies) and a lying replica (it cannot
        #: stop lying about bytes the writer just verified).
        self.audit_repairs = audit_repairs
        #: Fraction of claimed uids the anti-entropy spot-check audits
        #: *behind agreeing digests* (forged-digest defense).
        self.audit_rate = audit_rate
        #: Seed for the audit sample draw (deterministic, replayable).
        self.audit_seed = audit_seed
        #: Read/write attempts refused because the target is QUARANTINED.
        self.quarantine_skips = 0
        #: Hints discarded because their target node is QUARANTINED.
        self.hints_discarded = 0
        #: Hint replays rejected because the payload no longer hashed to
        #: its uid (receiving-side verification, satellite of PR 10).
        self.hint_rejections = 0
        #: Anti-entropy transfers rejected on arrival (invalid payload).
        self.transfer_rejections = 0
        #: Post-repair audits run / audits whose every re-read failed.
        self.repair_audits = 0
        self.repair_audit_failures = 0
        #: The deadline owned by the client verb currently on the stack,
        #: shared by every sub-operation it performs (see :meth:`put`).
        self._active_deadline: Optional[Deadline] = None

    def _make_node(self, name: str) -> StorageNode:
        store = self._store_factory(name) if self._store_factory else None
        return StorageNode(name, store=store)

    # -- membership ----------------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> StorageNode:
        """Join a new node (chunks are NOT moved until :meth:`rebalance`)."""
        if name is None:
            name = f"node-{len(self.nodes):02d}"
        node = self._make_node(name)
        self.nodes[name] = node
        self.ring.add_node(name)
        return node

    def kill_node(self, name: str) -> None:
        """Fail a node in place (stays in the ring; reads fail over)."""
        self.nodes[name].kill()

    def revive_node(self, name: str, wipe: bool = False) -> int:
        """Recover a failed node and replay its queued hints.

        Returns the number of hinted chunks handed off.
        """
        self.nodes[name].revive(wipe=wipe)
        return self._replay_hints(name)

    def live_nodes(self) -> List[StorageNode]:
        """Nodes currently serving requests."""
        return [node for node in self.nodes.values() if node.up]

    # -- network & failure detection ------------------------------------------------

    def _now(self) -> int:
        """The transport's logical tick (0 without one) — never wall time."""
        return self.transport.clock if self.transport is not None else 0

    def _begin_deadline(self) -> Optional[Deadline]:
        """A fresh tick budget for one client verb, if deadlines are on.

        Deadlines are measured on the transport clock, so without a
        transport there is no time for a budget to elapse in — direct
        function calls are instantaneous in the model.
        """
        if self._active_deadline is not None:
            return self._active_deadline
        if self.deadline_budget is None or self.transport is None:
            return None
        return Deadline(self.deadline_budget, self._now)

    def put(self, chunk: Chunk) -> bool:
        """Store a chunk under ONE deadline budget for the whole verb.

        The base class implements ``put`` as a dedup precheck plus an
        insert; without this override each half would start a fresh
        budget and the verb could block for up to twice its deadline.
        """
        deadline = self._begin_deadline()
        if deadline is None or self._active_deadline is not None:
            return super().put(chunk)
        self._active_deadline = deadline
        try:
            return super().put(chunk)
        finally:
            self._active_deadline = None

    @staticmethod
    def _stamp_deadline(
        error: DeadlineExceededError, deadline: Optional[Deadline]
    ) -> None:
        """Fill budget/elapsed on an error raised below the verb layer.

        :class:`~repro.faults.retry.RetryPolicy` sees only the opaque
        remaining-ticks view, so its errors carry no budget; the verb
        that owns the deadline stamps them on the way out."""
        if deadline is not None and error.budget == 0:
            error.budget = deadline.budget
            error.elapsed = deadline.elapsed()

    def _send(
        self,
        node: StorageNode,
        op: str,
        uid: Uid,
        fn: Callable[[], object],
        origin: Optional[str] = None,
        deadline: Optional[Deadline] = None,
        timeout_ticks: Optional[int] = None,
    ) -> object:
        """One request to a node, through the transport when one is set.

        ``timeout_ticks`` (a hedge threshold) and the verb ``deadline``
        both cap the sender's patience; the tighter one wins.
        """
        if self.transport is None:
            return fn()
        timeout = timeout_ticks
        if deadline is not None:
            remaining = deadline.remaining()
            timeout = remaining if timeout is None else min(timeout, remaining)
        return self.transport.send(
            origin or self.origin, node.name, op, uid, fn, timeout_ticks=timeout
        )

    def _ping_uid(self, name: str) -> Uid:
        uid = self._ping_uids.get(name)
        if uid is None:
            uid = Uid.of(b"ping:" + name.encode("utf-8"))
            self._ping_uids[name] = uid
        return uid

    def probe(self, origin: str, name: str) -> bool:
        """One heartbeat from ``origin`` to node ``name``.

        Goes through the transport, so a probe fails for the same reasons
        a request would: the node is down, or the network between this
        origin and the node is partitioned, dropping, or delaying.  No
        retry — absorbing isolated losses is the failure detector's job.
        """
        node = self.nodes[name]
        try:
            self._send(node, "ping", self._ping_uid(name), node.ping, origin=origin)
        except TransientError:
            return False
        return True

    def failure_detector(self, origin: Optional[str] = None) -> FailureDetector:
        """The per-origin failure detector (created on first use).

        Each origin keeps its own view: during a partition, clients on
        side A suspect the nodes on side B and vice versa.
        """
        origin = origin if origin is not None else self.origin
        detector = self._detectors.get(origin)
        if detector is None:
            detector = FailureDetector(
                self, origin=origin, suspicion_threshold=self.suspicion_threshold
            )
            self._detectors[origin] = detector
        return detector

    def tick(self) -> Dict[str, str]:
        """Run one heartbeat round for the acting origin; returns states."""
        return self.failure_detector().probe_round()

    def _maybe_tick(self) -> None:
        """Background heartbeats: probe every ``heartbeat_interval`` ops."""
        if self.heartbeat_interval is None:
            return
        self._ops_since_probe += 1
        if self._ops_since_probe >= self.heartbeat_interval:
            self._ops_since_probe = 0
            self.tick()

    def _suspected(self, name: str) -> bool:
        """Does the acting origin's detector currently distrust this node?

        False when no detector has been started for the origin — routing
        only changes once somebody is actually measuring heartbeats.
        """
        detector = self._detectors.get(self.origin)
        return detector is not None and detector.is_suspect(name)

    def _writable(self, node: StorageNode) -> bool:
        """Should a write even be attempted at this node right now?"""
        if not node.up:
            return False
        if self.accountability.is_quarantined(node.name):
            self.quarantine_skips += 1
            return False
        if self._suspected(node.name):
            self.suspect_skips += 1
            return False
        if not self.breakers.begin_attempt(self.origin, node.name):
            self.breaker_skips += 1
            return False
        return True

    # -- hinted handoff ---------------------------------------------------------------

    def _queue_hint(self, name: str, chunk: Chunk) -> None:
        if self.accountability.is_quarantined(name):
            # A quarantined node gets no queued writes: re-admission runs
            # a full re-verified resync, which re-derives the same copies.
            self.hints_discarded += 1
            return
        hints = self._hints.setdefault(name, {})
        if chunk.uid not in hints:
            hints[chunk.uid] = chunk
            self.hints_queued += 1

    def _replay_hints(self, name: str) -> int:
        """Hand queued writes to a freshly revived node.

        The hint queue lives in the writer's memory, so its payloads are
        exactly as trustworthy as that process: every replayed chunk is
        re-verified against its uid on this side and rejected (counted in
        ``hint_rejections``) when the bytes no longer hash to it — a
        corrupted or adversarial replay must not become a durable copy.
        """
        node = self.nodes[name]
        if self.accountability.is_quarantined(name):
            discarded = len(self._hints.pop(name, {}))
            self.hints_discarded += discarded
            return 0
        hints = self._hints.pop(name, {})
        replayed = 0
        for uid, chunk in hints.items():
            if not chunk.is_valid():
                self.hint_rejections += 1
                continue
            try:
                self._node_put(node, chunk)
            except TransientError:
                self.transient_failures += 1
                self._queue_hint(name, chunk)  # keep it for the next revive
                continue
            replayed += 1
            self.hints_replayed += 1
        return replayed

    def pending_hints(self) -> Dict[str, int]:
        """Queued hinted-handoff chunks per down node."""
        return {name: len(hints) for name, hints in self._hints.items() if hints}

    def pending_hint_chunks(self) -> Dict[str, List[Chunk]]:
        """The queued hint payloads themselves, per target node.

        Public so fault injection can model a compromised hint holder
        (:func:`repro.faults.byzantine.corrupt_queued_hints`) without
        reaching into private state.
        """
        return {
            name: list(hints.values()) for name, hints in self._hints.items() if hints
        }

    def replace_hint(self, name: str, chunk: Chunk) -> bool:
        """Swap one queued hint payload in place (same uid slot).

        Returns False when no hint for that uid is queued against the
        node.  The replacement is *not* verified here — this is the
        fault-injection surface; :meth:`_replay_hints` is the defense.
        """
        hints = self._hints.get(name)
        if hints is None or chunk.uid not in hints:
            return False
        hints[chunk.uid] = chunk
        return True

    def flush_hints(self) -> int:
        """Replay hints queued against nodes that are currently up.

        A hint normally drains when its node revives, but a write can also
        miss a *live* replica (retry budget exhausted); those hints would
        otherwise sit forever.  Returns the number handed off.
        """
        return sum(
            self._replay_hints(name)
            for name in list(self._hints)
            if self.nodes[name].up
        )

    def drop_hints(self) -> int:
        """Forget every queued hint (simulates the hint holder restarting).

        Hinted handoff is best-effort — the queue lives in the writer's
        memory and dies with it.  Losing it must not lose data: Merkle
        anti-entropy re-derives the same repairs from the replicas
        themselves.  Returns the number of hints dropped.
        """
        dropped = sum(len(hints) for hints in self._hints.values())
        self._hints.clear()
        return dropped

    # -- ChunkStore primitives -------------------------------------------------------

    def replica_nodes(self, uid: Uid) -> List[StorageNode]:
        """The nodes responsible for ``uid``, in ring placement order.

        Part of the public surface: the scrubber walks placement to find
        healthy repair sources, and tests assert placement without reaching
        into ring internals.
        """
        return [self.nodes[name] for name in self.ring.replicas(uid, self.replication)]

    def _node_put(
        self,
        node: StorageNode,
        chunk: Chunk,
        origin: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """One replica write, retried through the policy.

        With ``verify_writes`` the written copy is read back and checked
        against the uid before it counts: a torn or dropped write looks like
        any other transient failure and gets retried.  The whole write-and-
        verify exchange is one message on the transport.

        The verify outcome also feeds the accountability board: a write
        exchange that exhausts its retries with the read-back *never*
        verifying is the fake-ack signature (honest rot striking every
        attempt of every retry is astronomically unlikely), while any
        verified write clears the node's unverified-run counter.
        """
        verify_failures = [0]

        def exchange() -> None:
            node.put(chunk)
            if not self.verify_writes:
                return
            got = node.store.get_maybe(chunk.uid)
            if got is None or not got.is_valid():
                verify_failures[0] += 1
                # Evict the bad copy: put() dedups on uid, so a retry would
                # otherwise no-op against the torn bytes squatting there.
                node.store.delete(chunk.uid)
                raise TransientStoreError(
                    f"write of {chunk.uid.short()} to {node.name} did not verify"
                )

        try:
            self.retry.call(
                lambda: self._send(
                    node, "put", chunk.uid, exchange, origin=origin, deadline=deadline
                ),
                deadline=deadline,
            )
        except TransientError:
            if verify_failures[0] > 0:
                self.accountability.record_unverified_write(
                    origin or self.origin, node.name, chunk.uid
                )
            raise
        if self.verify_writes:
            self.accountability.record_verified_write(node.name)

    def transfer(self, source: StorageNode, target: StorageNode, chunk: Chunk) -> bool:
        """Ship one replica copy node-to-node (the anti-entropy path).

        The message travels ``source -> target`` on the transport — a
        partition between the *client* and the nodes does not block two
        nodes on the same side syncing each other.  Returns False when the
        write cannot complete within the retry budget (a later pass
        retries); the copy is verified on arrival like any other write.

        The payload itself is checked against its uid before any write is
        attempted: anti-entropy must not launder a lying source's bytes
        into a healthy replica, so an invalid transfer is rejected and
        attributed to the source (``transfer_rejections`` + a weak
        suspicion event on its scorecard).
        """
        if not chunk.is_valid():
            self.transfer_rejections += 1
            self.accountability.record_suspicion(
                target.name,
                source.name,
                chunk.uid,
                op="transfer",
                kind="bad-transfer",
                served=Chunk.compute_uid(chunk.type, chunk.data).hex(),
            )
            return False
        try:
            self._node_put(target, chunk, origin=source.name)
        except TransientError:
            self.transient_failures += 1
            return False
        return True

    def _insert(self, chunk: Chunk) -> None:
        self._maybe_tick()
        deadline = self._begin_deadline()
        acked = 0
        missed: List[StorageNode] = []
        attempted: Set[str] = set()
        for node in self.replica_nodes(chunk.uid):
            attempted.add(node.name)
            if deadline is not None and deadline.expired():
                missed.append(node)
                continue
            if not self._writable(node):
                missed.append(node)
                continue
            try:
                self._node_put(node, chunk, deadline=deadline)
            except TransientError:
                # DeadlineExceededError lands here too: this replica's
                # write ran out of budget — hint it like any other miss
                # and let the post-loop accounting decide the verb's fate.
                self.transient_failures += 1
                missed.append(node)
                self.breakers.record(self.origin, node.name, False)
                continue
            acked += 1
            self.breakers.record(self.origin, node.name, True)
        if self.sloppy_quorum and acked < max(self.write_quorum, 1):
            # Sloppy quorum: walk further clockwise and let the next
            # reachable nodes stand in for the unreachable home replicas.
            # The home nodes still get hints (queued below), and Merkle
            # anti-entropy migrates the stand-in copies home after heal.
            for name in self.ring.replicas(chunk.uid, len(self.nodes)):
                if acked >= max(self.write_quorum, 1):
                    break
                if deadline is not None and deadline.expired():
                    break
                if name in attempted:
                    continue
                attempted.add(name)
                stand_in = self.nodes[name]
                if not self._writable(stand_in):
                    continue
                try:
                    self._node_put(stand_in, chunk, deadline=deadline)
                except TransientError:
                    self.transient_failures += 1
                    self.breakers.record(self.origin, stand_in.name, False)
                    continue
                acked += 1
                self.breakers.record(self.origin, stand_in.name, True)
                self.sloppy_writes += 1
        if (
            acked < max(self.write_quorum, 1)
            and deadline is not None
            and deadline.expired()
        ):
            # The budget, not the cluster, decided this write's fate: the
            # caller gets the deadline error (retryable with a fresh
            # budget), not a verdict about replica health.
            self.deadline_exceeded += 1
            raise DeadlineExceededError(
                f"write of {chunk.uid.short()} acked by {acked}/{self.replication} "
                f"when its {deadline.budget}-tick budget ran out",
                budget=deadline.budget,
                elapsed=deadline.elapsed(),
            )
        if acked == 0:
            raise NodeDownError(
                f"no reachable replica target for {chunk.uid.short()} "
                f"(all {len(attempted)} candidate nodes down or cut off)"
            )
        if acked < self.write_quorum:
            raise QuorumWriteError(
                f"write of {chunk.uid.short()} acked by {acked}/{self.replication} "
                f"replicas, quorum is {self.write_quorum}",
                acked=acked,
                required=self.write_quorum,
            )
        for node in missed:
            self._queue_hint(node.name, chunk)

    def _read_replica(
        self,
        node: StorageNode,
        uid: Uid,
        deadline: Optional[Deadline] = None,
        timeout_ticks: Optional[int] = None,
    ) -> Tuple[str, Optional[Chunk]]:
        """Read one replica: ('ok'|'missing'|'corrupt'|'unreachable', chunk).

        With ``repair_reads`` on, a mismatching payload is re-read up to
        the retry budget to separate wire corruption (a later attempt
        verifies) from rot on the replica (every attempt mismatches).

        ``timeout_ticks`` is a hedge threshold: the read gets exactly one
        un-retried attempt capped at that many ticks — a hedged read does
        not burn the retry budget on a replica it already believes is
        slow, it moves to the next one.
        """
        attempts = self.retry.attempts if self.repair_reads else 1
        if timeout_ticks is not None:
            attempts = 1
        saw_corrupt = False
        served: Optional[Chunk] = None
        for _ in range(attempts):
            try:
                if timeout_ticks is not None:
                    chunk = self._send(
                        node,
                        "get",
                        uid,
                        lambda: node.get(uid),
                        deadline=deadline,
                        timeout_ticks=timeout_ticks,
                    )
                else:
                    chunk = self.retry.call(
                        lambda: self._send(
                            node, "get", uid, lambda: node.get(uid), deadline=deadline
                        ),
                        deadline=deadline,
                    )
            except DeadlineExceededError:
                # The verb's budget, not this replica, stopped the read:
                # propagate instead of mislabelling the node unreachable.
                raise
            except TransientError:
                self.transient_failures += 1
                return "unreachable", None
            if chunk is None:
                return "missing", None
            if not self.repair_reads or chunk.is_valid():
                return "ok", chunk
            self.corrupt_reads += 1
            saw_corrupt = True
            served = chunk
        # On 'corrupt' the mismatching payload rides along so the caller
        # can attribute *what* was served, not just that something was.
        return ("corrupt" if saw_corrupt else "missing"), served

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        self._maybe_tick()
        deadline = self._begin_deadline()
        started = self._now()
        try:
            return self._replicated_read(uid, deadline)
        except DeadlineExceededError as error:
            self.deadline_exceeded += 1
            self._stamp_deadline(error, deadline)
            raise
        finally:
            self.last_read_ticks = self._now() - started
            if self.transport is not None:
                self.read_ticks.observe(self.last_read_ticks)

    def _replicated_read(
        self, uid: Uid, deadline: Optional[Deadline]
    ) -> Optional[Chunk]:
        """The replica walk behind :meth:`_fetch` (which times it)."""
        placement = self.replica_nodes(uid)
        # Suspected replicas go to the back of the line: they still get
        # tried (suspicion can be wrong) but no longer burn the retry
        # budget before a healthy replica gets a chance.
        ordered = [n for n in placement if not self._suspected(n.name)]
        ordered += [n for n in placement if self._suspected(n.name)]
        candidates = []
        for n in ordered:
            if not n.up:
                continue
            # QUARANTINED replicas are out of the read path entirely — no
            # fallback: a node with quarantine-grade tamper evidence does
            # not get a last word just because its siblings are down.
            if self.accountability.is_quarantined(n.name):
                self.quarantine_skips += 1
                continue
            candidates.append(n)
        # Nodes whose breaker (from this origin) is OPEN go last — tried
        # only when every admitted replica has failed, as the breaker's
        # half-open probe of last resort.
        admitted: List[StorageNode] = []
        tripped: List[StorageNode] = []
        for node in candidates:
            if self.breakers.begin_attempt(self.origin, node.name):
                admitted.append(node)
            else:
                self.breaker_skips += 1
                tripped.append(node)
        if not admitted:
            admitted = tripped
            tripped = []
        found: Optional[Chunk] = None
        repair_targets: List[StorageNode] = []
        saw_rot = False
        attempted_failures = 0
        hedged = False
        deadline_cut = False
        for position, node in enumerate(admitted):
            if deadline is not None and deadline.expired():
                deadline_cut = True
                break
            # Hedge arming: cap the first attempt at the primary's tracked
            # p95 when another replica is waiting behind it.  At most one
            # hedge per read — later replicas run with the normal budget.
            threshold: Optional[int] = None
            if (
                self.hedge_reads
                and self.transport is not None
                and not hedged
                and position + 1 < len(admitted)
            ):
                threshold = self.latency.hedge_threshold(
                    self.origin,
                    node.name,
                    "get",
                    q=self.hedge_quantile,
                    min_samples=self.HEDGE_MIN_SAMPLES,
                )
            before = self._now()
            status, chunk = self._read_replica(
                node, uid, deadline=deadline, timeout_ticks=threshold
            )
            if self.transport is not None:
                self.latency.observe(
                    self.origin, node.name, "get", self._now() - before
                )
            # A replica that *answered* (even "missing"/"corrupt") is not
            # gray; only failing to get an answer feeds the breaker.
            self.breakers.record(self.origin, node.name, status != "unreachable")
            if status == "ok":
                if attempted_failures > 0:
                    self.failovers += 1
                if hedged:
                    self.hedge_wins += 1
                found = chunk
                break
            attempted_failures += 1
            if threshold is not None and status == "unreachable":
                # The hedge timeout fired: the next replica *is* the hedge.
                # The abandoned response still lands as a stale delivery.
                self.hedges_issued += 1
                hedged = True
            if status == "missing":
                repair_targets.append(node)
            elif status == "corrupt":
                # Rot on this replica: quarantine the copy, repair below.
                # Weak-grade attribution: record *which* node served
                # *what* digest instead of the uid it claimed.  One-off
                # rot produces these too, so this alone never quarantines
                # — the post-repair audit below is the discriminator.
                saw_rot = True
                self.accountability.record_suspicion(
                    self.origin,
                    node.name,
                    uid,
                    op="get",
                    kind="served-corrupt",
                    served=(
                        Chunk.compute_uid(chunk.type, chunk.data).hex()
                        if chunk is not None
                        else None
                    ),
                )
                node.drop(uid)
                repair_targets.append(node)
            # 'unreachable' nodes are skipped; repair() will catch them up.
        if found is None and not deadline_cut and tripped:
            # Every admitted replica failed: probe the tripped ones rather
            # than fail a read that an OPEN breaker could have served.
            for node in tripped:
                if deadline is not None and deadline.expired():
                    deadline_cut = True
                    break
                status, chunk = self._read_replica(node, uid, deadline=deadline)
                self.breakers.record(self.origin, node.name, status != "unreachable")
                if status == "ok":
                    if attempted_failures > 0:
                        self.failovers += 1
                    found = chunk
                    break
                attempted_failures += 1
        if found is None:
            self.failed_reads += 1
            if saw_rot:
                raise ChunkCorruptionError(
                    f"every reachable replica of {uid.short()} is corrupt"
                )
            if deadline_cut:
                assert deadline is not None
                raise DeadlineExceededError(
                    f"read of {uid.short()} ran out of its "
                    f"{deadline.budget}-tick budget with replicas untried",
                    budget=deadline.budget,
                    elapsed=deadline.elapsed(),
                )
            return None
        for node in repair_targets:
            if deadline is not None and deadline.expired():
                break  # repair is best-effort; anti-entropy catches up
            try:
                self._node_put(node, found, deadline=deadline)
            except TransientError:
                self.transient_failures += 1
                continue
            self.read_repairs += 1
            if self.audit_repairs:
                self._audit_replica(node, found)
        return found

    def _audit_replica(self, node: StorageNode, chunk: Chunk) -> Optional[bool]:
        """Post-repair audit: re-read a copy the writer *just* verified.

        This is the rot-vs-lies discriminator.  ``_node_put`` read the
        repair copy back and saw it hash to its uid; honest disk rot
        striking that exact fresh copy on ``audit_reads`` consecutive
        re-reads (each itself re-read once by ``diagnose_copy``) has
        probability ~(rate²)^reads — while a replica that lies at any
        steady rate keeps failing audits forever.  Every re-read failing
        is therefore strike-grade evidence; any verifying re-read is a
        clean audit.

        Runs on the management plane (direct store access, like scrub and
        ``durability_check``) so auditing costs zero transport ticks and
        cannot eat a client verb's deadline budget.  Returns True on a
        clean audit, False on a strike, None for no verdict (unreadable).
        """
        from repro.store.scrub import diagnose_copy  # deferred: scrub sits a layer above

        board = self.accountability
        self.repair_audits += 1
        last_status, last_served = "", None
        for _ in range(max(board.audit_reads, 1)):
            status, got, _ = diagnose_copy(node.store, chunk.uid, retry=self.retry)
            if status == "ok":
                board.record_clean_audit(node.name)
                return True
            if status == "unreadable":
                return None  # transient plane down: no verdict either way
            last_status, last_served = status, got
        self.repair_audit_failures += 1
        board.record_strike(
            self.origin,
            node.name,
            chunk.uid,
            op="get",
            kind=(
                "audit-mismatch" if last_status == "corrupt" else "audit-withheld"
            ),
            served=(
                Chunk.compute_uid(last_served.type, last_served.data).hex()
                if last_served is not None
                else None
            ),
        )
        return False

    def _contains(self, uid: Uid) -> bool:
        deadline = self._begin_deadline()
        for node in self.replica_nodes(uid):
            if not node.up:
                continue
            if self.accountability.is_quarantined(node.name):
                self.quarantine_skips += 1
                continue
            if deadline is not None and deadline.expired():
                self.deadline_exceeded += 1
                raise DeadlineExceededError(
                    f"has({uid.short()}) ran out of its "
                    f"{deadline.budget}-tick budget with replicas untried",
                    budget=deadline.budget,
                    elapsed=deadline.elapsed(),
                )
            try:
                if self.retry.call(
                    lambda: self._send(
                        node, "has", uid, lambda: node.has(uid), deadline=deadline
                    ),
                    deadline=deadline,
                ):
                    return True
            except DeadlineExceededError as error:
                self.deadline_exceeded += 1
                self._stamp_deadline(error, deadline)
                raise
            except TransientError:
                self.transient_failures += 1
        return False

    def _ids(self) -> Iterator[Uid]:
        seen: Set[Uid] = set()
        for node in self.nodes.values():
            for uid in node.store.ids():
                if uid not in seen:
                    seen.add(uid)
                    yield uid

    def _delete(self, uid: Uid) -> bool:
        removed = False
        for node in self.nodes.values():
            removed = node.drop(uid) or removed
        for hints in self._hints.values():
            hints.pop(uid, None)
        return removed

    # -- clients ---------------------------------------------------------------------

    def client(
        self, origin: str, deadline_budget: Optional[int] = None
    ) -> "ClusterClient":
        """A named client endpoint on this cluster.

        Each client's requests are tagged with its ``origin``, so the
        transport can partition clients independently (two engines on
        opposite sides of a split) and each origin accrues its own
        failure-detector view.  ``deadline_budget`` overrides the
        cluster-wide budget for this client's verbs (a latency-sensitive
        client can run tighter deadlines than a batch one).
        """
        return ClusterClient(self, origin, deadline_budget=deadline_budget)

    # -- maintenance --------------------------------------------------------------------

    def trusted_nodes(self) -> List[StorageNode]:
        """Live nodes that are not QUARANTINED (quorum/repair candidates)."""
        return [
            node
            for node in self.live_nodes()
            if not self.accountability.is_quarantined(node.name)
        ]

    def _healthy_source(self, uid: Uid) -> Optional[Chunk]:
        """A verified copy from any trusted live node (placement first).

        Quarantined nodes are never repair *sources*: even a copy that
        verifies right now came from a replica with quarantine-grade
        tamper evidence, and repair must not launder its holdings back
        into the trusted set.
        """
        trusted = self.trusted_nodes()
        candidates = [node for node in self.replica_nodes(uid) if node in trusted]
        candidates.extend(node for node in trusted if node not in candidates)
        for node in candidates:
            if not node.store.has(uid):
                continue
            try:
                chunk = self.retry.call(lambda: node.store.get_maybe(uid))
            except TransientError:
                self.transient_failures += 1
                continue
            if chunk is not None and chunk.is_valid():
                return chunk
        return None

    def repair(self) -> int:
        """Merkle anti-entropy repair: converge every live replica.

        Replaces the old full-sweep loop (kept as
        :meth:`full_sweep_repair` — the benchmark baseline): instead of
        walking every uid in the cluster, each node pair compares compact
        digest trees over the ring's arcs and ships exactly the chunks
        that differ, so a mostly-converged cluster pays O(divergence),
        not O(N).  Rotten copies are quarantined during tree construction
        and re-shipped from healthy peers, so this pass also subsumes the
        scrubber's repair role.  Returns replica copies shipped; the full
        :class:`~repro.cluster.antientropy.SyncReport` lands in
        ``last_sync_report``.
        """
        report = anti_entropy_pass(self)
        self.last_sync_report = report
        return report.chunks_transferred

    def anti_entropy_pass(self) -> SyncReport:
        """One Merkle reconciliation round; returns the full report."""
        report = anti_entropy_pass(self)
        self.last_sync_report = report
        return report

    def full_sweep_repair(self) -> int:
        """The pre-Merkle repair loop: walk EVERY uid, check EVERY replica.

        Kept as the O(N·R) baseline the anti-entropy benchmark measures
        against; ``sweep_examined`` records how many chunks it touched.
        Returns copies made.  Source copies are verified against their
        uid before being copied, so repair never propagates rot.
        """
        self.flush_hints()
        copies = 0
        self.sweep_examined = 0
        for uid in list(self._ids()):
            self.sweep_examined += 1
            trusted = self.trusted_nodes()
            targets = [
                node
                for node in self.replica_nodes(uid)
                if node in trusted and not node.store.has(uid)
            ]
            if not targets:
                continue
            source = self._healthy_source(uid)
            if source is None:
                continue
            for node in targets:
                try:
                    self._node_put(node, source)
                except TransientError:
                    self.transient_failures += 1
                    continue  # a later repair / scrub pass will place it
                copies += 1
        return copies

    def rebalance(self) -> int:
        """Move chunks onto their current ring placement; drop strays.

        Returns chunks copied.  (Repair first places, then strays drop.)
        """
        copies = self.repair()
        for node in self.trusted_nodes():
            for uid in list(node.store.ids()):
                owners = self.ring.replicas(uid, self.replication)
                if node.name not in owners:
                    # Only drop if every live, trusted owner has a copy —
                    # a copy on a quarantined owner does not count.
                    if all(
                        self.nodes[name].up
                        and not self.accountability.is_quarantined(name)
                        and self.nodes[name].store.has(uid)
                        for name in owners
                    ):
                        node.drop(uid)
        return copies

    def scrub(self, **kwargs: object):
        """One scrub pass (see :mod:`repro.store.scrub`): re-hash every
        replica, quarantine rot, re-copy from healthy replicas."""
        from repro.store.scrub import Scrubber

        return Scrubber(self, **kwargs).scrub()  # type: ignore[arg-type]

    def readmit(self, name: str) -> int:
        """Re-admit a quarantined node after a fully re-verified resync.

        Every uid the node claims is re-read and re-hashed; copies that
        fail verification are dropped (and broadcast to subscribed caches
        via ``notify_swept``, so a shared cache cannot keep serving what
        the node no longer holds).  The node then re-enters the trust
        machine at SUSPECT — probation, not absolution — and one
        anti-entropy pass restores its replica set from trusted peers.
        Returns the number of unverifiable copies dropped.

        Call this only once the *cause* is resolved (the adversarial
        wrapper removed, the disk replaced): a node still lying simply
        re-earns its quarantine.
        """
        from repro.store.scrub import diagnose_copy  # deferred: scrub sits a layer above

        node = self.nodes[name]
        dropped: List[Uid] = []
        for uid in list(node.store.ids()):
            status, _, _ = diagnose_copy(node.store, uid, retry=self.retry)
            if status != "ok":
                node.drop(uid)
                dropped.append(uid)
        if dropped:
            self.notify_swept(dropped)
        self.accountability.readmit(name)
        self.anti_entropy_pass()
        return len(dropped)

    # -- diagnostics -----------------------------------------------------------------------

    def placement_histogram(self) -> Dict[str, int]:
        """Chunks per node (balance metric for the cluster ablation)."""
        return {name: node.chunk_count() for name, node in sorted(self.nodes.items())}

    def total_replica_count(self) -> int:
        """Sum of replicas across nodes."""
        return sum(node.chunk_count() for node in self.nodes.values())

    def durability_check(self, verify: bool = True) -> Dict[str, int]:
        """How many chunks have 0 / 1 / ≥2 live replicas right now.

        With ``verify`` (the default) a copy only counts when its stored
        bytes re-hash to the uid — the scrubber's wire-vs-disk
        discrimination, so a transient wire mismatch is re-read rather
        than miscounted.  Silent rot therefore shows up as
        under-replication instead of posing as a healthy replica.
        Counts hinted-handoff copies as live: a chunk whose only copies
        sit in the hint queue is recoverable, not lost.
        """
        buckets = {"lost": 0, "single": 0, "replicated": 0}
        hinted: Set[Uid] = set()
        for hints in self._hints.values():
            hinted.update(hints)
        # A quarantined node's copies are untrusted and do not count
        # toward durability: the report shows the real exposure.
        live = self.trusted_nodes()
        holdings: Dict[str, Set[Uid]] = {}
        if verify:
            from repro.store.scrub import diagnose_copy  # deferred: scrub sits a layer above

            for node in live:
                held: Set[Uid] = set()
                for uid in list(node.store.ids()):
                    status, _, _ = diagnose_copy(node.store, uid, retry=self.retry)
                    if status == "ok":
                        held.add(uid)
                holdings[node.name] = held
        else:
            for node in live:
                holdings[node.name] = set(node.store.ids())
        for uid in self._ids():
            copies = sum(
                1
                for node in self.replica_nodes(uid)
                if node.up and uid in holdings.get(node.name, ())
            )
            if copies == 0:
                # May still survive on a non-placement node (pre-rebalance).
                copies = sum(1 for node in live if uid in holdings[node.name])
            if copies == 0 and uid in hinted:
                copies = 1
            if copies == 0:
                buckets["lost"] += 1
            elif copies == 1:
                buckets["single"] += 1
            else:
                buckets["replicated"] += 1
        return buckets

    def health_report(self) -> Dict[str, object]:
        """Operational counters in one place (chaos-suite assertions)."""
        report: Dict[str, object] = {
            "nodes_up": len(self.live_nodes()),
            "nodes_total": len(self.nodes),
            "failed_reads": self.failed_reads,
            "failovers": self.failovers,
            "corrupt_reads": self.corrupt_reads,
            "read_repairs": self.read_repairs,
            "hints_queued": self.hints_queued,
            "hints_replayed": self.hints_replayed,
            "hints_pending": sum(len(h) for h in self._hints.values()),
            "transient_failures": self.transient_failures,
            "suspect_skips": self.suspect_skips,
            "sloppy_writes": self.sloppy_writes,
            "hedges_issued": self.hedges_issued,
            "hedge_wins": self.hedge_wins,
            "deadline_exceeded": self.deadline_exceeded,
            "retry_deadline_stops": self.retry.deadline_stops,
            "breaker_skips": self.breaker_skips,
            "breakers": self.breakers.snapshot(),
            "quarantine_skips": self.quarantine_skips,
            "hints_discarded": self.hints_discarded,
            "hint_rejections": self.hint_rejections,
            "transfer_rejections": self.transfer_rejections,
            "repair_audits": self.repair_audits,
            "repair_audit_failures": self.repair_audit_failures,
            "accountability": self.accountability.snapshot(),
            "tamper_evidence": [
                record.to_dict() for record in self.accountability.evidence
            ],
            "suspected": sorted(
                {
                    name
                    for detector in self._detectors.values()
                    for name in detector.suspected()
                }
            ),
            "degraded": sorted(
                {
                    name
                    for detector in self._detectors.values()
                    for name in detector.degraded()
                }
            ),
            "read_latency": self.read_ticks.snapshot(),
            "latency_observations": self.latency.observations,
            "durability": self.durability_check(),
        }
        if self.transport is not None:
            report["network"] = self.transport.stats()
        return report


class ClusterClient(ChunkStore):
    """A named endpoint issuing requests against a shared cluster.

    Everything delegates to the cluster's public ChunkStore surface; the
    only twist is that the cluster's acting ``origin`` is swapped to this
    client's name for the duration of each call, so the transport sees
    the request coming from *this* endpoint (its partition side, its
    fault stream) and failure detection accrues to this origin's view.
    Two engines opened over two clients therefore experience a split
    exactly the way two application servers would.
    """

    def __init__(
        self,
        cluster: ClusterStore,
        origin: str,
        deadline_budget: Optional[int] = None,
    ) -> None:
        super().__init__(verify_reads=cluster.verify_reads)
        if deadline_budget is not None and deadline_budget < 1:
            raise ValueError("deadline_budget must be >= 1 tick")
        self.cluster = cluster
        self.origin = origin
        #: Per-client verb budget; None inherits the cluster-wide setting.
        self.deadline_budget = deadline_budget

    def _as_origin(self, fn: Callable[[], object]) -> object:
        previous = self.cluster.origin
        previous_budget = self.cluster.deadline_budget
        self.cluster.origin = self.origin
        if self.deadline_budget is not None:
            self.cluster.deadline_budget = self.deadline_budget
        try:
            return fn()
        finally:
            self.cluster.origin = previous
            self.cluster.deadline_budget = previous_budget

    def _insert(self, chunk: Chunk) -> None:
        self._as_origin(lambda: self.cluster.put(chunk))

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        return self._as_origin(lambda: self.cluster.get_maybe(uid))  # type: ignore[return-value]

    def _contains(self, uid: Uid) -> bool:
        return bool(self._as_origin(lambda: self.cluster.has(uid)))

    def _ids(self) -> Iterator[Uid]:
        return iter(list(self.cluster.ids()))

    def _delete(self, uid: Uid) -> bool:
        return bool(self._as_origin(lambda: self.cluster.delete(uid)))

    def failure_detector(self) -> FailureDetector:
        """This origin's membership view."""
        return self.cluster.failure_detector(self.origin)

    def tick(self) -> Dict[str, str]:
        """Run one heartbeat round from this origin."""
        return dict(self._as_origin(lambda: self.cluster.tick()))  # type: ignore[arg-type]

    def health_report(self) -> Dict[str, object]:
        """The cluster's health counters, gathered as this origin."""
        return dict(self._as_origin(lambda: self.cluster.health_report()))  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"ClusterClient(origin={self.origin!r})"
