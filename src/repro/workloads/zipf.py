"""Zipf-distributed key sampling (skewed access patterns)."""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s."""

    def __init__(self, n: int, s: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0:
            raise ValueError("s must be >= 0")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        """One rank draw."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent draws."""
        return [self.sample() for _ in range(count)]

    def pick(self, items: Sequence[T]) -> T:
        """Draw an element from ``items`` (must have length n)."""
        if len(items) != self.n:
            raise ValueError("items length must equal n")
        return items[self.sample()]
