"""Synthetic workload generators for the benchmarks and examples.

Everything is seeded and deterministic: the same parameters always
produce the same CSVs, edit scripts and version chains, so benchmark
output is reproducible run to run.
"""

from repro.workloads.csvgen import (
    generate_csv,
    generate_rows,
    mutate_csv_one_word,
    rows_to_csv,
)
from repro.workloads.edits import EditScript, make_edit_script
from repro.workloads.versions import make_branching_history, make_version_chain
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "generate_csv",
    "generate_rows",
    "mutate_csv_one_word",
    "rows_to_csv",
    "EditScript",
    "make_edit_script",
    "make_branching_history",
    "make_version_chain",
    "ZipfSampler",
]
