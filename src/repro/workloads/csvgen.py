"""Deterministic synthetic CSV datasets.

The generated "sales" table mimics the vendor datasets of the demo UI:
an id primary key plus a few text/numeric columns.  Sizes are tunable so
the Fig. 4 benchmark can build a ~330 KB file like the paper's.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.table.csvio import render_csv

SALES_COLUMNS = ["id", "vendor", "product", "region", "quantity", "price", "note"]

_VENDORS = ["acme", "globex", "initech", "umbrella", "hooli", "stark", "wayne"]
_PRODUCTS = [
    "widget", "gadget", "sprocket", "gizmo", "doohickey", "contraption",
    "apparatus", "device", "instrument", "mechanism",
]
_REGIONS = ["north", "south", "east", "west", "central"]
_WORDS = [
    "prompt", "delivery", "delayed", "stock", "approved", "pending", "priority",
    "standard", "fragile", "bulk", "sample", "returned", "verified", "flagged",
]


def generate_rows(count: int, seed: int = 0) -> List[Dict[str, str]]:
    """``count`` deterministic sales rows."""
    rng = random.Random(seed)
    rows: List[Dict[str, str]] = []
    for index in range(count):
        rows.append(
            {
                "id": f"{index:07d}",
                "vendor": rng.choice(_VENDORS),
                "product": rng.choice(_PRODUCTS),
                "region": rng.choice(_REGIONS),
                "quantity": str(rng.randint(1, 500)),
                "price": f"{rng.uniform(0.5, 999.0):.2f}",
                "note": " ".join(rng.choice(_WORDS) for _ in range(4)),
            }
        )
    return rows


def rows_to_csv(rows: List[Dict[str, str]]) -> str:
    """Render rows with the standard sales header."""
    return render_csv(SALES_COLUMNS, iter(rows))


def generate_csv(row_count: int, seed: int = 0) -> str:
    """A full synthetic CSV (≈66 bytes/row; 5200 rows ≈ 330 KB)."""
    return rows_to_csv(generate_rows(row_count, seed))


def mutate_csv_one_word(csv_text: str, seed: int = 1) -> str:
    """Change exactly one word somewhere in the body (the Fig. 4 edit).

    Picks a data line deterministically and swaps one ``note`` word for a
    marker token, leaving everything else byte-identical.
    """
    lines = csv_text.splitlines(keepends=True)
    if len(lines) < 2:
        raise ValueError("CSV too small to mutate")
    rng = random.Random(seed)
    target = rng.randrange(1, len(lines))
    line = lines[target]
    for word in _WORDS:
        if word in line:
            lines[target] = line.replace(word, "CHANGEDWORD", 1)
            break
    else:
        lines[target] = line.rstrip("\n") + "X\n"
    return "".join(lines)
