"""Version-history generators: linear chains and branching trees."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.csvgen import generate_rows
from repro.workloads.edits import make_edit_script


def make_version_chain(
    base_rows: int,
    versions: int,
    edits_per_version: int = 10,
    seed: int = 0,
) -> List[List[Dict[str, str]]]:
    """A linear history: v0 plus ``versions - 1`` successive edited states.

    Each step applies ``edits_per_version`` row updates (plus one insert
    and one delete for realism) to the previous state.
    """
    if versions < 1:
        raise ValueError("need at least one version")
    states = [generate_rows(base_rows, seed=seed)]
    for step in range(1, versions):
        script = make_edit_script(
            states[-1],
            updates=edits_per_version,
            inserts=1,
            deletes=1,
            seed=seed * 1000 + step,
        )
        states.append(script.apply(states[-1]))
    return states


def make_branching_history(
    base_rows: int,
    branches: int,
    versions_per_branch: int,
    edits_per_version: int = 10,
    seed: int = 0,
) -> Tuple[List[Dict[str, str]], Dict[str, List[List[Dict[str, str]]]]]:
    """A base state plus ``branches`` independent edit chains from it.

    Returns ``(base_state, {branch name: [state1, state2, ...]})`` — the
    multi-admin collaboration shape of the demo (master + vendor forks).
    """
    base = generate_rows(base_rows, seed=seed)
    tree: Dict[str, List[List[Dict[str, str]]]] = {}
    for branch_index in range(branches):
        name = f"branch-{branch_index}"
        state = base
        chain: List[List[Dict[str, str]]] = []
        for step in range(versions_per_branch):
            script = make_edit_script(
                state,
                updates=edits_per_version,
                inserts=1,
                deletes=1,
                seed=seed * 10000 + branch_index * 100 + step,
            )
            state = script.apply(state)
            chain.append(state)
        tree[name] = chain
    return base, tree
