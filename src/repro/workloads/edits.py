"""Deterministic edit scripts over row dictionaries."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class EditScript:
    """A batch of row-level edits applicable to a dataset state."""

    updates: Dict[str, Dict[str, str]] = field(default_factory=dict)  # pk -> cell changes
    inserts: List[Dict[str, str]] = field(default_factory=list)
    deletes: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total number of edited rows (the D of the diff benchmarks)."""
        return len(self.updates) + len(self.inserts) + len(self.deletes)

    def apply(self, rows: List[Dict[str, str]], pk_column: str = "id") -> List[Dict[str, str]]:
        """Produce the edited dataset state (input untouched)."""
        by_pk = {row[pk_column]: dict(row) for row in rows}
        for pk in self.deletes:
            by_pk.pop(pk, None)
        for pk, changes in self.updates.items():
            if pk in by_pk:
                by_pk[pk].update(changes)
        for row in self.inserts:
            by_pk[row[pk_column]] = dict(row)
        return [by_pk[pk] for pk in sorted(by_pk)]


def make_edit_script(
    rows: List[Dict[str, str]],
    updates: int = 0,
    inserts: int = 0,
    deletes: int = 0,
    seed: int = 0,
    pk_column: str = "id",
    clustered: bool = True,
) -> EditScript:
    """Build a deterministic edit script against ``rows``.

    ``clustered=True`` picks update/delete targets from one contiguous
    key range (the cheap case for splice editing); ``False`` scatters
    them uniformly.
    """
    rng = random.Random(seed)
    pks = sorted(row[pk_column] for row in rows)
    script = EditScript()

    candidates: List[str]
    needed = updates + deletes
    if needed > len(pks):
        raise ValueError("not enough rows for the requested edits")
    if clustered and needed:
        start = rng.randrange(0, len(pks) - needed + 1)
        candidates = pks[start : start + needed]
    else:
        candidates = rng.sample(pks, needed) if needed else []

    for pk in candidates[:updates]:
        script.updates[pk] = {"note": f"edited-{rng.randrange(10**6)}"}
    script.deletes = list(candidates[updates:])

    max_id = max((int(pk) for pk in pks), default=-1)
    for offset in range(inserts):
        new_id = f"{max_id + 1 + offset:07d}"
        script.inserts.append(
            {
                "id": new_id,
                "vendor": "newvendor",
                "product": "newproduct",
                "region": "north",
                "quantity": str(rng.randint(1, 500)),
                "price": f"{rng.uniform(0.5, 999.0):.2f}",
                "note": f"inserted-{rng.randrange(10**6)}",
            }
        )
    return script
