"""Branch-based access control (the "Access Control: branch-based" box in
Fig. 1).

Grants are (principal, key pattern, branch pattern, permission).  A
pattern is an exact name or ``*``.  :class:`SecuredForkBase` wraps the
engine and checks every verb against the caller's grants — e.g. Admin A
may write ``master`` of Dataset-1 while Admin B may only write the
``vendorX`` branch, the multi-tenant setup of the demo.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.chunk import Uid
from repro.db.engine import ForkBase, VersionInfo
from repro.errors import AccessDeniedError
from repro.vcs.branches import DEFAULT_BRANCH


class Permission(enum.IntEnum):
    """Ordered permission levels; higher levels imply lower ones."""

    READ = 1
    WRITE = 2
    ADMIN = 3


@dataclass(frozen=True)
class Grant:
    """One access rule."""

    principal: str
    key_pattern: str  # exact key or "*"
    branch_pattern: str  # exact branch or "*"
    permission: Permission

    def matches(self, principal: str, key: str, branch: str) -> bool:
        """Does this grant apply to the request?"""
        return (
            self.principal == principal
            and self.key_pattern in ("*", key)
            and self.branch_pattern in ("*", branch)
        )


class AccessController:
    """Holds grants and answers permission checks."""

    def __init__(self) -> None:
        self._grants: List[Grant] = []

    def grant(
        self,
        principal: str,
        permission: Permission,
        key: str = "*",
        branch: str = "*",
    ) -> None:
        """Add a rule."""
        self._grants.append(Grant(principal, key, branch, permission))

    def revoke(self, principal: str, key: str = "*", branch: str = "*") -> None:
        """Remove matching rules."""
        self._grants = [
            grant
            for grant in self._grants
            if not (
                grant.principal == principal
                and grant.key_pattern == key
                and grant.branch_pattern == branch
            )
        ]

    def level(self, principal: str, key: str, branch: str) -> int:
        """Highest permission the principal holds for (key, branch)."""
        levels = [
            grant.permission
            for grant in self._grants
            if grant.matches(principal, key, branch)
        ]
        return max(levels) if levels else 0

    def check(
        self, principal: str, permission: Permission, key: str, branch: str
    ) -> None:
        """Raise :class:`AccessDeniedError` unless permitted."""
        if self.level(principal, key, branch) < permission:
            raise AccessDeniedError(
                f"{principal!r} lacks {permission.name} on {key!r}@{branch}"
            )

    def grants_for(self, principal: str) -> List[Grant]:
        """Rules mentioning the principal."""
        return [grant for grant in self._grants if grant.principal == principal]


class SecuredForkBase:
    """An engine view bound to one principal, enforcing the ACL.

    Only the verbs that make sense under access control are exposed; each
    checks before delegating to the wrapped :class:`ForkBase`.
    """

    def __init__(
        self, engine: ForkBase, acl: AccessController, principal: str
    ) -> None:
        self.engine = engine
        self.acl = acl
        self.principal = principal

    def put(
        self,
        key: str,
        value,
        branch: str = DEFAULT_BRANCH,
        message: str = "",
    ) -> VersionInfo:
        """Write (requires WRITE on the target branch)."""
        self.acl.check(self.principal, Permission.WRITE, key, branch)
        return self.engine.put(
            key, value, branch=branch, message=message, author=self.principal
        )

    def get(
        self,
        key: str,
        branch: Optional[str] = None,
        version: Optional[Union[Uid, str]] = None,
    ):
        """Read (requires READ on the branch)."""
        self.acl.check(self.principal, Permission.READ, key, branch or DEFAULT_BRANCH)
        return self.engine.get(key, branch=branch, version=version)

    def diff(self, key: str, branch_a: str, branch_b: str):
        """Differential query (READ on both branches)."""
        self.acl.check(self.principal, Permission.READ, key, branch_a)
        self.acl.check(self.principal, Permission.READ, key, branch_b)
        return self.engine.diff(key, branch_a=branch_a, branch_b=branch_b)

    def branch(self, key: str, new_branch: str, from_branch: str = DEFAULT_BRANCH):
        """Fork (READ on source, WRITE on the new branch name)."""
        self.acl.check(self.principal, Permission.READ, key, from_branch)
        self.acl.check(self.principal, Permission.WRITE, key, new_branch)
        return self.engine.branch(key, new_branch, from_branch=from_branch)

    def merge(
        self,
        key: str,
        from_branch: str,
        into_branch: str = DEFAULT_BRANCH,
        resolver=None,
        message: str = "",
    ) -> VersionInfo:
        """Merge (READ on source, WRITE on target)."""
        self.acl.check(self.principal, Permission.READ, key, from_branch)
        self.acl.check(self.principal, Permission.WRITE, key, into_branch)
        return self.engine.merge(
            key,
            from_branch=from_branch,
            into_branch=into_branch,
            resolver=resolver,
            message=message,
            author=self.principal,
        )

    def delete_branch(self, key: str, branch: str) -> None:
        """Drop a branch head (requires ADMIN)."""
        self.acl.check(self.principal, Permission.ADMIN, key, branch)
        self.engine.delete_branch(key, branch)

    def rename_branch(self, key: str, old: str, new: str) -> None:
        """Rename a branch (requires ADMIN on both names)."""
        self.acl.check(self.principal, Permission.ADMIN, key, old)
        self.acl.check(self.principal, Permission.ADMIN, key, new)
        self.engine.rename_branch(key, old, new)
