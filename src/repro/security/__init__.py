"""Security layer: tamper evidence and access control.

Tamper evidence (paper §II-D, §III-C): "the storage is malicious, but the
users keep track of the latest uid of every branch."  Given a head uid, a
client can verify that every chunk of the returned value and every FNode
in the derivation history hashes back to the identifiers that reference
it — a malicious store cannot fabricate content for a known uid.

Access control: the demo architecture lists branch-based access control
among the semantic views; :mod:`~repro.security.acl` implements it with
per-key/per-branch grants and a wrapper engine that enforces them.
"""

from repro.security.acl import AccessController, Permission, SecuredForkBase
from repro.security.tamper import TamperingStore
from repro.security.verify import VerificationReport, Verifier

__all__ = [
    "AccessController",
    "Permission",
    "SecuredForkBase",
    "TamperingStore",
    "VerificationReport",
    "Verifier",
]
