"""Client-side integrity validation.

"Given a version, the application can fetch the corresponding data from
the storage provider and validate the content and its history by checking
whether the Merkle root hash calculated on the spot is identical to the
data version" (§III-C).

:class:`Verifier` re-derives every hash itself — it never trusts the
store's bookkeeping.  It checks, per version uid:

1. the FNode chunk hashes to the uid the client holds;
2. the value tree: every reachable page hashes to the identifier its
   parent (or the FNode) references;
3. the history: every ``bases`` link resolves to an FNode chunk that
   hashes to the referenced uid, transitively to the roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import ChunkCorruptionError, ChunkNotFoundError, TamperError, TransientError
from repro.postree.node import IndexNode, load_node
from repro.store.base import ChunkStore
from repro.vcs.fnode import FNode


@dataclass
class VerificationReport:
    """Outcome of validating one version uid."""

    version: Uid
    ok: bool
    chunks_checked: int = 0
    fnodes_checked: int = 0
    errors: List[str] = field(default_factory=list)
    #: Referenced chunks the store could not produce at all.
    missing: int = 0
    #: Chunks whose bytes did not hash to the referenced uid.
    corrupt: int = 0
    #: Chunks unreadable within the retry budget (verdict unknown, NOT
    #: evidence of tampering — rerun when the store recovers).
    transient: int = 0
    #: Portable tamper-evidence records: one dict per integrity failure
    #: (``node``/``uid``/``op``/``kind``/``expected``/``served``), in the
    #: same shape the cluster's accountability board emits.  For a
    #: cluster-backed store, the board's attributions accrued during this
    #: verification ride along — detection ends in *who*, not just *that*.
    evidence: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary."""
        status = "VALID" if self.ok else "TAMPERED"
        return (
            f"{self.version.base32()[:16]}…: {status} "
            f"({self.chunks_checked} chunks, {self.fnodes_checked} versions checked"
            + (f"; {len(self.errors)} error(s)" if self.errors else "")
            + ")"
        )


class Verifier:
    """Validates versions against a (possibly malicious or faulty) store.

    The error taxonomy matters here: *missing* and *corrupt* chunks are
    integrity failures, but a *transient* store error proves nothing — the
    verifier retries it (``retry``, instant by default) and, if the chunk
    stays unreachable, records an unknown verdict instead of crashing or
    falsely crying tamper.
    """

    def __init__(self, store: ChunkStore, retry: Optional["RetryPolicy"] = None) -> None:
        from repro.faults.retry import RetryPolicy

        self.store = store
        self.retry = retry if retry is not None else RetryPolicy.instant()

    @staticmethod
    def _evidence(
        uid: Uid, kind: str, served: Optional[str] = None
    ) -> Dict[str, object]:
        """One portable tamper-evidence record (board-compatible shape).

        The verifier is a *client*: it usually cannot name the replica
        that lied (``node`` stays empty), but it can state the claim
        (``expected``, the uid's digest) and what arrived instead
        (``served``).  Cluster-side attribution records with the node
        filled in are merged by :meth:`Verifier.verify_version`.
        """
        return {
            "node": "",
            "uid": uid.base32(),
            "op": "get",
            "kind": kind,
            "expected": uid.hex(),
            "served": served,
            "origin": "verifier",
            "strike": False,
        }

    def _fetch_checked(
        self, uid: Uid, report: VerificationReport
    ) -> Optional[Chunk]:
        """Fetch a chunk and confirm its bytes hash to ``uid``."""
        try:
            chunk = self.retry.call(lambda: self.store.get(uid))
        except ChunkNotFoundError:
            report.missing += 1
            report.errors.append(f"missing chunk {uid.short(16)}")
            report.evidence.append(self._evidence(uid, "missing"))
            return None
        except ChunkCorruptionError:
            # A verifying store already rejected the bytes for us.
            report.chunks_checked += 1
            report.corrupt += 1
            report.errors.append(
                f"chunk {uid.short(16)} content does not hash to its id"
            )
            report.evidence.append(self._evidence(uid, "corrupt"))
            return None
        except TransientError:
            report.transient += 1
            report.errors.append(
                f"chunk {uid.short(16)} unreachable (transient store error)"
            )
            return None
        report.chunks_checked += 1
        if not chunk.is_valid():
            report.corrupt += 1
            report.errors.append(
                f"chunk {uid.short(16)} content does not hash to its id"
            )
            report.evidence.append(
                self._evidence(
                    uid,
                    "corrupt",
                    served=Chunk.compute_uid(chunk.type, chunk.data).hex(),
                )
            )
            return None
        return chunk

    def _verify_value_tree(self, root: Uid, report: VerificationReport) -> None:
        """Recompute hashes of every page reachable from a value root."""
        seen: Set[Uid] = set()
        stack = [root]
        while stack:
            uid = stack.pop()
            if uid in seen:
                continue
            seen.add(uid)
            chunk = self._fetch_checked(uid, report)
            if chunk is None:
                continue
            if chunk.type in (ChunkType.LEAF, ChunkType.INDEX):
                node = load_node(chunk)
                if isinstance(node, IndexNode):
                    stack.extend(entry.child for entry in node.entries)
            elif chunk.type in (ChunkType.LIST_INDEX,):
                from repro.postree.listtree import ListIndexNode

                node = ListIndexNode.from_chunk(chunk)
                stack.extend(entry.child for entry in node.entries)
            # BLOB / LIST_LEAF / PRIMITIVE chunks have no children.

    def verify_version(
        self, version: Union[Uid, str], check_history: bool = True
    ) -> VerificationReport:
        """Validate the value and (optionally) full history of a version."""
        uid = Uid.parse(version) if isinstance(version, str) else version
        report = VerificationReport(version=uid, ok=True)
        # For cluster-backed stores, snapshot the accountability board's
        # evidence watermark so replica attributions accrued *during this
        # verification* can be merged into the client-side report below.
        board = getattr(self.store, "accountability", None)
        cluster = getattr(self.store, "cluster", None)
        if board is None and cluster is not None:
            board = getattr(cluster, "accountability", None)
        watermark = board.evidence_total if board is not None else 0
        pending = [uid]
        seen: Set[Uid] = set()
        first = True
        while pending:
            current = pending.pop()
            if current in seen:
                continue
            seen.add(current)
            chunk = self._fetch_checked(current, report)
            if chunk is None:
                break
            if chunk.type != ChunkType.FNODE:
                report.errors.append(
                    f"{current.short(16)} is not an FNode (got {chunk.type.name})"
                )
                break
            fnode = FNode.decode(chunk)
            report.fnodes_checked += 1
            if first:
                self._verify_value_tree(fnode.value_root, report)
                first = False
            if check_history:
                pending.extend(fnode.bases)
        if board is not None:
            report.evidence.extend(
                record.to_dict() for record in board.evidence_since(watermark)
            )
        report.ok = not report.errors
        return report

    def verify_or_raise(
        self, version: Union[Uid, str], check_history: bool = True
    ) -> VerificationReport:
        """Like :meth:`verify_version` but raises :class:`TamperError`."""
        report = self.verify_version(version, check_history=check_history)
        if not report.ok:
            raise TamperError("; ".join(report.errors))
        return report
