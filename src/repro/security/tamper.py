"""Malicious-storage simulator.

Wraps an honest chunk store and lets a test or benchmark act as the
adversary of the paper's threat model: return modified bytes for a known
uid, swap one chunk's content for another's, or drop chunks entirely.
The wrapper keeps returning the *claimed* uid with the wrong payload —
exactly what client-side verification must catch.

Two granularities share these adversary verbs:

- wrap a flat store directly (``TamperingStore(store)``) — the original
  single-provider threat model;
- wrap one cluster replica in place (:meth:`TamperingStore.wrap_node`) —
  a *targeted*, per-uid adversary inside a replicated cluster, the
  scripted counterpart to the seeded, rate-driven
  :class:`~repro.faults.byzantine.ByzantinePlan` (both corrupt bytes
  through the same :func:`~repro.faults.byzantine.flip_at` primitive).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from repro.chunk import Chunk, Uid
from repro.faults.byzantine import flip_at
from repro.store.base import ChunkStore


class TamperingStore(ChunkStore):
    """A chunk store under adversarial control."""

    def __init__(self, backing: ChunkStore) -> None:
        super().__init__(verify_reads=False)
        self.backing = backing
        self._overrides: Dict[Uid, Chunk] = {}
        self._dropped: Set[Uid] = set()

    @classmethod
    def wrap_node(cls, node: object) -> "TamperingStore":
        """Turn one cluster ``StorageNode`` adversarial in place.

        Duck-typed on ``node.store`` (like
        :func:`~repro.faults.byzantine.make_byzantine`), so the security
        layer needs no cluster import.  Undo with :meth:`unwrap_node`.
        """
        adversary = cls(node.store)  # type: ignore[attr-defined]
        node.store = adversary  # type: ignore[attr-defined]
        return adversary

    @staticmethod
    def unwrap_node(node: object) -> bool:
        """Remove a node's tampering wrapper; False if it was not wrapped."""
        store = getattr(node, "store", None)
        if not isinstance(store, TamperingStore):
            return False
        node.store = store.backing  # type: ignore[attr-defined]
        return True

    # -- adversary actions -------------------------------------------------------

    def corrupt_chunk(self, uid: Uid, new_data: bytes) -> None:
        """Serve ``new_data`` for ``uid`` while claiming the old identity."""
        original = self.backing.get(uid)
        self._overrides[uid] = Chunk(original.type, new_data, uid=uid)

    def flip_byte(self, uid: Uid, offset: int = 0) -> None:
        """Flip one payload byte (classic silent-corruption model)."""
        original = self.backing.get(uid)
        self._overrides[uid] = Chunk(
            original.type, flip_at(original.data, offset), uid=uid
        )

    def substitute(self, uid: Uid, other: Uid) -> None:
        """Serve another chunk's content under this uid (replay attack)."""
        donor = self.backing.get(other)
        self._overrides[uid] = Chunk(donor.type, donor.data, uid=uid)

    def drop_chunk(self, uid: Uid) -> None:
        """Pretend the chunk was never stored (withholding attack)."""
        self._dropped.add(uid)

    def heal(self, uid: Optional[Uid] = None) -> None:
        """Undo tampering for one uid (or everything)."""
        if uid is None:
            self._overrides.clear()
            self._dropped.clear()
        else:
            self._overrides.pop(uid, None)
            self._dropped.discard(uid)

    @property
    def tampered_uids(self) -> Set[Uid]:
        """Uids currently being lied about."""
        return set(self._overrides) | set(self._dropped)

    # -- ChunkStore primitives -----------------------------------------------------

    def _insert(self, chunk: Chunk) -> None:
        self.backing.put(chunk)

    def _fetch(self, uid: Uid) -> Optional[Chunk]:
        if uid in self._dropped:
            return None
        if uid in self._overrides:
            return self._overrides[uid]
        return self.backing.get_maybe(uid)

    def _contains(self, uid: Uid) -> bool:
        if uid in self._dropped:
            return False
        return uid in self._overrides or self.backing.has(uid)

    def _ids(self) -> Iterator[Uid]:
        for uid in self.backing.ids():
            if uid not in self._dropped:
                yield uid

    def _delete(self, uid: Uid) -> bool:
        self._overrides.pop(uid, None)
        self._dropped.discard(uid)
        return self.backing.delete(uid)

    def close(self) -> None:
        self.backing.close()
