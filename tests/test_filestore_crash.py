"""Crash-recovery tests for FileStore.

Simulates the classic failure modes of an append-only log: the process
dies mid-append (torn header, torn payload), garbage lands in the tail
(unknown tag), and the index snapshot is deleted, corrupted, or goes stale
relative to the segment files.  In every case reopening must recover all
intact records and ignore the damaged tail — never serve wrong bytes.
"""

import os
import struct

import pytest

from repro.chunk import Chunk, ChunkType
from repro.store import FileStore

_HEADER = struct.Struct(">BI")


def _chunk(n: int) -> Chunk:
    return Chunk(ChunkType.BLOB, b"durable-payload-%04d" % n)


def _segment(directory: str, number: int = 0) -> str:
    return os.path.join(directory, "segments", "seg-%06d.dat" % number)


def _index(directory: str) -> str:
    return os.path.join(directory, "index.dat")


@pytest.fixture
def populated(tmp_path):
    """A closed store directory holding 20 chunks, plus the chunk list."""
    directory = str(tmp_path / "fs")
    chunks = [_chunk(i) for i in range(20)]
    with FileStore(directory) as store:
        store.put_many(chunks)
    return directory, chunks


def _assert_recovers(directory, expected_present, expected_absent=()):
    with FileStore(directory) as store:
        for chunk in expected_present:
            got = store.get(chunk.uid)
            assert got.data == chunk.data and got.is_valid()
        for chunk in expected_absent:
            assert not store.has(chunk.uid)


class TestTornTail:
    def _append_crash(self, directory, blob: bytes) -> None:
        """Simulate a crash that left ``blob`` at the end of the segment."""
        os.remove(_index(directory))  # crash also means no fresh snapshot
        with open(_segment(directory), "ab") as handle:
            handle.write(blob)

    def test_torn_header(self, populated):
        directory, chunks = populated
        self._append_crash(directory, b"\x01\x00")  # 2 of 5 header bytes
        _assert_recovers(directory, chunks)

    def test_torn_payload(self, populated):
        directory, chunks = populated
        victim = _chunk(999)
        record = _HEADER.pack(int(victim.type), len(victim.data)) + victim.data[:7]
        self._append_crash(directory, record)
        _assert_recovers(directory, chunks, expected_absent=[victim])

    def test_unknown_tag_tail(self, populated):
        directory, chunks = populated
        self._append_crash(directory, _HEADER.pack(0xEE, 4) + b"junk")
        _assert_recovers(directory, chunks)

    def test_records_after_snapshot_are_recovered(self, populated):
        """A crash after appends but before close: the index snapshot is
        stale but valid; the watermark scan must pick up the tail."""
        directory, chunks = populated
        late = [_chunk(i) for i in range(100, 105)]
        store = FileStore(directory)
        store.put_many(late)
        store._writer.flush()
        # Simulate the crash: no close(), so no fresh index snapshot.
        store._closed = True
        store._writer.close()
        _assert_recovers(directory, chunks + late)

    def test_truncated_mid_record(self, populated):
        """The active segment loses its tail mid-record (torn at the disk)."""
        directory, chunks = populated
        os.remove(_index(directory))
        size = os.path.getsize(_segment(directory))
        with open(_segment(directory), "r+b") as handle:
            handle.truncate(size - 9)  # rips into the last record
        _assert_recovers(directory, chunks[:-1], expected_absent=[chunks[-1]])


class TestIndexDamage:
    def test_deleted_index_rebuilds(self, populated):
        directory, chunks = populated
        os.remove(_index(directory))
        _assert_recovers(directory, chunks)

    def test_corrupt_magic_rebuilds(self, populated):
        directory, chunks = populated
        with open(_index(directory), "r+b") as handle:
            handle.write(b"XXXXXXXX")
        _assert_recovers(directory, chunks)

    def test_truncated_index_rebuilds(self, populated):
        directory, chunks = populated
        size = os.path.getsize(_index(directory))
        with open(_index(directory), "r+b") as handle:
            handle.truncate(size // 2)
        _assert_recovers(directory, chunks)

    def test_garbage_index_rebuilds(self, populated):
        directory, chunks = populated
        with open(_index(directory), "wb") as handle:
            handle.write(os.urandom(64))
        _assert_recovers(directory, chunks)

    def test_vanished_segment_rebuilds(self, populated):
        """The index references a segment that no longer exists on disk:
        the staleness check must reject the snapshot, not serve dangling
        offsets."""
        directory, chunks = populated
        late = [_chunk(i) for i in range(200, 230)]
        with FileStore(directory, segment_limit=256) as store:
            store.put_many(late)  # rolls extra segments
        seg_dir = os.path.join(directory, "segments")
        victims = sorted(os.listdir(seg_dir))[1:]
        for name in victims:
            os.remove(os.path.join(seg_dir, name))
        with FileStore(directory) as store:
            for chunk in chunks:  # first segment still fully intact
                assert store.get(chunk.uid).data == chunk.data

    def test_shrunken_segment_rebuilds(self, populated):
        """A segment shorter than its watermark invalidates the snapshot
        (offsets could dangle); rebuild recovers the intact prefix."""
        directory, chunks = populated
        size = os.path.getsize(_segment(directory))
        with open(_segment(directory), "r+b") as handle:
            handle.truncate(size - 9)
        _assert_recovers(directory, chunks[:-1], expected_absent=[chunks[-1]])

    def test_out_of_range_offset_rebuilds(self, populated):
        """Index entries pointing past the watermark are rejected."""
        directory, chunks = populated
        data = bytearray(open(_index(directory), "rb").read())
        # Rewrite every entry's offset field to a huge value.  Layout:
        # magic(8) count(8) seg_count(8) watermarks(12 each) entries(40 each).
        (count,) = struct.unpack_from(">Q", data, 8)
        (seg_count,) = struct.unpack_from(">Q", data, 16)
        entries_at = 24 + seg_count * 12
        for i in range(count):
            struct.pack_into(">I", data, entries_at + i * 40 + 36, 2**31)
        with open(_index(directory), "wb") as handle:
            handle.write(bytes(data))
        _assert_recovers(directory, chunks)

    def test_clean_reopen_uses_snapshot(self, populated):
        """Sanity: an undamaged snapshot loads without a rebuild."""
        directory, chunks = populated
        store = FileStore(directory)
        spy = []
        store._scan_segment = lambda *a, **k: spy.append(a)  # type: ignore
        assert store._load_index() is True
        # Only watermark-tail scans happened, all no-ops at EOF.
        store.close()
        _assert_recovers(directory, chunks)
