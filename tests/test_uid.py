"""Tests for content addresses (repro.chunk.uid)."""

import pytest

from repro.chunk import NULL_UID, Uid


class TestConstruction:
    def test_requires_32_bytes(self):
        with pytest.raises(ValueError):
            Uid(b"short")

    def test_requires_bytes(self):
        with pytest.raises(TypeError):
            Uid("f" * 64)  # type: ignore[arg-type]

    def test_of_hashes_sha256(self):
        import hashlib

        assert Uid.of(b"abc").digest == hashlib.sha256(b"abc").digest()

    def test_accepts_bytearray(self):
        raw = bytearray(range(32))
        assert Uid(raw).digest == bytes(range(32))


class TestRenderings:
    def test_hex_round_trip(self):
        uid = Uid.of(b"payload")
        assert Uid.from_hex(uid.hex()) == uid

    def test_base32_round_trip(self):
        uid = Uid.of(b"payload")
        assert Uid.from_base32(uid.base32()) == uid

    def test_base32_is_rfc4648_uppercase(self):
        text = Uid.of(b"x").base32()
        assert text == text.upper()
        assert "=" not in text
        assert len(text) == 52

    def test_base32_accepts_lowercase(self):
        uid = Uid.of(b"y")
        assert Uid.from_base32(uid.base32().lower()) == uid

    def test_parse_dispatches_on_length(self):
        uid = Uid.of(b"z")
        assert Uid.parse(uid.hex()) == uid
        assert Uid.parse(uid.base32()) == uid

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Uid.parse("not-a-uid")

    def test_short_is_prefix(self):
        uid = Uid.of(b"w")
        assert uid.base32().startswith(uid.short())
        assert len(uid.short(6)) == 6


class TestSemantics:
    def test_equality_and_hash(self):
        a = Uid.of(b"same")
        b = Uid.of(b"same")
        c = Uid.of(b"other")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_ordering_is_lexicographic(self):
        uids = sorted([Uid.of(bytes([i])) for i in range(20)])
        digests = [u.digest for u in uids]
        assert digests == sorted(digests)

    def test_usable_as_dict_key(self):
        table = {Uid.of(b"k"): 1}
        assert table[Uid.of(b"k")] == 1

    def test_bytes_conversion(self):
        uid = Uid.of(b"q")
        assert bytes(uid) == uid.digest

    def test_null_uid_is_all_zero(self):
        assert NULL_UID.digest == b"\x00" * 32
