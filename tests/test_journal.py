"""Write-ahead commit journal + head CAS (crash-consistent version layer).

Covers the journal file format (round-trip, torn tails, corrupt interior
records, reset/compaction), record replay onto a :class:`BranchTable`,
the compare-and-swap head update, and the engine-level guarantees: no
acknowledged commit is lost across a simulated SIGKILL, and a concurrent
head move surfaces as :class:`HeadMovedError` instead of a lost update.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.chunk import Uid
from repro.db.engine import ForkBase
from repro.errors import (
    BranchExistsError,
    HeadMovedError,
    JournalCorruptError,
    JournalError,
    UnknownBranchError,
)
from repro.vcs import BranchTable, CommitJournal, FNode, apply_record, replay_into
from repro.vcs.journal import MAGIC, _HEADER


def _uid(n: int) -> Uid:
    return Uid(bytes([n % 256]) * 32)


def _records(count: int):
    return [
        {"op": "set-head", "seq": i + 1, "key": "k", "branch": "master",
         "head": _uid(i + 1).base32(), "prev": None}
        for i in range(count)
    ]


# -- journal file format -------------------------------------------------------


def test_roundtrip_close_reopen(tmp_path):
    path = str(tmp_path / "journal.wal")
    journal = CommitJournal(path, fsync="always")
    for record in _records(5):
        journal.append(record)
    assert len(journal) == 5
    journal.close()

    reopened = CommitJournal(path)
    assert reopened.records == _records(5)
    reopened.close()


def test_records_returns_copies(tmp_path):
    journal = CommitJournal(str(tmp_path / "j.wal"))
    journal.append(_records(1)[0])
    journal.records[0]["op"] = "mutated"
    assert journal.records[0]["op"] == "set-head"
    journal.close()


def test_invalid_fsync_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        CommitJournal(str(tmp_path / "j.wal"), fsync="sometimes")


@pytest.mark.parametrize("policy", ["always", "batch", "never"])
def test_all_policies_survive_abandon(tmp_path, policy):
    # Every append is at least *flushed*, so an acknowledged record
    # survives a process kill under every policy (fsync is about power).
    path = str(tmp_path / policy / "j.wal")
    os.makedirs(os.path.dirname(path))
    journal = CommitJournal(path, fsync=policy)
    for record in _records(3):
        journal.append(record)
    journal.abandon()
    reopened = CommitJournal(path)
    assert reopened.records == _records(3)
    reopened.close()


def test_torn_tail_truncated_at_every_offset(tmp_path):
    # Build a journal with 3 records, then chop the file anywhere inside
    # the final record: recovery must keep the first two and physically
    # truncate the tail.
    path = str(tmp_path / "j.wal")
    journal = CommitJournal(path, fsync="always")
    for record in _records(3):
        journal.append(record)
    journal.close()
    blob = open(path, "rb").read()
    payload = json.dumps(_records(3)[1], sort_keys=True, separators=(",", ":"))
    record_size = _HEADER.size + len(payload)
    full = len(blob)
    last_start = full - record_size
    for cut in range(last_start + 1, full):
        torn = str(tmp_path / f"torn{cut}.wal")
        with open(torn, "wb") as handle:
            handle.write(blob[:cut])
        reopened = CommitJournal(torn)
        assert reopened.records == _records(2), f"cut at {cut}"
        assert os.path.getsize(torn) == last_start  # tail is gone for good
        reopened.close()


def test_torn_magic_recreated(tmp_path):
    path = str(tmp_path / "j.wal")
    with open(path, "wb") as handle:
        handle.write(MAGIC[:3])  # died while writing the magic
    journal = CommitJournal(path)
    assert len(journal) == 0
    journal.append(_records(1)[0])
    journal.close()
    assert CommitJournal(path).records == _records(1)


def test_bad_magic_raises(tmp_path):
    path = str(tmp_path / "j.wal")
    with open(path, "wb") as handle:
        handle.write(b"NOTMYWAL" + b"\x00" * 16)
    with pytest.raises(JournalCorruptError):
        CommitJournal(path)


def test_corrupt_interior_record_raises(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = CommitJournal(path, fsync="always")
    for record in _records(3):
        journal.append(record)
    journal.close()
    blob = bytearray(open(path, "rb").read())
    # Flip one payload byte of the *first* record: all bytes present, so
    # this is rot/tampering, not a torn append — recovery must refuse.
    flip = len(MAGIC) + _HEADER.size + 4
    blob[flip] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    with pytest.raises(JournalCorruptError):
        CommitJournal(path)


def test_reset_truncates_and_survives_reopen(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = CommitJournal(path, fsync="always")
    for record in _records(4):
        journal.append(record)
    journal.reset()
    assert len(journal) == 0
    assert journal.size() == len(MAGIC)
    journal.append({"op": "drop-key", "seq": 9, "key": "k"})
    journal.close()
    assert CommitJournal(path).records == [{"op": "drop-key", "seq": 9, "key": "k"}]


def test_append_after_close_raises(tmp_path):
    journal = CommitJournal(str(tmp_path / "j.wal"))
    journal.close()
    with pytest.raises(JournalError):
        journal.append(_records(1)[0])


# -- replay --------------------------------------------------------------------


def test_apply_record_covers_every_op():
    table = BranchTable()
    ops = [
        {"op": "set-head", "key": "a", "branch": "master", "head": _uid(1).base32()},
        {"op": "create-branch", "key": "a", "branch": "dev", "head": _uid(1).base32()},
        {"op": "set-head", "key": "a", "branch": "dev", "head": _uid(2).base32()},
        {"op": "rename-branch", "key": "a", "old": "dev", "new": "stable"},
        {"op": "set-head", "key": "b", "branch": "master", "head": _uid(3).base32()},
        {"op": "rename-key", "old": "b", "new": "c"},
        {"op": "delete-branch", "key": "a", "branch": "stable"},
        {"op": "set-head", "key": "d", "branch": "master", "head": _uid(4).base32()},
        {"op": "drop-key", "key": "d"},
    ]
    for record in ops:
        apply_record(table, record)
    assert table.keys() == ["a", "c"]
    assert table.branches("a") == ["master"]
    assert table.head("a", "master") == _uid(1)
    assert table.head("c", "master") == _uid(3)


def test_apply_unknown_op_raises():
    with pytest.raises(JournalCorruptError):
        apply_record(BranchTable(), {"op": "transmogrify", "key": "a"})


def test_apply_inapplicable_op_raises():
    # Deleting a branch that does not exist means snapshot and journal
    # diverged — corruption, not a conflict to paper over.
    with pytest.raises(JournalCorruptError):
        apply_record(BranchTable(), {"op": "delete-branch", "key": "a", "branch": "x"})


def test_replay_skips_records_snapshot_covers():
    table = BranchTable()
    table.set_head("k", "master", _uid(2))  # snapshot state at seq 2
    records = _records(4)
    last = replay_into(table, records, after_seq=2)
    assert last == 4
    assert table.head("k", "master") == _uid(4)
    # Replaying again from the same snapshot point is a no-op in effect.
    assert replay_into(table, records, after_seq=last) == last
    assert table.head("k", "master") == _uid(4)


# -- head CAS ------------------------------------------------------------------


def test_set_head_cas_semantics():
    table = BranchTable()
    # expected=None asserts "branch does not exist yet".
    table.set_head("k", "master", _uid(1), expected=None)
    with pytest.raises(HeadMovedError):
        table.set_head("k", "master", _uid(2), expected=None)
    # A stale expectation is a concurrent writer.
    with pytest.raises(HeadMovedError) as info:
        table.set_head("k", "master", _uid(3), expected=_uid(9))
    assert info.value.expected == _uid(9)
    assert info.value.actual == _uid(1)
    # The right expectation swaps.
    table.set_head("k", "master", _uid(3), expected=_uid(1))
    assert table.head("k", "master") == _uid(3)
    # No expectation = unconditional (replay path).
    table.set_head("k", "master", _uid(4))
    assert table.head("k", "master") == _uid(4)


def test_engine_put_detects_concurrent_head_move(tmp_path):
    # Deterministic race: a rival commit moves the head between our
    # graph.commit and the CAS, so put() must raise instead of silently
    # orphaning the rival's acknowledged commit.
    engine = ForkBase.open(str(tmp_path / "db"))
    engine.put("k", {"a": "1"})
    journal_len_before = None
    real_commit = engine.graph.commit
    raced = []

    def racing_commit(fnode: FNode):
        uid = real_commit(fnode)
        if not raced:
            raced.append(True)
            rival = FNode(
                key=fnode.key,
                type_name=fnode.type_name,
                value_root=fnode.value_root,
                bases=fnode.bases,
                author="rival",
                message="sneaked in",
                timestamp=fnode.timestamp + 1.0,
            )
            engine.branch_table.set_head("k", "master", real_commit(rival))
        return uid

    engine.graph.commit = racing_commit  # type: ignore[method-assign]
    journal_len_before = len(engine._journal)
    with pytest.raises(HeadMovedError):
        engine.put("k", {"a": "2"})
    # The rival's update is intact and the failed put journaled nothing.
    assert engine.graph.load(engine.branch_table.head("k", "master")).author == "rival"
    assert len(engine._journal) == journal_len_before
    engine.close()


def test_merge_cas_guards_fast_forward(tmp_path):
    engine = ForkBase.open(str(tmp_path / "db"))
    engine.put("k", {"a": "1"})
    engine.branch("k", "feature")
    engine.put("k", {"a": "2"}, branch="feature")
    head_into = engine.branch_table.head("k", "master")
    # Move master underneath the merge (the concurrent writer).
    real_head = engine.branch_table.head
    engine.branch_table.set_head("k", "master", engine.branch_table.head("k", "feature"))
    engine.branch_table.set_head("k", "master", head_into)  # restore
    info = engine.merge("k", "feature", "master")
    assert info.message == "fast-forward"
    assert real_head("k", "master") == engine.branch_table.head("k", "feature")
    engine.close()


# -- engine recovery (the seed data-loss regression) ---------------------------


def test_heads_survive_process_kill(tmp_path):
    """The seed bug: puts acknowledged, process killed before close() —
    pre-journal, branches.json was never written and every head vanished."""
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory, fsync="never")  # worst policy on purpose
    expected = {}
    for i in range(20):
        info = engine.put(f"key-{i}", {"n": str(i)}, message=f"put {i}")
        expected[f"key-{i}"] = info.uid
    engine.abandon()  # SIGKILL analogue: no close(), no snapshot

    recovered = ForkBase.open(directory)
    assert sorted(recovered.keys()) == sorted(expected)
    for key, uid in expected.items():
        assert recovered.branch_table.head(key, "master") == uid
        assert recovered.get_value(key) == {b"n": key.split("-")[1].encode()}
        assert recovered.verify(key).ok
    recovered.close()


def test_recovery_replays_full_workload(tmp_path):
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory, fsync="always")
    engine.put("doc", {"v": "1"})
    engine.branch("doc", "draft")
    engine.put("doc", {"v": "2"}, branch="draft")
    engine.rename_branch("doc", "draft", "final")
    engine.merge("doc", "final", "master")
    engine.put("tmp", ["1", "2", "3"])
    engine.drop("tmp")
    engine.put("old", {"x": "1"})
    engine.rename("old", "new")
    engine.branch("new", "dead")
    engine.delete_branch("new", "dead")
    snapshot = {
        (key, branch): head for key, branch, head in engine.branch_table.all_heads()
    }
    engine.abandon()

    recovered = ForkBase.open(directory)
    assert {
        (key, branch): head for key, branch, head in recovered.branch_table.all_heads()
    } == snapshot
    assert recovered.get_value("doc") == {b"v": b"2"}
    assert recovered.get_value("new") == {b"x": b"1"}
    assert "tmp" not in recovered.keys()
    recovered.close()


def test_compaction_bounds_journal_size(tmp_path):
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory, fsync="never", journal_limit=512)
    for i in range(40):
        engine.put("k", {"i": str(i)})
    # Compaction kept the journal under limit + one record's worth.
    assert engine._journal.size() < 512 + 256
    with open(os.path.join(directory, "branches.json"), encoding="utf-8") as handle:
        snapshot = json.load(handle)
    assert snapshot["format"] == "forkbase-heads/2"
    assert snapshot["seq"] > 0
    engine.abandon()
    recovered = ForkBase.open(directory)
    assert recovered.get_value("k") == {b"i": b"39"}
    recovered.close()


def test_clean_close_truncates_journal(tmp_path):
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory)
    engine.put("k", {"a": "1"})
    engine.close()
    # close() compacts: snapshot holds the heads, journal is magic-only.
    assert os.path.getsize(os.path.join(directory, "journal.wal")) == len(MAGIC)
    reopened = ForkBase.open(directory)
    assert reopened.get_value("k") == {b"a": b"1"}
    reopened.close()


def test_legacy_bare_snapshot_still_loads(tmp_path):
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory)
    engine.put("k", {"a": "1"})
    engine.close()
    heads_path = os.path.join(directory, "branches.json")
    with open(heads_path, encoding="utf-8") as handle:
        heads = json.load(handle)["heads"]
    with open(heads_path, "w", encoding="utf-8") as handle:
        json.dump(heads, handle)  # pre-journal format: the bare dict
    os.remove(os.path.join(directory, "journal.wal"))
    reopened = ForkBase.open(directory)
    assert reopened.get_value("k") == {b"a": b"1"}
    reopened.close()


def test_branch_errors_not_journaled(tmp_path):
    engine = ForkBase.open(str(tmp_path / "db"))
    engine.put("k", {"a": "1"})
    engine.branch("k", "b")
    before = len(engine._journal)
    with pytest.raises(BranchExistsError):
        engine.branch("k", "b")
    with pytest.raises(UnknownBranchError):
        engine.delete_branch("k", "nope")
    assert len(engine._journal) == before
    engine.close()
