"""Tests for integrity scrubbing (repro.store.scrub) and the delete API."""

import os

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.cluster import ClusterStore
from repro.errors import ChunkNotFoundError
from repro.faults import FaultPlan, FaultyStore
from repro.store import CachedStore, FileStore, InMemoryStore, Scrubber, scrub


def _chunk(n: int) -> Chunk:
    return Chunk(ChunkType.BLOB, b"scrub-payload-%d" % n)


def _rot(store: InMemoryStore, uid: Uid, data: bytes = b"ROT") -> None:
    """Plant corrupt bytes under an existing uid (in-place bit rot)."""
    original = store._chunks[uid]
    store._chunks[uid] = Chunk(original.type, data, uid=uid)


class TestDeleteApi:
    def test_memory_delete(self):
        store = InMemoryStore()
        chunk = _chunk(0)
        store.put(chunk)
        assert store.delete(chunk.uid) is True
        assert store.delete(chunk.uid) is False
        assert not store.has(chunk.uid)

    def test_cached_delete_evicts(self):
        backing = InMemoryStore()
        store = CachedStore(backing, capacity=8)
        chunk = _chunk(1)
        store.put(chunk)
        store.get(chunk.uid)  # warm the cache
        assert store.delete(chunk.uid) is True
        assert store.get_maybe(chunk.uid) is None
        assert not backing.has(chunk.uid)

    def test_filestore_delete_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "fs")
        chunks = [_chunk(i) for i in range(10)]
        with FileStore(directory) as store:
            store.put_many(chunks)
            assert store.delete(chunks[3].uid) is True
        with FileStore(directory) as store:
            assert not store.has(chunks[3].uid)
            assert all(store.has(c.uid) for c in chunks if c is not chunks[3])

    def test_cluster_delete_removes_all_replicas(self):
        cluster = ClusterStore(node_count=4, replication=3)
        chunk = _chunk(2)
        cluster.put(chunk)
        assert cluster.delete(chunk.uid) is True
        assert cluster.total_replica_count() == 0

    def test_reput_after_delete_restores(self):
        store = InMemoryStore()
        chunk = _chunk(3)
        store.put(chunk)
        store.delete(chunk.uid)
        assert store.put(chunk) is True
        assert store.get(chunk.uid).data == chunk.data


class TestScrubFlat:
    def test_clean_store_is_healthy(self):
        store = InMemoryStore()
        store.put_many(_chunk(i) for i in range(40))
        report = scrub(store)
        assert report.healthy and report.ok == 40 and report.scanned == 40

    def test_rot_is_quarantined(self):
        store = InMemoryStore()
        chunks = [_chunk(i) for i in range(40)]
        store.put_many(chunks)
        for chunk in chunks[:3]:
            _rot(store, chunk.uid)
        report = scrub(store)
        assert report.corrupt == 3 and report.quarantined == 3
        assert sorted(map(bytes, report.corrupt_uids)) == sorted(
            bytes(c.uid) for c in chunks[:3]
        )
        # Quarantine turns wrong bytes into honest misses.
        for chunk in chunks[:3]:
            with pytest.raises(ChunkNotFoundError):
                store.get(chunk.uid)

    def test_filestore_bitrot_on_disk(self, tmp_path):
        directory = str(tmp_path / "fs")
        chunks = [_chunk(i) for i in range(20)]
        with FileStore(directory) as store:
            store.put_many(chunks)
        # Flip one payload byte of the first record on disk.
        segment = os.path.join(directory, "segments", "seg-000000.dat")
        with open(segment, "r+b") as handle:
            handle.seek(5 + 3)  # header (5B) + 3 bytes into the payload
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        store = FileStore(directory)
        report = scrub(store)
        assert report.corrupt >= 1 and report.quarantined == report.corrupt
        assert scrub(store).healthy
        store.close()

    def test_transient_wire_corruption_not_quarantined(self):
        """A mismatch that a re-read resolves is counted, not punished."""
        backing = InMemoryStore()
        chunks = [_chunk(i) for i in range(60)]
        backing.put_many(chunks)
        store = FaultyStore(backing, FaultPlan(seed=21, corrupt_read_rate=0.25))
        report = scrub(store)
        assert report.transient_mismatches > 0
        # Nothing was actually rotten, so nothing may be lost for good.
        assert len(backing) + report.quarantined == 60
        # Re-reading filters most wire corruption: only double-corrupt
        # draws (p = rate**2 per copy) slip through to quarantine.
        assert report.quarantined < report.transient_mismatches + report.ok

    def test_unreadable_after_retries_is_skipped(self):
        backing = InMemoryStore()
        chunks = [_chunk(i) for i in range(30)]
        backing.put_many(chunks)
        store = FaultyStore(backing, FaultPlan(seed=22, transient_error_rate=0.9))
        report = scrub(store)
        assert report.unreadable > 0
        assert len(backing) == 30  # skipped, never deleted

    def test_report_describe(self):
        report = scrub(InMemoryStore())
        assert "scrub:" in report.describe()


class TestScrubCluster:
    def test_rot_repaired_from_healthy_replica(self):
        cluster = ClusterStore(node_count=4, replication=2)
        chunks = [_chunk(i) for i in range(100)]
        cluster.put_many(chunks)
        rotted = 0
        for chunk in chunks[:10]:
            node = cluster.replica_nodes(chunk.uid)[0]
            _rot(node.store, chunk.uid)
            rotted += 1
        report = Scrubber(cluster).scrub()
        assert report.corrupt == rotted
        assert report.repaired == rotted and report.quarantined == 0
        # Every replica of every chunk verifies now.
        assert Scrubber(cluster).scrub().healthy
        assert cluster.durability_check() == {
            "lost": 0, "single": 0, "replicated": 100,
        }

    def test_rot_everywhere_is_quarantined_not_spread(self):
        cluster = ClusterStore(node_count=3, replication=2)
        chunk = _chunk(0)
        cluster.put(chunk)
        for node in cluster.replica_nodes(chunk.uid):
            _rot(node.store, chunk.uid)
        report = Scrubber(cluster).scrub()
        assert report.corrupt == 2 and report.repaired == 0
        assert report.quarantined == 2
        assert cluster.get_maybe(chunk.uid) is None  # honest miss

    def test_down_nodes_are_skipped(self):
        cluster = ClusterStore(node_count=3, replication=2)
        cluster.put_many(_chunk(i) for i in range(50))
        cluster.kill_node("node-00")
        report = Scrubber(cluster).scrub()
        held_by_live = sum(n.chunk_count() for n in cluster.live_nodes())
        assert report.scanned == held_by_live

    def test_cluster_scrub_shortcut(self):
        cluster = ClusterStore(node_count=2, replication=2)
        cluster.put(_chunk(1))
        assert cluster.scrub().healthy


class TestEngineScrub:
    def test_engine_scrub_verb(self):
        from repro.db import ForkBase

        engine = ForkBase(clock=lambda: 0.0)
        engine.put("k", {"a": "1", "b": "2"})
        assert engine.scrub().healthy

    def test_engine_self_heals_on_corrupt_read(self):
        """A detected-corrupt read triggers scrub + retry: the caller gets
        healed data (replicated store), never wrong bytes."""
        from repro.db import ForkBase

        cluster = ClusterStore(node_count=3, replication=2)
        engine = ForkBase(store=cluster, clock=lambda: 0.0)
        engine.put("k", {"x%02d" % i: "v%d" % i for i in range(50)})
        # Rot every copy of one value chunk on its primary replica.
        for uid in list(cluster.ids()):
            node = cluster.replica_nodes(uid)[0]
            _rot(node.store, uid)
        value = engine.get_value("k")
        assert value[b"x00"] == b"v0"
        assert cluster.scrub().healthy
