"""Tests for vectorized entry-stream chunking (repro.rolling.fast).

Two oracles, both exact:

- span equivalence: :func:`fast_entry_spans` / :class:`VectorEntryChunker`
  must group entries bit-identically to the streaming
  :class:`EntryChunker`, for every config and batch split;
- end-to-end structural invariance (SIRI Property 1): a tree bulk-built
  or spliced through the vectorized path has the same root uid as one
  produced by the pure reference path.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.postree import PosTree
from repro.rolling.chunker import ChunkerConfig, EntryChunker, chunk_entries
from repro.rolling.fast import (
    VectorEntryChunker,
    fast_entry_spans,
    forced_pure,
    numpy_available,
)

pytestmark = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

CFG = ChunkerConfig(pattern_bits=5, min_size=16, max_size=512)

CONFIGS = [
    CFG,
    # index-style: min_entries gate active
    ChunkerConfig(pattern_bits=5, min_size=16, max_size=512, min_entries=2),
    ChunkerConfig(pattern_bits=4, min_size=16, max_size=256, min_entries=4),
    # degenerate: min_size as small as the window allows
    ChunkerConfig(window=4, pattern_bits=2, min_size=1, max_size=64),
    # degenerate: max-size clamp fires constantly
    ChunkerConfig(pattern_bits=14, min_size=16, max_size=48, min_entries=2),
    # odd window exercises the single-byte table of the pair scheme
    ChunkerConfig(window=7, pattern_bits=6, min_size=16, max_size=1024),
]

entries_strategy = st.lists(st.binary(max_size=120), max_size=80)


@given(entries=entries_strategy)
@_settings
def test_spans_match_reference(entries):
    for config in CONFIGS:
        assert fast_entry_spans(entries, config) == chunk_entries(entries, config)


@given(entries=entries_strategy, preceding=st.binary(max_size=48))
@_settings
def test_spans_match_reference_with_seeded_window(entries, preceding):
    for config in CONFIGS:
        assert fast_entry_spans(entries, config, preceding=preceding) == chunk_entries(
            entries, config, preceding=preceding
        )


def test_single_entry_larger_than_max_size():
    config = ChunkerConfig(pattern_bits=10, min_size=16, max_size=64)
    rng = random.Random(5)
    entries = [bytes(rng.randrange(256) for _ in range(500))]
    assert fast_entry_spans(entries, config) == chunk_entries(entries, config)
    # ...and surrounded by small entries, under a min-entries gate
    config = ChunkerConfig(pattern_bits=10, min_size=16, max_size=64, min_entries=2)
    entries = [b"tiny", entries[0], b"tiny2", entries[0], b"t"]
    assert fast_entry_spans(entries, config) == chunk_entries(entries, config)


@given(
    entries=entries_strategy,
    splits=st.lists(st.integers(min_value=0, max_value=80), max_size=6),
    preceding=st.binary(max_size=32),
)
@_settings
def test_batch_split_invariance(entries, splits, preceding):
    """push_many over arbitrary batch splits ≡ EntryChunker.push per entry."""
    for config in CONFIGS[:3]:
        reference = EntryChunker(config)
        reference.seed(preceding)
        expected = [i for i, entry in enumerate(entries) if reference.push(entry)]

        vector = VectorEntryChunker(config)
        vector.seed(preceding)
        cuts = sorted({min(s, len(entries)) for s in splits} | {0, len(entries)})
        got = []
        for lo, hi in zip(cuts, cuts[1:]):
            got.extend(lo + b for b in vector.push_many(entries[lo:hi]))
        assert got == expected


def _random_pairs(rng, count, value_size):
    return {
        b"key-%08d" % rng.randrange(10 * count): bytes(
            rng.randrange(256) for _ in range(rng.randrange(value_size))
        )
        for _ in range(count)
    }


def test_bulk_build_root_matches_pure(store):
    rng = random.Random(17)
    pairs = _random_pairs(rng, 3000, 80)
    fast_root = PosTree.from_pairs(store, pairs.items()).root
    with forced_pure():
        pure_root = PosTree.from_pairs(store, pairs.items()).root
    assert fast_root == pure_root


def test_edit_splice_root_matches_pure_and_rebuild(store):
    rng = random.Random(23)
    pairs = _random_pairs(rng, 2500, 60)
    tree = PosTree.from_pairs(store, pairs.items())

    keys = sorted(pairs)
    puts = _random_pairs(rng, 200, 60)
    puts.update({k: b"overwritten-" + k for k in rng.sample(keys, 150)})
    deletes = set(rng.sample(keys, 120))

    edited = tree.update(puts=puts, deletes=deletes)
    with forced_pure():
        pure_edited = tree.update(puts=puts, deletes=deletes)

    expected = dict(pairs)
    for key in deletes:
        expected.pop(key, None)
    expected.update(puts)
    rebuilt = PosTree.from_pairs(store, expected.items())

    assert edited.root == pure_edited.root
    assert edited.root == rebuilt.root
