"""Gray-failure torture: slow schedules must not cost correctness.

The drill: drive a hedged, deadline-bounded cluster through a seeded
schedule of graded-slowness events (endpoints going 8-128x slow and
recovering) mixed with writes and reads — then every *acknowledged*
write must be durable on its full replica set, no verb may have blocked
past its deadline budget, and the whole run must replay bit-identically
from the same seed.

``FORKBASE_GRAYFAULT_SEED`` picks the deterministic slowness universe
(the CI chaos matrix runs several).
"""

import os

import pytest

from repro.chunk import Chunk, ChunkType
from repro.cluster import ClusterStore, anti_entropy_pass, digests_agree
from repro.errors import ClusterError
from repro.faults import (
    NetworkPlan,
    PartitionedTransport,
    RetryPolicy,
    apply_slow_event,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False

SEED = int(os.environ.get("FORKBASE_GRAYFAULT_SEED", "20260808"))


def _chunk(tag: str, n: int) -> Chunk:
    payload = (b"gray-%s-%d-" % (tag.encode("utf-8"), n)) * 4
    return Chunk(ChunkType.BLOB, payload)


def _cluster(**kwargs):
    plan_kwargs = kwargs.pop("plan", {})
    plan = NetworkPlan(seed=kwargs.pop("net_seed", SEED), **plan_kwargs)
    transport = PartitionedTransport(plan)
    kwargs.setdefault("retry", RetryPolicy.instant(attempts=2))
    kwargs.setdefault("node_count", 4)
    kwargs.setdefault("replication", 2)
    cluster = ClusterStore(transport=transport, **kwargs)
    return cluster, transport


def _fully_replicated(cluster: ClusterStore, chunk: Chunk) -> bool:
    copies = 0
    for node in cluster.replica_nodes(chunk.uid):
        if not (node.up and node.store.has(chunk.uid)):
            return False
        got = node.store.get_maybe(chunk.uid)
        if got is None or not got.is_valid():
            return False
        copies += 1
    return copies == cluster.replication


def _drive(cluster, transport, schedule, ops, tag, budget=None):
    """Run a write+read workload under a slowness schedule.

    Returns ``(acked, fingerprint)`` where the fingerprint captures every
    observable counter so replay identity can be asserted exactly.
    """
    acked = []
    deadline_errors = 0
    cursor = 0
    for op in range(ops):
        while cursor < len(schedule) and schedule[cursor][0] <= op:
            apply_slow_event(transport, schedule[cursor][1])
            cursor += 1
        chunk = _chunk(tag, op)
        before = transport.clock
        try:
            cluster.put(chunk)
        except ClusterError as error:
            if "budget" in str(error):
                deadline_errors += 1
            if budget is not None:
                assert transport.clock - before <= budget + 2
            continue  # unacknowledged: no durability promise made
        if budget is not None:
            assert transport.clock - before <= budget + 2
        acked.append(chunk)
        if op % 3 == 0 and acked:
            probe = acked[op % len(acked)]
            before = transport.clock
            try:
                got = cluster.get(probe.uid)
                assert got.data == probe.data  # never wrong bytes
            except ClusterError:
                pass  # slow/timed out is acceptable; wrong data is not
            if budget is not None:
                assert transport.clock - before <= budget + 2
    fingerprint = (
        len(acked),
        deadline_errors,
        cluster.hedges_issued,
        cluster.hedge_wins,
        cluster.deadline_exceeded,
        cluster.breaker_skips,
        cluster.failovers,
        cluster.read_repairs,
        cluster.sloppy_writes,
        cluster.transient_failures,
        transport.stats(),
        sorted(
            (name, len(list(node.store.ids())))
            for name, node in cluster.nodes.items()
        ),
    )
    return acked, fingerprint


class TestGrayReplay:
    def test_replay_is_bit_identical(self):
        """Same seed, same schedule, same everything: hedges, breaker
        trips, deadline misses, per-node chunk counts, transport stats."""

        def run():
            cluster, transport = _cluster(
                hedge_reads=True, deadline_budget=64
            )
            plan = transport.plan
            schedule = plan.slow_schedule(
                sorted(cluster.nodes), events=6, horizon=60
            )
            _, fingerprint = _drive(
                cluster, transport, schedule, ops=60, tag="replay", budget=64
            )
            return fingerprint

        assert run() == run()

    def test_slow_schedule_replays_identically(self):
        plan = NetworkPlan(seed=SEED)
        endpoints = ["node-%02d" % i for i in range(4)]
        assert plan.slow_schedule(endpoints, events=6, horizon=60) == (
            plan.slow_schedule(endpoints, events=6, horizon=60)
        )


class TestAckedMeansDurable:
    def test_acked_writes_survive_slow_schedule(self):
        """Gray failure slows acks down; it must never fake them.  After
        the storm recovers (plus one anti-entropy pass for hinted-away
        copies), every acknowledged write sits on its full replica set."""
        cluster, transport = _cluster(hedge_reads=True, deadline_budget=64)
        schedule = transport.plan.slow_schedule(
            sorted(cluster.nodes), events=8, horizon=120
        )
        acked, _ = _drive(
            cluster, transport, schedule, ops=120, tag="durable", budget=64
        )
        assert acked  # the storm did not starve the workload entirely
        transport.recover()
        anti_entropy_pass(cluster)
        for chunk in acked:
            assert _fully_replicated(cluster, chunk)
        assert digests_agree(cluster)

    def test_acked_writes_survive_slowness_plus_message_drops(self):
        """Slowness and loss together: the deadline budget bounds every
        verb while drops force retries and hints under that budget."""
        cluster, transport = _cluster(
            hedge_reads=True,
            deadline_budget=96,
            plan={"drop_rate": 0.05},
            retry=RetryPolicy.instant(attempts=3),
        )
        schedule = transport.plan.slow_schedule(
            sorted(cluster.nodes), events=6, horizon=90
        )
        acked, _ = _drive(
            cluster, transport, schedule, ops=90, tag="droppy", budget=96
        )
        assert acked
        transport.recover()
        anti_entropy_pass(cluster)
        for chunk in acked:
            assert _fully_replicated(cluster, chunk)
        assert digests_agree(cluster)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestGrayScheduleProperty:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_any_slow_schedule_keeps_acked_writes_durable(self, seed):
        """Under ANY deterministic slowness schedule: acked writes are
        durable after recovery, reads never return wrong bytes, and no
        verb outlives its deadline budget."""
        cluster, transport = _cluster(
            net_seed=seed, hedge_reads=True, deadline_budget=64
        )
        schedule = transport.plan.slow_schedule(
            sorted(cluster.nodes), events=5, horizon=40
        )
        acked, _ = _drive(
            cluster,
            transport,
            schedule,
            ops=40,
            tag="prop-%d" % seed,
            budget=64,
        )
        transport.recover()
        anti_entropy_pass(cluster)
        for chunk in acked:
            assert _fully_replicated(cluster, chunk)
        assert digests_agree(cluster)
