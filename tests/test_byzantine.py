"""Byzantine fault dimension: lying nodes, attribution, quarantine.

Unit coverage for the attack (``repro.faults.byzantine``), the defense
(``repro.cluster.accountability`` plus the hardened cluster paths), and
the evidence surfaces (``health_report``, the Verifier report, REST).
The full matrix runs in ``test_byzantine_torture.py``; these tests pin
each mechanism in isolation with rates of 0 or 1 so every branch is
forced deterministically.
"""

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.cluster import (
    QUARANTINED,
    TRUSTED,
    AccountabilityBoard,
    ClusterStore,
    StorageNode,
    anti_entropy_pass,
    digests_agree,
    sync,
)
from repro.cluster.accountability import SUSPECT
from repro.db import ForkBase
from repro.faults import (
    ByzantinePlan,
    ByzantineStore,
    corrupt_queued_hints,
    flip_at,
    heal_node,
    make_byzantine,
)
from repro.security import TamperingStore, Verifier
from repro.store import InMemoryStore


def _chunk(n: int) -> Chunk:
    return Chunk(ChunkType.BLOB, b"byz-payload-%d" % n)


def _uid(n: int) -> Uid:
    return Uid.of(b"byz-uid-%d" % n)


class TestFlipAt:
    def test_never_a_no_op(self):
        assert flip_at(b"", 0) == b"\x01"
        for offset in range(8):
            data = b"payload!"
            assert flip_at(data, offset) != data
            assert len(flip_at(data, offset)) == len(data)

    def test_mask_low_bit_always_set(self):
        # A mask of 0 would XOR nothing; the primitive forces bit 0 on.
        assert flip_at(b"\x00", 0, mask=0x00) == b"\x01"

    def test_offset_wraps(self):
        assert flip_at(b"ab", 2) == flip_at(b"ab", 0)


class TestByzantinePlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ByzantinePlan(flip_rate=1.5)
        with pytest.raises(ValueError):
            ByzantinePlan(withhold_rate=-0.1)

    def test_draws_are_deterministic_and_uniform_range(self):
        plan = ByzantinePlan(seed=42)
        uid = _uid(1)
        first = plan.draw("node-00", "flip", "get", uid, 0)
        assert first == plan.draw("node-00", "flip", "get", uid, 0)
        assert 0.0 <= first < 1.0

    def test_draws_vary_by_every_key_component(self):
        plan = ByzantinePlan(seed=42)
        uid = _uid(2)
        base = plan.draw("node-00", "flip", "get", uid, 0)
        assert base != plan.draw("node-01", "flip", "get", uid, 0)
        assert base != plan.draw("node-00", "withhold", "get", uid, 0)
        assert base != plan.draw("node-00", "flip", "put", uid, 0)
        assert base != plan.draw("node-00", "flip", "get", _uid(3), 0)
        assert base != plan.draw("node-00", "flip", "get", uid, 1)
        assert base != ByzantinePlan(seed=43).draw("node-00", "flip", "get", uid, 0)

    def test_mutate_never_a_no_op_and_replays(self):
        plan = ByzantinePlan(seed=7)
        uid = _uid(4)
        for data in (b"", b"x", b"some longer payload"):
            lie = plan.mutate("n", "get", data, uid, 0)
            assert lie != data
            assert lie == plan.mutate("n", "get", data, uid, 0)

    def test_pick_bounds(self):
        plan = ByzantinePlan(seed=7)
        assert 0 <= plan.pick("n", "donor", "get", _uid(5), 0, 3) < 3
        with pytest.raises(ValueError):
            plan.pick("n", "donor", "get", _uid(5), 0, 0)

    def test_lying_detects_any_nonzero_behavior(self):
        assert not ByzantinePlan(seed=1).lying()
        assert ByzantinePlan(seed=1, flip_rate=0.1).lying()
        assert ByzantinePlan(seed=1, forge_index=True).lying()


class TestByzantineStore:
    def test_flip_serves_wrong_bytes_under_claimed_uid(self):
        store = ByzantineStore(InMemoryStore(), ByzantinePlan(seed=1, flip_rate=1.0))
        chunk = _chunk(1)
        store.put(chunk)
        got = store.get_maybe(chunk.uid)
        assert got is not None
        assert got.uid == chunk.uid  # the claim
        assert got.data != chunk.data  # the lie
        assert not got.is_valid()
        assert store.lies_served >= 1
        # The honest backing copy was never touched.
        assert store.backing.get_maybe(chunk.uid).is_valid()

    def test_substitute_replays_another_chunks_content(self):
        store = ByzantineStore(
            InMemoryStore(), ByzantinePlan(seed=1, substitute_rate=1.0)
        )
        a, b = _chunk(1), _chunk(2)
        store.put(a)
        store.put(b)
        got = store.get_maybe(a.uid)
        assert got.uid == a.uid
        assert got.data == b.data  # the only possible donor
        assert not got.is_valid()

    def test_withhold_claims_not_found_for_held_chunk(self):
        store = ByzantineStore(InMemoryStore(), ByzantinePlan(seed=1, withhold_rate=1.0))
        chunk = _chunk(3)
        store.put(chunk)
        assert store.backing.has(chunk.uid)
        assert store.get_maybe(chunk.uid) is None
        assert not store.has(chunk.uid)
        assert store.reads_withheld >= 2

    def test_fake_ack_stores_nothing(self):
        store = ByzantineStore(InMemoryStore(), ByzantinePlan(seed=1, fake_ack_rate=1.0))
        chunk = _chunk(4)
        store.put(chunk)  # acked without raising
        assert not store.backing.has(chunk.uid)
        assert store.writes_faked == 1
        # Without forge_index the fake ack is not claimed to anti-entropy.
        assert store.claimed_ids() == []

    def test_forge_index_claims_fake_acked_uids(self):
        store = ByzantineStore(
            InMemoryStore(),
            ByzantinePlan(seed=1, fake_ack_rate=1.0, forge_index=True),
        )
        chunk = _chunk(5)
        store.put(chunk)
        assert store.claimed_ids() == [chunk.uid]
        assert store.index_forgeries >= 1

    def test_conceal_hides_held_uids_from_claims(self):
        store = ByzantineStore(InMemoryStore(), ByzantinePlan(seed=1, conceal_rate=1.0))
        chunk = _chunk(6)
        store.put(chunk)
        assert store.backing.has(chunk.uid)
        assert store.claimed_ids() == []

    def test_all_zero_plan_is_honest_passthrough(self):
        store = ByzantineStore(InMemoryStore(), ByzantinePlan(seed=1))
        chunk = _chunk(7)
        store.put(chunk)
        got = store.get_maybe(chunk.uid)
        assert got.is_valid() and got.data == chunk.data
        assert store.claimed_ids() == [chunk.uid]
        assert (store.lies_served, store.reads_withheld, store.writes_faked) == (0, 0, 0)

    def test_replays_bit_identically(self):
        def run():
            store = ByzantineStore(
                InMemoryStore(),
                ByzantinePlan(seed=99, flip_rate=0.4, withhold_rate=0.3),
            )
            outcomes = []
            for n in range(40):
                chunk = _chunk(n)
                store.put(chunk)
                got = store.get_maybe(chunk.uid)
                outcomes.append(
                    None if got is None else got.data == chunk.data
                )
            return outcomes, store.lies_served, store.reads_withheld

        assert run() == run()

    def test_make_byzantine_and_heal_round_trip(self):
        node = StorageNode("node-00")
        chunk = _chunk(8)
        node.store.put(chunk)
        wrapper = make_byzantine(node, ByzantinePlan(seed=1, flip_rate=1.0))
        assert node.store is wrapper
        assert wrapper.node == "node-00"
        assert not node.store.get_maybe(chunk.uid).is_valid()
        assert heal_node(node)
        assert node.store.get_maybe(chunk.uid).is_valid()
        assert not heal_node(node)  # already honest


class TestAccountabilityBoard:
    def test_weak_events_reach_suspect_but_never_quarantine(self):
        board = AccountabilityBoard(suspect_after=2)
        assert board.state("n") == TRUSTED
        board.record_suspicion("client", "n", _uid(1), op="get", kind="served-corrupt")
        assert board.state("n") == TRUSTED
        for n in range(50):
            board.record_suspicion(
                "client", "n", _uid(n), op="get", kind="served-corrupt"
            )
        assert board.state("n") == SUSPECT  # telemetry, not quarantine
        assert not board.is_quarantined("n")

    def test_strikes_on_one_uid_do_not_quarantine(self):
        board = AccountabilityBoard(quarantine_after=2)
        for _ in range(5):
            board.record_strike("c", "n", _uid(1), op="get", kind="audit-mismatch")
        assert not board.is_quarantined("n")

    def test_strikes_on_distinct_uids_quarantine(self):
        board = AccountabilityBoard(quarantine_after=2)
        board.record_strike("c", "n", _uid(1), op="get", kind="audit-mismatch")
        assert not board.is_quarantined("n")
        state = board.record_strike("c", "n", _uid(2), op="get", kind="audit-mismatch")
        assert state == QUARANTINED
        assert board.quarantined() == ["n"]
        assert board.quarantines == 1

    def test_unverified_write_run_converts_to_strike(self):
        board = AccountabilityBoard(write_strike_run=3, quarantine_after=2)
        board.record_unverified_write("c", "n", _uid(1))
        board.record_unverified_write("c", "n", _uid(2))
        assert board.cards["n"].strikes == 0
        board.record_unverified_write("c", "n", _uid(3))
        assert board.cards["n"].strikes == 1
        # A verified write resets the run: the next two do not strike.
        board.record_unverified_write("c", "n", _uid(4))
        board.record_verified_write("n")
        board.record_unverified_write("c", "n", _uid(5))
        board.record_unverified_write("c", "n", _uid(6))
        assert board.cards["n"].strikes == 1

    def test_evidence_ring_buffer_and_watermark(self):
        board = AccountabilityBoard(evidence_limit=4)
        for n in range(10):
            board.record_suspicion("c", "n", _uid(n), op="get", kind="served-corrupt")
        assert board.evidence_total == 10
        assert len(board.evidence) == 4
        fresh = board.evidence_since(8)
        assert len(fresh) == 2
        assert board.evidence_since(10) == []
        # Asking for more than the buffer retains yields what is left.
        assert len(board.evidence_since(0)) == 4

    def test_evidence_records_are_portable(self):
        board = AccountabilityBoard()
        board.record_strike(
            "client", "n", _uid(1), op="get", kind="audit-mismatch", served="ab" * 32
        )
        record = board.evidence[-1].to_dict()
        assert record["node"] == "n"
        assert record["uid"] == _uid(1).base32()
        assert record["expected"] == _uid(1).hex()
        assert record["served"] == "ab" * 32
        assert record["strike"] is True

    def test_readmit_is_probation_not_absolution(self):
        board = AccountabilityBoard(quarantine_after=2)
        board.record_strike("c", "n", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "n", _uid(2), op="get", kind="audit-mismatch")
        assert board.is_quarantined("n")
        board.readmit("n")
        card = board.cards["n"]
        assert card.state == SUSPECT
        assert card.strikes == 0 and not card.strike_uids
        assert card.readmissions == 1
        # Fresh strikes re-earn the quarantine from a clean ledger.
        board.record_strike("c", "n", _uid(3), op="get", kind="audit-mismatch")
        assert not board.is_quarantined("n")
        board.record_strike("c", "n", _uid(4), op="get", kind="audit-mismatch")
        assert board.is_quarantined("n")

    def test_snapshot_shape(self):
        board = AccountabilityBoard()
        board.record_suspicion("c", "n", _uid(1), op="get", kind="served-corrupt")
        snap = board.snapshot()
        assert snap["quarantined"] == []
        assert snap["evidence_total"] == 1
        assert snap["nodes"]["n"]["weak_events"] == 1
        assert snap["thresholds"]["quarantine_after"] == board.quarantine_after


class TestClusterDetection:
    def test_flipping_replica_never_wins_a_read_and_is_attributed(self):
        cluster = ClusterStore(node_count=4, replication=2)
        chunks = [_chunk(n) for n in range(60)]
        cluster.put_many(chunks)
        liar = "node-01"
        make_byzantine(cluster.nodes[liar], ByzantinePlan(seed=3, flip_rate=1.0))
        for chunk in chunks:
            got = cluster.get(chunk.uid)
            assert got.data == chunk.data  # siblings always out-vote the liar
        evidence = cluster.accountability.evidence
        assert evidence, "served lies must leave attribution records"
        assert {record.node for record in evidence} == {liar}
        assert all(
            record.expected != record.served
            for record in evidence
            if record.served is not None
        )

    def test_persistent_liar_reaches_quarantine_honest_peers_stay_trusted(self):
        cluster = ClusterStore(node_count=4, replication=2)
        chunks = [_chunk(n) for n in range(120)]
        cluster.put_many(chunks)
        liar = "node-02"
        make_byzantine(cluster.nodes[liar], ByzantinePlan(seed=5, flip_rate=1.0))
        for chunk in chunks:
            cluster.get(chunk.uid)
            if cluster.accountability.is_quarantined(liar):
                break
        assert cluster.accountability.is_quarantined(liar)
        for name in cluster.nodes:
            if name != liar:
                assert cluster.accountability.state(name) == TRUSTED

    def test_fake_acking_replica_quarantined_by_write_verification(self):
        cluster = ClusterStore(node_count=4, replication=2, write_quorum=1)
        liar = "node-00"
        make_byzantine(cluster.nodes[liar], ByzantinePlan(seed=9, fake_ack_rate=1.0))
        for n in range(200):
            cluster.put(_chunk(n))  # quorum met by the honest replica
            if cluster.accountability.is_quarantined(liar):
                break
        assert cluster.accountability.is_quarantined(liar)
        strikes = [
            r for r in cluster.accountability.evidence_for(liar) if r.strike
        ]
        assert strikes and all(r.kind == "unverified-writes" for r in strikes)

    def test_quarantined_node_out_of_quorums_and_reads(self):
        cluster = ClusterStore(node_count=4, replication=2)
        board = cluster.accountability
        board.record_strike("c", "node-03", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "node-03", _uid(2), op="get", kind="audit-mismatch")
        assert board.is_quarantined("node-03")
        chunks = [_chunk(n) for n in range(80)]
        cluster.put_many(chunks)
        assert cluster.quarantine_skips > 0
        assert list(cluster.nodes["node-03"].store.ids()) == []  # never written to
        for chunk in chunks:
            assert cluster.get(chunk.uid).data == chunk.data
        assert "node-03" not in [n.name for n in cluster.trusted_nodes()]


class TestHintDefense:
    def _cluster_with_pending_hints(self):
        cluster = ClusterStore(node_count=3, replication=2, write_quorum=1)
        cluster.kill_node("node-01")
        chunks = [_chunk(n) for n in range(40)]
        cluster.put_many(chunks)
        assert cluster.pending_hints().get("node-01", 0) > 0
        return cluster, chunks

    def test_corrupted_hint_replay_rejected_on_receiving_side(self):
        cluster, chunks = self._cluster_with_pending_hints()
        pending = sum(cluster.pending_hints().values())
        plan = ByzantinePlan(seed=11, hint_corrupt_rate=1.0)
        corrupted = corrupt_queued_hints(cluster, plan)
        assert corrupted == pending
        cluster.revive_node("node-01")
        assert cluster.hint_rejections == corrupted
        # Not one forged payload became a durable copy.
        node = cluster.nodes["node-01"]
        for uid in node.store.ids():
            assert node.store.get_maybe(uid).is_valid()
        # Anti-entropy still converges the replica set from honest peers.
        anti_entropy_pass(cluster)
        assert cluster.durability_check()["single"] == 0
        assert digests_agree(cluster)

    def test_rejections_counted_in_sync_report(self):
        cluster, _ = self._cluster_with_pending_hints()
        corrupted = corrupt_queued_hints(
            cluster, ByzantinePlan(seed=11, hint_corrupt_rate=1.0)
        )
        cluster.nodes["node-01"].revive()
        report = anti_entropy_pass(cluster)  # flush phase replays the hints
        assert report.hints_rejected == corrupted > 0

    def test_partial_corruption_rejects_only_forged_payloads(self):
        cluster, _ = self._cluster_with_pending_hints()
        pending = sum(cluster.pending_hints().values())
        corrupted = corrupt_queued_hints(
            cluster, ByzantinePlan(seed=13, hint_corrupt_rate=0.5)
        )
        assert 0 < corrupted < pending
        replayed = cluster.revive_node("node-01")
        assert replayed == pending - corrupted
        assert cluster.hint_rejections == corrupted

    def test_quarantined_target_hints_discarded(self):
        cluster, _ = self._cluster_with_pending_hints()
        pending = sum(cluster.pending_hints().values())
        board = cluster.accountability
        board.record_strike("c", "node-01", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "node-01", _uid(2), op="get", kind="audit-mismatch")
        assert cluster.revive_node("node-01") == 0
        assert cluster.hints_discarded == pending
        assert cluster.pending_hints() == {}


class TestTransferDefense:
    def test_invalid_transfer_rejected_and_attributed(self):
        cluster = ClusterStore(node_count=2, replication=2)
        source, target = cluster.nodes["node-00"], cluster.nodes["node-01"]
        honest = _chunk(1)
        forged = Chunk(honest.type, flip_at(honest.data, 0), uid=honest.uid)
        assert not cluster.transfer(source, target, forged)
        assert cluster.transfer_rejections == 1
        assert not target.store.has(honest.uid)
        record = cluster.accountability.evidence[-1]
        assert (record.node, record.kind) == ("node-00", "bad-transfer")
        assert record.origin == "node-01"
        # The honest payload still transfers fine.
        assert cluster.transfer(source, target, honest)
        assert target.store.get_maybe(honest.uid).is_valid()


class TestAntiEntropyAudit:
    def test_forged_index_caught_by_spot_check(self):
        """A forge_index node's digests *agree* while the bytes do not
        exist; the seeded audit must unmask it and quarantine."""
        cluster = ClusterStore(
            node_count=3,
            replication=2,
            write_quorum=1,
            audit_rate=1.0,
            # No write-time read-back: the fake acks land undetected and
            # the forged digest tree is the only thing that can betray
            # them — the scenario the spot-check audit exists for.
            verify_writes=False,
        )
        liar = "node-01"
        make_byzantine(
            cluster.nodes[liar],
            ByzantinePlan(seed=17, fake_ack_rate=1.0, forge_index=True),
        )
        for n in range(30):
            cluster.put(_chunk(n))
        report = anti_entropy_pass(cluster)
        assert report.audit_samples > 0
        assert report.audit_failures > 0
        assert cluster.accountability.is_quarantined(liar)
        strikes = [
            r for r in cluster.accountability.evidence_for(liar) if r.strike
        ]
        assert any(r.kind == "forged-digest" for r in strikes)
        # Convergence is judged over the trusted set: with the forger out,
        # the remaining replicas agree.
        assert digests_agree(cluster)

    def test_unproducible_claim_recorded_as_weak_evidence(self):
        """A claimed uid nobody can read out of the claimant is weak
        tamper evidence (the audit, not the pull, is what strikes)."""
        cluster = ClusterStore(node_count=2, replication=2, audit_rate=0.0)
        liar_node = cluster.nodes["node-00"]
        make_byzantine(
            liar_node, ByzantinePlan(seed=19, fake_ack_rate=1.0, forge_index=True)
        )
        ghost = _chunk(999)
        liar_node.store.put(ghost)  # fake-acked: claimed, held nowhere
        anti_entropy_pass(cluster)
        kinds = {r.kind for r in cluster.accountability.evidence_for("node-00")}
        assert "unproducible-claim" in kinds
        assert not cluster.accountability.is_quarantined("node-00")
        assert not cluster.nodes["node-01"].store.has(ghost.uid)

    def test_sync_sits_out_quarantined_nodes(self):
        cluster = ClusterStore(node_count=3, replication=2)
        cluster.put_many([_chunk(n) for n in range(20)])
        board = cluster.accountability
        board.record_strike("c", "node-00", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "node-00", _uid(2), op="get", kind="audit-mismatch")
        report = sync(cluster, cluster.nodes["node-00"], cluster.nodes["node-01"])
        assert report.quarantined_excluded == 1
        assert report.pulls == 0
        assert report.chunks_transferred == 0

    def test_quarantined_node_never_a_repair_source(self):
        """Even a copy that verifies right now must not be laundered out
        of a quarantined replica by the repair machinery."""
        cluster = ClusterStore(node_count=3, replication=2)
        orphan = _chunk(999)
        cluster.nodes["node-02"].store.put(orphan)  # valid, but only there
        assert cluster._healthy_source(orphan.uid) is not None
        board = cluster.accountability
        board.record_strike("c", "node-02", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "node-02", _uid(2), op="get", kind="audit-mismatch")
        assert cluster._healthy_source(orphan.uid) is None
        cluster.full_sweep_repair()
        for name in ("node-00", "node-01"):
            assert not cluster.nodes[name].store.has(orphan.uid)


class TestReadmit:
    def test_readmit_drops_bad_copies_and_resyncs(self):
        cluster = ClusterStore(node_count=3, replication=2, audit_rate=0.0)
        chunks = [_chunk(n) for n in range(50)]
        cluster.put_many(chunks)
        victim = cluster.nodes["node-01"]
        held = [uid for uid in victim.store.ids()]
        assert held
        # The adversary rotted some copies before being caught.
        bad = held[: max(3, len(held) // 4)]
        for uid in bad:
            original = victim.store.get_maybe(uid)
            victim.store.delete(uid)
            victim.store._insert(
                Chunk(original.type, flip_at(original.data, 0), uid=uid)
            )
        board = cluster.accountability
        board.record_strike("c", "node-01", _uid(1), op="get", kind="audit-mismatch")
        board.record_strike("c", "node-01", _uid(2), op="get", kind="audit-mismatch")
        assert board.is_quarantined("node-01")

        dropped = cluster.readmit("node-01")
        assert dropped == len(bad)
        assert board.state("node-01") == SUSPECT
        # The resync restored every replica from trusted peers, verified.
        for uid in victim.store.ids():
            assert victim.store.get_maybe(uid).is_valid()
        assert cluster.durability_check()["single"] == 0
        assert digests_agree(cluster)

    def test_readmitted_liar_re_earns_quarantine(self):
        cluster = ClusterStore(node_count=4, replication=2)
        chunks = [_chunk(n) for n in range(80)]
        cluster.put_many(chunks)
        liar = "node-02"
        make_byzantine(cluster.nodes[liar], ByzantinePlan(seed=23, flip_rate=1.0))
        for chunk in chunks:
            cluster.get(chunk.uid)
            if cluster.accountability.is_quarantined(liar):
                break
        assert cluster.accountability.is_quarantined(liar)
        # Operator readmits without fixing the cause: the wrapper stays.
        cluster.readmit(liar)
        for chunk in chunks:
            cluster.get(chunk.uid)
            if cluster.accountability.is_quarantined(liar):
                break
        assert cluster.accountability.is_quarantined(liar)
        assert cluster.accountability.cards[liar].readmissions == 1


class TestTamperingStoreNodeWrap:
    def test_wrap_node_targets_one_replica(self):
        cluster = ClusterStore(node_count=3, replication=2)
        chunks = [_chunk(n) for n in range(30)]
        cluster.put_many(chunks)
        node = cluster.nodes["node-00"]
        adversary = TamperingStore.wrap_node(node)
        assert node.store is adversary
        # Target a uid whose read will hit node-00 first, so the lie is
        # actually served (a second-replica lie may never be consulted).
        victim = next(
            uid
            for uid in sorted(adversary.backing.ids())
            if cluster.replica_nodes(uid)[0] is node
        )
        adversary.flip_byte(victim)
        # The cluster still serves right bytes and attributes the lie.
        assert cluster.get(victim).is_valid()
        assert any(
            r.node == "node-00" and r.kind == "served-corrupt"
            for r in cluster.accountability.evidence
        )
        assert TamperingStore.unwrap_node(node)
        assert node.store is adversary.backing
        assert not TamperingStore.unwrap_node(node)

    def test_wrap_node_shares_flip_primitive_with_plan(self):
        store = TamperingStore(InMemoryStore())
        chunk = _chunk(1)
        store.put(chunk)
        store.flip_byte(chunk.uid, offset=2)
        got = store.get_maybe(chunk.uid)
        assert got.data == flip_at(chunk.data, 2)
        assert not got.is_valid()


class TestEvidenceSurfaces:
    def _lied_to_cluster(self):
        cluster = ClusterStore(node_count=3, replication=2)
        chunks = [_chunk(n) for n in range(20)]
        cluster.put_many(chunks)
        make_byzantine(cluster.nodes["node-00"], ByzantinePlan(seed=29, flip_rate=1.0))
        for chunk in chunks:
            cluster.get(chunk.uid)
        return cluster

    def test_health_report_carries_scorecards_and_evidence(self):
        cluster = self._lied_to_cluster()
        report = cluster.health_report()
        accountability = report["accountability"]
        assert accountability["nodes"]["node-00"]["weak_events"] > 0
        assert report["tamper_evidence"]
        record = report["tamper_evidence"][-1]
        for key in ("node", "uid", "op", "kind", "expected", "served", "strike"):
            assert key in record
        for key in (
            "quarantine_skips",
            "hints_discarded",
            "hint_rejections",
            "transfer_rejections",
            "repair_audits",
            "repair_audit_failures",
        ):
            assert key in report

    def test_rest_status_flows_tamper_evidence(self):
        from repro.api.rest import Router

        cluster = self._lied_to_cluster()
        heal_node(cluster.nodes["node-00"])
        engine = ForkBase(cluster.client("api"), clock=lambda: 0.0)
        engine.put("doc", {"body": "hello"})
        response = Router(engine).request("GET", "/v1/status")
        assert response.ok
        report = response.body["cluster"]
        assert report["accountability"]["nodes"]["node-00"]["weak_events"] > 0
        assert report["tamper_evidence"]

    def test_verifier_merges_cluster_attribution(self):
        cluster = ClusterStore(node_count=3, replication=2)
        engine = ForkBase(store=cluster, clock=lambda: 0.0)
        engine.put("d", {"k%03d" % n: "v" * 40 for n in range(400)})
        head = engine.head("d")
        make_byzantine(cluster.nodes["node-01"], ByzantinePlan(seed=31, flip_rate=1.0))
        report = Verifier(cluster).verify_version(head)
        # Healthy siblings mean the version still verifies end to end...
        assert report.ok
        # ...and the board's attributions accrued during the walk ride
        # along: the client learns *who* served the bad bytes.
        attributed = [r for r in report.evidence if r["node"] == "node-01"]
        assert attributed
        assert any(r["kind"] == "served-corrupt" for r in attributed)

    def test_verifier_client_side_evidence_without_cluster(self):
        store = TamperingStore(InMemoryStore())
        engine = ForkBase(store=store, clock=lambda: 0.0)
        engine.put("d", {"a": "1"})
        head = engine.head("d")
        store.flip_byte(head)
        report = Verifier(store).verify_version(head)
        assert not report.ok
        assert report.evidence
        record = report.evidence[0]
        assert record["origin"] == "verifier"
        assert record["node"] == ""  # a client cannot name the replica
        assert record["kind"] == "corrupt"
