"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.db.engine import ForkBase
from repro.store import InMemoryStore


@pytest.fixture
def store() -> InMemoryStore:
    """A fresh in-memory chunk store."""
    return InMemoryStore()


@pytest.fixture
def engine() -> ForkBase:
    """A fresh engine with a deterministic clock."""
    return ForkBase(author="tester", clock=lambda: 1234.5)


@pytest.fixture
def sample_pairs() -> dict:
    """A mid-sized sorted record set (multi-level tree)."""
    return {
        f"key{i:05d}".encode(): f"value-{i}-{'x' * (i % 17)}".encode()
        for i in range(2000)
    }


@pytest.fixture
def small_pairs() -> dict:
    """A record set that fits in one or two leaves."""
    return {f"k{i:03d}".encode(): b"v%d" % i for i in range(40)}
