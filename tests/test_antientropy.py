"""Tests for Merkle anti-entropy repair (repro.cluster.antientropy)."""

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.cluster import (
    ClusterStore,
    DigestTree,
    StorageNode,
    anti_entropy_pass,
    digests_agree,
    ring_position,
    sync,
)
from repro.cluster.ring import POSITION_BITS
from repro.faults import RetryPolicy


def _chunk(n: int, size: int = 64) -> Chunk:
    return Chunk(ChunkType.BLOB, (b"ae-payload-%d-" % n) * (size // 12 + 1))


def _rot(node: StorageNode, chunk: Chunk) -> None:
    node.store.delete(chunk.uid)
    node.store.put(Chunk(chunk.type, b"ROT" + chunk.data, uid=chunk.uid))


def _cluster(**kwargs) -> ClusterStore:
    kwargs.setdefault("retry", RetryPolicy.instant(attempts=2))
    return ClusterStore(**kwargs)


class TestDigestTree:
    def test_equal_holdings_equal_roots(self):
        uids = [_chunk(i).uid for i in range(100)]
        a = DigestTree.from_uids(uids)
        b = DigestTree.from_uids(reversed(uids))  # order-independent
        assert a.root() == b.root()
        assert a == b

    def test_add_remove_roundtrip(self):
        uids = [_chunk(i).uid for i in range(20)]
        tree = DigestTree.from_uids(uids)
        root = tree.root()
        extra = _chunk(999).uid
        tree.add(extra)
        assert tree.root() != root
        tree.remove(extra)
        assert tree.root() == root
        assert len(tree) == 20

    def test_bucket_matches_ring_position_prefix(self):
        tree = DigestTree(depth=8)
        uid = _chunk(7).uid
        assert tree.bucket_of(uid) == ring_position(uid) >> (POSITION_BITS - 8)

    def test_diff_finds_exactly_the_differing_buckets(self):
        uids = [_chunk(i).uid for i in range(200)]
        a = DigestTree.from_uids(uids)
        b = DigestTree.from_uids(uids)
        missing = uids[17]
        b.remove(missing)
        differing, _ = a.diff(b)
        assert differing == [a.bucket_of(missing)]

    def test_diff_descends_only_divergent_subtrees(self):
        uids = [_chunk(i).uid for i in range(1000)]
        a = DigestTree.from_uids(uids)
        b = DigestTree.from_uids(uids[:-1])  # one uid missing
        _, compared = a.diff(b)
        # A full comparison would touch every node of a depth-8 tree
        # (2^9 - 1 = 511); the Merkle descent touches one path.
        assert compared <= 2 * a.depth + 1

    def test_identical_trees_compare_one_node(self):
        uids = [_chunk(i).uid for i in range(50)]
        a = DigestTree.from_uids(uids)
        b = DigestTree.from_uids(uids)
        differing, compared = a.diff(b)
        assert differing == [] and compared == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DigestTree(depth=0)
        with pytest.raises(ValueError):
            DigestTree(depth=17)
        with pytest.raises(ValueError):
            DigestTree(depth=4).diff(DigestTree(depth=8))


class TestPairwiseSync:
    def test_sync_ships_missing_chunks(self):
        cluster = _cluster(node_count=2, replication=2)
        chunks = [_chunk(i) for i in range(30)]
        for chunk in chunks:
            cluster.put(chunk)
        node_a, node_b = cluster.nodes["node-00"], cluster.nodes["node-01"]
        dropped = [c for c in chunks[:5]]
        for chunk in dropped:
            node_b.store.delete(chunk.uid)
        report = sync(cluster, node_a, node_b)
        assert report.chunks_transferred == len(dropped)
        assert all(node_b.store.has(c.uid) for c in dropped)

    def test_sync_on_converged_nodes_ships_nothing(self):
        cluster = _cluster(node_count=2, replication=2)
        for i in range(30):
            cluster.put(_chunk(i))
        node_a, node_b = cluster.nodes["node-00"], cluster.nodes["node-01"]
        report = sync(cluster, node_a, node_b)
        assert report.chunks_transferred == 0
        assert report.buckets_differing == 0

    def test_sync_respects_ownership(self):
        # A chunk b holds but a does NOT own must not be pushed onto a.
        cluster = _cluster(node_count=4, replication=2)
        chunks = [_chunk(i) for i in range(40)]
        for chunk in chunks:
            cluster.put(chunk)
        node_a, node_b = cluster.nodes["node-00"], cluster.nodes["node-01"]
        before = set(node_a.store.ids())
        sync(cluster, node_a, node_b)
        gained = set(node_a.store.ids()) - before
        owners = {uid: cluster.ring.replicas(uid, 2) for uid in gained}
        assert all("node-00" in names for names in owners.values())


class TestAntiEntropyPass:
    def test_wipe_revive_heals(self):
        cluster = _cluster(node_count=3, replication=2)
        chunks = [_chunk(i) for i in range(50)]
        for chunk in chunks:
            cluster.put(chunk)
        cluster.kill_node("node-01")
        cluster.revive_node("node-01", wipe=True)
        report = anti_entropy_pass(cluster)
        assert report.chunks_transferred > 0
        for chunk in chunks:
            live = sum(
                1
                for node in cluster.replica_nodes(chunk.uid)
                if node.up and node.store.has(chunk.uid)
            )
            assert live == 2
        assert digests_agree(cluster)

    def test_rot_is_quarantined_and_reshipped(self):
        cluster = _cluster(node_count=3, replication=2)
        chunks = [_chunk(i) for i in range(30)]
        for chunk in chunks:
            cluster.put(chunk)
        victim_chunk = chunks[4]
        victim_node = cluster.replica_nodes(victim_chunk.uid)[0]
        _rot(victim_node, victim_chunk)
        report = anti_entropy_pass(cluster)
        assert report.rotten_quarantined == 1
        assert report.chunks_transferred >= 1
        got = victim_node.store.get_maybe(victim_chunk.uid)
        assert got is not None and got.is_valid()

    def test_transfers_bounded_by_divergence(self):
        """Regression: anti-entropy must ship O(divergence), not O(N)."""
        cluster = _cluster(node_count=4, replication=2)
        total = 400
        for i in range(total):
            cluster.put(_chunk(i))
        # Diverge ~2%: drop a handful of replicas from one node.
        victim = cluster.nodes["node-02"]
        held = sorted(victim.store.ids())
        dropped = held[: max(1, len(held) // 25)]
        for uid in dropped:
            victim.store.delete(uid)
        report = anti_entropy_pass(cluster)
        assert report.chunks_transferred == len(dropped)
        # The full sweep touches every chunk in the cluster; the Merkle
        # pass must examine only the divergent arcs.
        cluster.full_sweep_repair()
        assert cluster.sweep_examined == total
        assert report.chunks_examined <= 4 * len(dropped)
        assert report.chunks_examined < total

    def test_repair_delegates_to_anti_entropy(self):
        cluster = _cluster(node_count=3, replication=2)
        for i in range(20):
            cluster.put(_chunk(i))
        cluster.kill_node("node-00")
        cluster.revive_node("node-00", wipe=True)
        copies = cluster.repair()
        assert copies > 0
        assert cluster.last_sync_report is not None
        assert cluster.last_sync_report.chunks_transferred == copies
        assert digests_agree(cluster)

    def test_pass_is_deterministic(self):
        def run():
            cluster = _cluster(node_count=3, replication=2)
            for i in range(40):
                cluster.put(_chunk(i))
            cluster.kill_node("node-01")
            cluster.revive_node("node-01", wipe=True)
            report = anti_entropy_pass(cluster)
            return (
                report.chunks_transferred,
                report.tree_nodes_compared,
                report.buckets_differing,
                sorted(
                    (name, sorted(u.hex() for u in node.store.ids()))
                    for name, node in cluster.nodes.items()
                ),
            )

        assert run() == run()

    def test_digests_agree_detects_divergence(self):
        cluster = _cluster(node_count=2, replication=2)
        chunks = [_chunk(i) for i in range(20)]
        for chunk in chunks:
            cluster.put(chunk)
        assert digests_agree(cluster)
        cluster.nodes["node-01"].store.delete(chunks[0].uid)
        assert not digests_agree(cluster)
        anti_entropy_pass(cluster)
        assert digests_agree(cluster)


class TestVerifiedDurabilityCheck:
    def test_silent_rot_counts_as_under_replication(self):
        cluster = _cluster(node_count=2, replication=2)
        chunk = _chunk(0)
        cluster.put(chunk)
        assert cluster.durability_check()["replicated"] == 1
        _rot(cluster.nodes["node-00"], chunk)
        verified = cluster.durability_check()
        assert verified["replicated"] == 0
        assert verified["single"] == 1
        # The unverified legacy count still believes the rotten copy.
        unverified = cluster.durability_check(verify=False)
        assert unverified["replicated"] == 1

    def test_rot_everywhere_counts_as_lost(self):
        cluster = _cluster(node_count=2, replication=2)
        chunk = _chunk(1)
        cluster.put(chunk)
        for node in cluster.nodes.values():
            if node.store.has(chunk.uid):
                _rot(node, chunk)
        assert cluster.durability_check()["lost"] == 1

    def test_anti_entropy_restores_verified_durability(self):
        cluster = _cluster(node_count=3, replication=2)
        chunks = [_chunk(i) for i in range(15)]
        for chunk in chunks:
            cluster.put(chunk)
        _rot(cluster.replica_nodes(chunks[3].uid)[1], chunks[3])
        assert cluster.durability_check()["single"] >= 1
        anti_entropy_pass(cluster)
        check = cluster.durability_check()
        assert check["lost"] == 0 and check["single"] == 0
