"""Tests for the tamper-evident ledger application (repro.apps.ledger)."""

import pytest

from repro.apps import InsufficientFunds, Ledger
from repro.db import ForkBase
from repro.errors import ForkBaseError, MergeConflictError
from repro.security import TamperingStore
from repro.store import InMemoryStore


@pytest.fixture
def ledger():
    engine = ForkBase(author="node-0", clock=lambda: 0.0)
    ledger = Ledger(engine)
    ledger.genesis({"alice": 1000, "bob": 500, "treasury": 10_000})
    return ledger


class TestBasics:
    def test_genesis_balances(self, ledger):
        assert ledger.balance("alice") == 1000
        assert ledger.balance("bob") == 500
        assert ledger.balance("nobody") == 0
        assert ledger.height() == 0
        assert ledger.total_supply() == 11_500

    def test_double_genesis_rejected(self, ledger):
        with pytest.raises(ForkBaseError):
            ledger.genesis({"x": 1})

    def test_negative_genesis_rejected(self):
        bad = Ledger(ForkBase(clock=lambda: 0.0))
        with pytest.raises(ValueError):
            bad.genesis({"x": -5})

    def test_transfer_and_commit(self, ledger):
        ledger.transfer("alice", "bob", 300)
        block = ledger.commit_block(proposer="node-1")
        assert block.height == 1
        assert len(block.transactions) == 1
        assert ledger.balance("alice") == 700
        assert ledger.balance("bob") == 800
        assert ledger.total_supply() == 11_500

    def test_multiple_txns_per_block(self, ledger):
        ledger.transfer("alice", "bob", 100)
        ledger.transfer("bob", "carol", 550)  # uses funds received above
        block = ledger.commit_block()
        assert ledger.balance("carol") == 550
        assert ledger.balance("bob") == 50
        assert len(block.transactions) == 2

    def test_overdraft_rejected_atomically(self, ledger):
        ledger.transfer("alice", "bob", 100)
        ledger.transfer("alice", "bob", 10_000)  # would overdraw
        with pytest.raises(InsufficientFunds):
            ledger.commit_block()
        # Nothing applied: the block is atomic.
        assert ledger.balance("alice") == 1000
        assert ledger.height() == 0

    def test_invalid_amount_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.transfer("alice", "bob", 0)
        with pytest.raises(ValueError):
            ledger.transfer("alice", "bob", -5)

    def test_pending_cleared_after_commit(self, ledger):
        ledger.transfer("alice", "bob", 1)
        ledger.commit_block()
        assert ledger.pending == []


class TestChain:
    def test_chain_grows_and_links(self, ledger):
        for round_ in range(3):
            ledger.transfer("treasury", "alice", 10)
            ledger.commit_block(proposer=f"node-{round_}")
        chain = ledger.chain()
        assert [block.height for block in chain] == [0, 1, 2, 3]
        hashes = [block.block_hash for block in chain]
        assert len(set(hashes)) == 4  # all distinct
        assert chain[2].proposer == "node-1"

    def test_historical_balance(self, ledger):
        ledger.transfer("alice", "bob", 100)
        ledger.commit_block()
        ledger.transfer("alice", "bob", 200)
        ledger.commit_block()
        assert ledger.balance("alice", height=0) == 1000
        assert ledger.balance("alice", height=1) == 900
        assert ledger.balance("alice", height=2) == 700

    def test_block_at_bounds(self, ledger):
        with pytest.raises(IndexError):
            ledger.block_at(5)

    def test_state_roots_differ_per_block(self, ledger):
        ledger.transfer("alice", "bob", 1)
        ledger.commit_block()
        chain = ledger.chain()
        assert chain[0].state_root != chain[1].state_root


class TestForks:
    def test_fork_and_fast_forward_adoption(self, ledger):
        ledger.fork("competitor")
        ledger.transfer("alice", "bob", 50)
        ledger.commit_block(branch="competitor")
        assert ledger.height("master") == 0
        assert ledger.height("competitor") == 1
        ledger.adopt_fork("competitor")
        assert ledger.height("master") == 1
        assert ledger.balance("alice", branch="master") == 950

    def test_disjoint_forks_merge(self, ledger):
        ledger.fork("side")
        # master moves alice's money; side moves treasury's.
        ledger.transfer("alice", "bob", 100)
        ledger.commit_block(branch="master")
        ledger.transfer("treasury", "carol", 999)
        ledger.commit_block(branch="side")
        block = ledger.merge_fork("side")
        assert ledger.balance("alice") == 900
        assert ledger.balance("carol") == 999
        assert ledger.total_supply() == 11_500  # conservation across merge
        node = ledger.engine.graph.load(block.block_hash)
        assert node.is_merge()

    def test_conflicting_forks_refuse_to_merge(self, ledger):
        ledger.fork("side")
        ledger.transfer("alice", "bob", 100)
        ledger.commit_block(branch="master")
        ledger.transfer("alice", "carol", 200)  # alice's balance conflicts
        ledger.commit_block(branch="side")
        with pytest.raises(MergeConflictError):
            ledger.merge_fork("side")

    def test_adopt_requires_fast_forward(self, ledger):
        ledger.fork("side")
        ledger.transfer("alice", "bob", 1)
        ledger.commit_block(branch="master")
        ledger.transfer("treasury", "bob", 1)
        ledger.commit_block(branch="side")
        with pytest.raises(ForkBaseError):
            ledger.adopt_fork("side")


class TestAudit:
    def test_clean_chain_audits(self, ledger):
        ledger.transfer("alice", "bob", 10)
        ledger.commit_block()
        report = ledger.audit()
        assert report.ok
        assert report.fnodes_checked == 2

    def test_tampered_state_detected(self):
        provider = TamperingStore(InMemoryStore())
        engine = ForkBase(store=provider, clock=lambda: 0.0)
        ledger = Ledger(engine)
        ledger.genesis({"alice": 100})
        ledger.transfer("alice", "alice", 1)
        block = ledger.commit_block()
        provider.flip_byte(block.state_root)
        assert not ledger.audit().ok

    def test_history_rewrite_detected(self):
        """An adversary rewriting the genesis allocation is caught from
        the current head alone — the block-chain property."""
        provider = TamperingStore(InMemoryStore())
        engine = ForkBase(store=provider, clock=lambda: 0.0)
        ledger = Ledger(engine)
        genesis = ledger.genesis({"alice": 100, "mallory": 1})
        ledger.transfer("alice", "mallory", 5)
        ledger.commit_block()
        provider.flip_byte(genesis.block_hash)
        assert not ledger.audit().ok
