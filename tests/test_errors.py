"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors
from repro.chunk import Uid


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.ChunkError,
            errors.ChunkNotFoundError,
            errors.ChunkCorruptionError,
            errors.ChunkEncodingError,
            errors.StoreError,
            errors.StoreClosedError,
            errors.TreeError,
            errors.KeyOrderError,
            errors.VersionError,
            errors.UnknownVersionError,
            errors.UnknownBranchError,
            errors.BranchExistsError,
            errors.MergeConflictError,
            errors.EngineError,
            errors.UnknownKeyError,
            errors.TypeMismatchError,
            errors.TamperError,
            errors.AccessDeniedError,
            errors.SchemaError,
            errors.ApiError,
            errors.NotFoundApiError,
            errors.ClusterError,
            errors.NodeDownError,
            errors.TransientError,
            errors.TransientStoreError,
            errors.QuorumWriteError,
        ],
    )
    def test_everything_derives_from_forkbase_error(self, cls):
        assert issubclass(cls, errors.ForkBaseError)

    def test_lookup_errors_are_also_keyerrors(self):
        """Callers can catch either the domain error or the std type."""
        assert issubclass(errors.ChunkNotFoundError, KeyError)
        assert issubclass(errors.UnknownVersionError, KeyError)
        assert issubclass(errors.UnknownBranchError, KeyError)
        assert issubclass(errors.UnknownKeyError, KeyError)
        assert issubclass(errors.TypeMismatchError, TypeError)

    def test_one_base_catches_the_world(self, engine):
        with pytest.raises(errors.ForkBaseError):
            engine.get("never-put")

    def test_transient_marks_the_retryable_subset(self):
        """Retry loops key off TransientError, not specific classes."""
        assert issubclass(errors.TransientStoreError, errors.TransientError)
        assert issubclass(errors.TransientStoreError, errors.StoreError)
        assert issubclass(errors.NodeDownError, errors.TransientError)
        assert not issubclass(errors.ChunkCorruptionError, errors.TransientError)
        assert not issubclass(errors.QuorumWriteError, errors.TransientError)


class TestMessages:
    def test_chunk_not_found_carries_uid(self):
        uid = Uid.of(b"x")
        error = errors.ChunkNotFoundError(uid)
        assert error.uid == uid
        assert "chunk not found" in str(error)

    def test_unknown_branch_names_both_parts(self):
        error = errors.UnknownBranchError("mykey", "dev")
        assert error.key == "mykey" and error.branch == "dev"
        assert "dev" in str(error) and "mykey" in str(error)

    def test_merge_conflict_carries_conflicts(self):
        error = errors.MergeConflictError([1, 2, 3])
        assert error.conflicts == [1, 2, 3]
        assert "3" in str(error)

    def test_api_error_status_codes(self):
        assert errors.ApiError.status == 400
        assert errors.NotFoundApiError.status == 404

    def test_quorum_write_carries_counts(self):
        error = errors.QuorumWriteError("2 of 3 needed", acked=1, required=2)
        assert error.acked == 1 and error.required == 2
        assert "2 of 3 needed" in str(error)
