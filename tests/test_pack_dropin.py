"""The pack backend as a drop-in: engine, gc, scrub, cache, crash torture.

The acceptance bar for the backend swap: everything above the chunk layer
behaves identically — roots and uids are bit-for-bit the same as with
FileStore, the garbage collector can sweep and compact it, the scrubber
understands its record frames, the decoded-node cache layers on top, and
the engine-level crash-torture discipline holds with pack boundaries in
the schedule.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.chunk import Uid
from repro.db.engine import ForkBase
from repro.errors import EngineError, SimulatedCrash
from repro.faults import CrashPlan, crash_zone
from repro.store import NodeCacheStore, PackStore
from repro.store.scrub import diagnose_copy

SEED = int(os.environ.get("FORKBASE_FAULT_SEED", "20260808"))

HeadMap = Dict[Tuple[str, str], Uid]


def _heads(engine: ForkBase) -> HeadMap:
    return {(key, branch): head for key, branch, head in engine.branch_table.all_heads()}


def _fill(engine: ForkBase) -> None:
    engine.put("doc", {("k%03d" % i): ("v%d" % i) for i in range(200)})
    engine.put("doc", {("k%03d" % i): ("v%d" % (i + 1)) for i in range(200)})
    engine.branch("doc", "dev")
    engine.put("doc", {"only": "dev"}, branch="dev")
    engine.put("blob", "payload " * 400)


class TestBackendParity:
    def test_roots_and_uids_bit_identical(self, tmp_path):
        engines = {
            name: ForkBase.open(str(tmp_path / name), backend=name)
            for name in ("file", "pack")
        }
        for engine in engines.values():
            engine._clock = lambda: 1234.5
            _fill(engine)
        assert _heads(engines["file"]) == _heads(engines["pack"])
        assert sorted(u.digest for u in engines["file"].store.ids()) == sorted(
            u.digest for u in engines["pack"].store.ids()
        )
        for uid in engines["file"].store.ids():
            assert (
                engines["file"].store.get(uid).data
                == engines["pack"].store.get(uid).data
            )
        for engine in engines.values():
            engine.close()

    def test_auto_detects_existing_layout(self, tmp_path):
        directory = str(tmp_path / "db")
        with ForkBase.open(directory, backend="pack") as engine:
            engine.put("k", {"a": "1"})
        with ForkBase.open(directory) as engine:  # backend="auto"
            assert isinstance(engine.store, PackStore)
            assert engine.get_value("k") == {b"a": b"1"}

    def test_explicit_backend_mismatch_is_an_error(self, tmp_path):
        directory = str(tmp_path / "db")
        with ForkBase.open(directory, backend="pack") as engine:
            engine.put("k", {"a": "1"})
        with pytest.raises(EngineError):
            ForkBase.open(directory, backend="file")

    def test_auto_rejects_ambiguous_layout(self, tmp_path):
        """Both layouts present (crashed migration, stray dir): 'auto'
        must error like the explicit-mismatch cases, not silently open
        one layout and hide the other's chunks."""
        directory = str(tmp_path / "db")
        with ForkBase.open(directory, backend="pack") as engine:
            engine.put("k", {"a": "1"})
        os.makedirs(os.path.join(directory, "chunks", "segments"))
        with pytest.raises(EngineError):
            ForkBase.open(directory)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            ForkBase.open(str(tmp_path / "db"), backend="tape")

    def test_verify_and_history_on_pack(self, tmp_path):
        with ForkBase.open(str(tmp_path / "db"), backend="pack") as engine:
            _fill(engine)
            assert engine.verify("doc").ok
            assert engine.verify("doc", branch="dev").ok
            assert len(engine.history("doc")) == 2


class TestGcOnPack:
    def test_in_place_sweep_and_compaction(self, tmp_path):
        engine = ForkBase.open(str(tmp_path / "db"), backend="pack")
        _fill(engine)
        engine.put("dead", {"x": "y" * 500})
        engine.drop("dead")
        physical = engine.store
        disk_before = physical.disk_size()
        report = engine.collect_garbage(compact=True)
        assert report.swept_chunks > 0
        assert report.segments_before >= report.segments_after >= 1
        assert physical.disk_size() < disk_before
        # The live data is untouched and still verifies.
        assert engine.get_value("doc", branch="dev") == {b"only": b"dev"}
        assert engine.verify("doc").ok
        engine.close()
        # ... and the swept store survives reopen.
        with ForkBase.open(str(tmp_path / "db")) as reopened:
            assert reopened.verify("doc").ok

    def test_sweep_through_node_cache_wrapper(self, tmp_path):
        engine = ForkBase.open(str(tmp_path / "db"), backend="pack", node_cache=128)
        _fill(engine)
        engine.put("dead", {"x": "y" * 500})
        assert engine.get_value("dead") == {b"x": b"y" * 500}  # warm the cache
        engine.drop("dead")
        report = engine.collect_garbage(compact=True)
        assert report.swept_chunks > 0
        assert engine.get_value("doc", branch="dev") == {b"only": b"dev"}
        engine.close()


class TestScrubOnPack:
    def _flip_record_byte(self, store: PackStore, uid: Uid) -> None:
        segment, offset, length = store._index[uid]
        path = os.path.join(store._dir, "packs", "pack-%06d.dat" % segment)
        store._drop_maps()
        with open(path, "r+b") as handle:
            handle.seek(offset + length - 1)  # last payload byte
            byte = handle.read(1)
            handle.seek(offset + length - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_scrub_quarantines_frame_rot(self, tmp_path):
        engine = ForkBase.open(str(tmp_path / "db"), backend="pack")
        _fill(engine)
        victim = next(iter(engine.store.ids()))
        self._flip_record_byte(engine.store, victim)
        report = engine.scrub()
        assert report.corrupt == 1
        assert report.corrupt_uids == [victim]
        assert report.quarantined == 1
        assert not engine.store.has(victim)
        engine.close()

    def test_diagnose_copy_skips_reread_on_disk_rot(self, tmp_path):
        store = PackStore(str(tmp_path / "ps"))
        from repro.chunk import Chunk, ChunkType

        chunk = Chunk(ChunkType.BLOB, b"scrub-me " * 30)
        store.put(chunk)
        self._flip_record_byte(store, chunk.uid)
        reads = {"n": 0}
        original = store._fetch

        def counting_fetch(uid):
            reads["n"] += 1
            return original(uid)

        store._fetch = counting_fetch  # type: ignore[method-assign]
        status, _, resolved = diagnose_copy(store, chunk.uid, reread_on_mismatch=True)
        assert status == "corrupt" and resolved is False
        # Frame CRC settled it: exactly one data read, no wasted re-read.
        assert reads["n"] == 1
        store.abandon()


class TestNodeCache:
    def test_hot_descents_hit_the_cache(self, tmp_path):
        engine = ForkBase.open(str(tmp_path / "db"), backend="pack", node_cache=512)
        assert isinstance(engine.store, NodeCacheStore)
        _fill(engine)
        engine.get_value("doc")  # cold: populates
        before = engine.store.node_hits
        for _ in range(5):
            assert engine.get_value("doc")[b"k000"] == b"v1"
        assert engine.store.node_hits > before
        snap = engine.storage_snapshot()
        assert snap.cache_lookups > 0 and snap.cache_hit_rate > 0.0
        engine.close()

    def test_cached_reads_are_correct_across_types(self, tmp_path):
        with ForkBase.open(str(tmp_path / "db"), backend="pack", node_cache=64) as engine:
            engine.put("m", {"a": "1", "b": "2"})
            engine.put("l", ["x", "y", "z"])
            engine.put("b", "blob " * 100)
            for _ in range(3):  # repeated: served from decoded nodes
                assert engine.get_value("m") == {b"a": b"1", b"b": b"2"}
                assert engine.get_value("l") == [b"x", b"y", b"z"]
                assert engine.get_value("b") == "blob " * 100

    def test_cache_share_of_lookups_grows(self, tmp_path):
        engine = ForkBase.open(str(tmp_path / "db"), backend="pack", node_cache=1024)
        _fill(engine)
        for _ in range(10):
            engine.get_value("doc")
        assert engine.store.node_hit_rate > 0.5
        engine.close()


class TestEngineCrashTortureOnPack:
    """The engine torture discipline with pack boundaries in the schedule."""

    def _ops(self, engine: ForkBase) -> List:
        ops = [
            lambda: engine.put("doc", {"a": "1"}),
            lambda: engine.put("doc", {"a": "2", "pad": "x" * 48}),
            lambda: engine.branch("doc", "dev"),
            lambda: engine.put("doc", {"a": "3"}, branch="dev"),
            lambda: engine.merge("doc", "dev", "master"),
            lambda: engine.put("blob", "payload " * 6),
        ]
        for i in range(4):
            ops.append(lambda i=i: engine.put("bulk", {"i": str(i)}))
        return ops

    def _run(self, directory: str, acked: List[HeadMap]) -> None:
        engine: Optional[ForkBase] = None
        try:
            engine = ForkBase.open(
                directory, fsync="always", journal_limit=700, backend="pack"
            )
            acked.append(_heads(engine))
            for op in self._ops(engine):
                op()
                acked.append(_heads(engine))
            engine.close()
        except SimulatedCrash:
            acked.append(_heads(engine) if engine is not None else {})
            if engine is not None:
                engine.abandon()
            raise

    def test_torture_every_crash_point(self, tmp_path):
        with crash_zone(CrashPlan(seed=SEED)) as clock:
            self._run(str(tmp_path / "census"), [])
        kinds = {hit.kind for hit in clock.trace}
        assert "pack-write" in kinds  # the pack layer is in the schedule
        assert "journal-write" in kinds
        total = clock.count
        assert total > 40

        for boundary in range(total):
            directory = str(tmp_path / f"crash{boundary}")
            acked: List[HeadMap] = []
            with pytest.raises(SimulatedCrash):
                with crash_zone(CrashPlan(crash_at=boundary, seed=SEED)):
                    self._run(directory, acked)
            allowed = [acked[-1]]
            if len(acked) > 1:
                allowed.append(acked[-2])
            recovered = ForkBase.open(directory)
            state = _heads(recovered)
            assert state in allowed, f"boundary {boundary}"
            for (key, branch) in state:
                assert recovered.verify(key, branch).ok, f"boundary {boundary}"
            recovered.close()
            again = ForkBase.open(directory)
            assert _heads(again) == state, f"boundary {boundary}: not idempotent"
            again.close()
