"""Filesystem-fault injection: plan, shim, store/journal recovery, health.

The fourth fault dimension (after byzantine stores, network partitions,
and crash points): the disk itself misbehaves.  These are the unit-level
checks; ``test_fsfault_torture.py`` walks every boundary × flavor and
``test_property_fsfaults.py`` drives random schedules.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.chunk import Chunk, ChunkType
from repro.db.engine import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
    ForkBase,
)
from repro.errors import (
    DiskFaultError,
    DiskFullError,
    EngineLockedError,
    ReadOnlyError,
    StoreError,
    TransientStoreError,
    map_os_error,
)
from repro.faults import FaultyOS, FsFaultPlan, fs_zone
from repro.faults.fs import TARGETED_FLAVORS
from repro.store.durability import (
    active_injector,
    durable_replace,
    fsync_path,
    read_check,
    write_bytes,
)
from repro.store.filestore import FileStore
from repro.store.packstore import PackStore
from repro.vcs.journal import CommitJournal


def _chunk(tag: bytes) -> Chunk:
    return Chunk(ChunkType.BLOB, b"payload-" + tag)


# -- plan determinism ---------------------------------------------------------


def test_plan_decisions_replay_bit_identically():
    plan = FsFaultPlan(seed=7, enospc_rate=0.3, fsync_fail_rate=0.2, eio_read_rate=0.1)
    first = [
        plan.decide(syscall, "seg-000000.dat", attempt, index)
        for index, (syscall, attempt) in enumerate(
            (s, a) for s in ("write", "fsync", "read", "replace") for a in range(32)
        )
    ]
    second = [
        plan.decide(syscall, "seg-000000.dat", attempt, index)
        for index, (syscall, attempt) in enumerate(
            (s, a) for s in ("write", "fsync", "read", "replace") for a in range(32)
        )
    ]
    assert first == second
    assert any(fault is not None for fault in first)


def test_plan_seed_changes_schedule():
    a = FsFaultPlan(seed=1, enospc_rate=0.5)
    b = FsFaultPlan(seed=2, enospc_rate=0.5)
    draws_a = [a.draw("write", "x", n) for n in range(64)]
    draws_b = [b.draw("write", "x", n) for n in range(64)]
    assert draws_a != draws_b
    assert all(0.0 <= value < 1.0 for value in draws_a)


def test_targeted_plan_faults_exactly_one_boundary(tmp_path):
    path = tmp_path / "blob.dat"
    with fs_zone(FsFaultPlan(fail_at=1, flavor="enospc")) as shim:
        with open(path, "ab") as handle:
            write_bytes(handle, b"first")  # boundary 0: clean
            with pytest.raises(DiskFullError):
                write_bytes(handle, b"second")  # boundary 1: ENOSPC
            write_bytes(handle, b"third")  # boundary 2: clean again
    assert [hit.fault for hit in shim.trace] == [None, "enospc", None]
    assert len(shim.injected) == 1


def test_census_mode_counts_without_faulting(tmp_path):
    path = tmp_path / "blob.dat"
    with fs_zone(FsFaultPlan()) as shim:
        with open(path, "ab") as handle:
            write_bytes(handle, b"data")
        read_check(str(path))
    assert shim.count == 2
    assert shim.injected == []
    assert {hit.syscall for hit in shim.trace} == {"write", "read"}


# -- shim semantics -----------------------------------------------------------


def test_short_write_materializes_strict_prefix(tmp_path):
    path = tmp_path / "blob.dat"
    data = b"0123456789" * 8
    with fs_zone(FsFaultPlan(fail_at=0, flavor="short")):
        with open(path, "ab") as handle:
            with pytest.raises(DiskFullError):
                write_bytes(handle, data)
    landed = path.read_bytes()
    assert len(landed) < len(data)
    assert data.startswith(landed)


def test_fsync_failure_drops_dirty_pages_and_gates_descriptor(tmp_path):
    path = tmp_path / "blob.dat"
    with open(path, "wb") as handle:
        handle.write(b"durable")
        handle.flush()
        os.fsync(handle.fileno())
    with fs_zone(FsFaultPlan(fail_at=1, flavor="fsync")) as shim:
        handle = open(path, "r+b")
        handle.seek(0, os.SEEK_END)
        injector = active_injector()
        injector.write(handle, b"-dirty")  # boundary 0, fixes the durable floor
        handle.flush()
        with pytest.raises(OSError) as excinfo:
            injector.fsync_handle(handle)  # boundary 1: EIO + page loss
        assert excinfo.value.errno == errno.EIO
        # fsyncgate: the unsynced bytes are gone from the file...
        assert path.read_bytes() == b"durable"
        assert shim.dropped_bytes == len(b"-dirty")
        # ...and a retry on the same descriptor falsely reports success.
        injector.fsync_handle(handle)
        assert shim.false_fsyncs == 1
        handle.close()


def test_read_probe_eio_classifies_as_disk_fault(tmp_path):
    path = tmp_path / "blob.dat"
    path.write_bytes(b"data")
    with fs_zone(FsFaultPlan(fail_at=0, flavor="eio")):
        with pytest.raises(DiskFaultError):
            read_check(str(path))
    read_check(str(path))  # clean outside the zone


def test_replace_fault_classifies_and_preserves_source(tmp_path):
    source = tmp_path / "new.tmp"
    destination = tmp_path / "index.dat"
    destination.write_bytes(b"old")
    source.write_bytes(b"new")
    # Boundary 0 is fsync_path(source); boundary 1 is the rename itself.
    with fs_zone(FsFaultPlan(fail_at=1, flavor="eio")):
        with pytest.raises(DiskFaultError):
            durable_replace(str(source), str(destination))
    assert destination.read_bytes() == b"old"


def test_map_os_error_taxonomy():
    full = map_os_error(OSError(errno.ENOSPC, "no space"), "write", "seg")
    assert isinstance(full, DiskFullError)
    assert isinstance(full, TransientStoreError)
    assert full.syscall == "write" and full.path == "seg"
    quota = map_os_error(OSError(errno.EDQUOT, "quota"), "write", "seg")
    assert isinstance(quota, DiskFullError)
    fault = map_os_error(OSError(errno.EIO, "io"), "fsync", "seg")
    assert isinstance(fault, DiskFaultError)
    assert not isinstance(fault, TransientStoreError)
    assert isinstance(fault, StoreError)


# -- satellite: fsync_path propagates directory-fsync failures ----------------


def test_fsync_path_propagates_directory_fsync_errors(tmp_path):
    directory = tmp_path / "store"
    directory.mkdir()
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - Windows
        pytest.skip("no O_DIRECTORY on this platform")
    with fs_zone(FsFaultPlan(fail_at=0, flavor="fsync")):
        with pytest.raises(DiskFaultError):
            fsync_path(str(directory))
    fsync_path(str(directory))  # clean outside the zone


# -- store recovery -----------------------------------------------------------


@pytest.mark.parametrize("factory", [FileStore, PackStore], ids=["file", "pack"])
def test_enospc_append_is_unacked_and_retried(tmp_path, factory):
    store = factory(str(tmp_path / "chunks"))
    store.put(_chunk(b"before"))
    with fs_zone(FsFaultPlan(fail_at=0, flavor="enospc")) as shim:
        # The bounded ENOSPC retry absorbs a single targeted fault: the
        # second attempt lands on a fresh boundary index and succeeds.
        assert store.put(_chunk(b"squeezed"))
        assert shim.injected and shim.injected[0].fault == "enospc"
    assert not store.poisoned
    assert store.get(_chunk(b"squeezed").uid).data == _chunk(b"squeezed").data
    store.close()
    reopened = factory(str(tmp_path / "chunks"))
    assert reopened.has(_chunk(b"before").uid)
    assert reopened.has(_chunk(b"squeezed").uid)
    reopened.close()


@pytest.mark.parametrize("factory", [FileStore, PackStore], ids=["file", "pack"])
def test_fsync_failure_recovers_via_fresh_descriptor(tmp_path, factory):
    store = factory(str(tmp_path / "chunks"))
    chunks = [_chunk(bytes([n])) for n in range(4)]
    # put_many crosses one write boundary per chunk, then one fsync.
    with fs_zone(FsFaultPlan(fail_at=len(chunks), flavor="fsync")) as shim:
        assert store.put_many(chunks) == len(chunks)
    assert shim.dropped_bytes > 0  # the fsyncgate simulation really fired
    assert shim.false_fsyncs == 0  # and the store never re-fsynced the fd
    assert not store.poisoned
    store.close()
    reopened = factory(str(tmp_path / "chunks"))
    for chunk in chunks:
        assert reopened.get(chunk.uid).data == chunk.data
    reopened.close()


@pytest.mark.parametrize("factory", [FileStore, PackStore], ids=["file", "pack"])
def test_unrecoverable_fsync_poisons_writer(tmp_path, factory):
    seeded = factory(str(tmp_path / "chunks"))
    seeded.put(_chunk(b"acked"))
    seeded.close()  # close() fsyncs: the acked chunk is now durable
    store = factory(str(tmp_path / "chunks"))
    chunks = [_chunk(bytes([n])) for n in range(3)]
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)) as shim:
        with pytest.raises(DiskFaultError):
            store.put_many(chunks)
        assert store.poisoned
        # Poisoned writer refuses further appends...
        with pytest.raises(DiskFaultError):
            store.put(_chunk(b"late"))
        # ...and close() degrades to abandon() rather than pretending.
        store.close()
    assert shim.false_fsyncs == 0
    reopened = factory(str(tmp_path / "chunks"))
    assert reopened.has(_chunk(b"acked").uid)
    # The un-acked batch must not have been indexed as durable state.
    for chunk in chunks:
        assert not reopened.has(chunk.uid)
    reopened.close()


# -- journal recovery ---------------------------------------------------------


def test_journal_enospc_append_unacked_then_absorbed(tmp_path):
    journal = CommitJournal(str(tmp_path / "journal.wal"), fsync="never")
    journal.append({"op": "set-head", "seq": 1})
    size_before = journal.size()
    with fs_zone(FsFaultPlan(fail_at=0, flavor="short")):
        journal.append({"op": "set-head", "seq": 2})  # retry absorbs it
    assert journal.size() > size_before
    assert len(journal) == 2
    journal.close()
    replayed = CommitJournal(str(tmp_path / "journal.wal"), fsync="never")
    assert [record["seq"] for record in replayed.records] == [1, 2]
    replayed.close()


def test_journal_fsync_failure_recovers_tail(tmp_path):
    journal = CommitJournal(str(tmp_path / "journal.wal"), fsync="always")
    journal.append({"op": "set-head", "seq": 1})
    with fs_zone(FsFaultPlan(fail_at=1, flavor="fsync")) as shim:
        # boundary 0 is the record write; boundary 1 the policy fsync.
        journal.append({"op": "set-head", "seq": 2})
    assert shim.false_fsyncs == 0
    assert not journal.poisoned
    journal.close()
    replayed = CommitJournal(str(tmp_path / "journal.wal"))
    assert [record["seq"] for record in replayed.records] == [1, 2]
    replayed.close()


def test_journal_poisons_after_unrecoverable_fsync(tmp_path):
    journal = CommitJournal(str(tmp_path / "journal.wal"), fsync="always")
    journal.append({"op": "set-head", "seq": 1})
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)) as shim:
        with pytest.raises(DiskFaultError):
            journal.append({"op": "set-head", "seq": 2})
        assert journal.poisoned
        with pytest.raises(DiskFaultError):
            journal.append({"op": "set-head", "seq": 3})
        journal.close()  # a poisoned journal closes without flushing
    assert shim.false_fsyncs == 0
    # The un-acked record was un-acked in memory too, and replay agrees.
    replayed = CommitJournal(str(tmp_path / "journal.wal"))
    assert [record["seq"] for record in replayed.records] == [1]
    replayed.close()


# -- satellite: lock acquisition must not mask disk faults --------------------


def test_lock_contention_still_raises_engine_locked(tmp_path):
    first = ForkBase.open(str(tmp_path / "db"))
    try:
        with pytest.raises(EngineLockedError):
            ForkBase.open(str(tmp_path / "db"))
    finally:
        first.close()


def test_lock_disk_fault_is_not_reported_as_contention(tmp_path, monkeypatch):
    fcntl = pytest.importorskip("fcntl")

    def broken_flock(fd, op):
        raise OSError(errno.EIO, "injected: flock failed")

    monkeypatch.setattr(fcntl, "flock", broken_flock)
    with pytest.raises(DiskFaultError):
        ForkBase.open(str(tmp_path / "db"))


# -- engine health machine ----------------------------------------------------


def _open_engine(tmp_path, **kwargs):
    engine = ForkBase.open(str(tmp_path / "db"), fsync="always", **kwargs)
    return engine


def test_engine_health_starts_healthy(tmp_path):
    engine = _open_engine(tmp_path)
    report = engine.health()
    assert report.state == HEALTH_HEALTHY
    assert report.writable
    assert report.reason is None
    engine.close()


def test_disk_fault_degrades_to_read_only(tmp_path):
    engine = _open_engine(tmp_path)
    engine.put("doc", {"a": "1"})
    baseline = engine.get_value("doc")
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)):
        with pytest.raises(DiskFaultError):
            engine.put("doc", {"a": "2"})
    report = engine.health()
    assert report.state == HEALTH_DEGRADED
    assert not report.writable
    assert report.reason
    # Reads, verification, and scrubbing still serve...
    assert engine.get_value("doc") == baseline
    assert engine.verify("doc").ok
    assert engine.scrub().healthy
    # ...while every mutating verb refuses with ReadOnlyError.
    with pytest.raises(ReadOnlyError) as excinfo:
        engine.put("doc", {"a": "3"})
    assert excinfo.value.state == HEALTH_DEGRADED
    with pytest.raises(ReadOnlyError):
        engine.branch("doc", "dev")
    with pytest.raises(ReadOnlyError):
        engine.drop("doc")
    with pytest.raises(ReadOnlyError):
        engine.collect_garbage()
    engine.close()  # degraded close abandons instead of snapshotting


def test_degraded_write_is_cleanly_unacked(tmp_path):
    engine = _open_engine(tmp_path)
    engine.put("doc", {"a": "1"})
    head_before = engine.head("doc")
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)):
        with pytest.raises(DiskFaultError):
            engine.put("doc", {"a": "2"})
    # The failed put rolled the in-memory head back: un-acked means the
    # engine never claims the version existed.
    assert engine.head("doc") == head_before
    engine.close()


def test_reopen_recovers_from_degraded_state(tmp_path):
    engine = _open_engine(tmp_path)
    engine.put("doc", {"a": "1"})
    acked_head = engine.head("doc")
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)):
        with pytest.raises(DiskFaultError):
            engine.put("doc", {"a": "2"})
    engine.close()
    recovered = ForkBase.open(str(tmp_path / "db"))
    assert recovered.health().state == HEALTH_HEALTHY
    assert recovered.head("doc") == acked_head
    assert recovered.verify("doc").ok
    # Writes work again on the fresh engine.
    recovered.put("doc", {"a": "3"})
    recovered.close()


def test_read_fault_while_degraded_fails_engine(tmp_path):
    engine = _open_engine(tmp_path)
    engine.put("doc", {"a": "1", "pad": "x" * 64})
    with fs_zone(FsFaultPlan(fsync_fail_rate=1.0)):
        with pytest.raises(DiskFaultError):
            engine.put("doc", {"a": "2"})
    assert engine.health().state == HEALTH_DEGRADED
    engine.retry = None
    engine.self_heal = False
    with fs_zone(FsFaultPlan(eio_read_rate=1.0)):
        with pytest.raises(DiskFaultError):
            engine.get_value("doc")
    assert engine.health().state == HEALTH_FAILED
    with pytest.raises(ReadOnlyError) as excinfo:
        engine.put("doc", {"a": "3"})
    assert excinfo.value.state == HEALTH_FAILED
    engine.close()


def test_enospc_leaves_engine_healthy(tmp_path):
    engine = _open_engine(tmp_path)
    engine.put("doc", {"a": "1"})
    with fs_zone(FsFaultPlan(fail_at=0, flavor="enospc")):
        engine.put("doc", {"a": "2"})  # absorbed by the bounded retry
    assert engine.health().state == HEALTH_HEALTHY
    assert engine.get_value("doc") == {b"a": b"2"}
    engine.close()


def test_targeted_flavors_cover_every_syscall():
    assert set(TARGETED_FLAVORS) == {"write", "fsync", "read", "replace"}
    shim = FaultyOS(FsFaultPlan())
    assert shim.count == 0
