"""Tests for the API surfaces: REST router, CLI, diff renderers."""

import json

import pytest

from repro.api.cli import main as cli_main
from repro.api.diffview import render_diff_html, render_diff_text, render_history_text
from repro.api.rest import Router
from repro.db import ForkBase
from repro.table import DataTable


@pytest.fixture
def router(engine):
    engine.put("config", {"mode": "fast", "level": "3"})
    return Router(engine)


class TestRestRouter:
    def test_list_keys(self, router):
        response = router.request("GET", "/v1/keys")
        assert response.ok
        assert response.body["keys"] == ["config"]

    def test_get_object(self, router):
        response = router.request("GET", "/v1/obj/config")
        assert response.ok
        assert response.body["value"] == {"mode": "fast", "level": "3"}
        assert response.body["type"] == "map"
        assert len(response.body["version"]) == 52

    def test_put_creates_version(self, router):
        response = router.request(
            "PUT", "/v1/obj/config", body={"value": {"mode": "slow"}, "message": "m"}
        )
        assert response.status == 201
        assert router.request("GET", "/v1/obj/config").body["value"] == {"mode": "slow"}

    def test_put_requires_value(self, router):
        assert router.request("PUT", "/v1/obj/config", body={}).status == 400

    def test_get_by_version(self, router):
        v1 = router.request("GET", "/v1/obj/config").body["version"]
        router.request("PUT", "/v1/obj/config", body={"value": {"mode": "new"}})
        response = router.request("GET", "/v1/obj/config", params={"version": v1})
        assert response.body["value"]["mode"] == "fast"

    def test_meta_and_history(self, router):
        router.request("PUT", "/v1/obj/config", body={"value": {"mode": "x"}})
        meta = router.request("GET", "/v1/obj/config/meta")
        assert meta.ok and meta.body["meta"]["type"] == "map"
        history = router.request("GET", "/v1/obj/config/history")
        assert len(history.body["versions"]) == 2
        limited = router.request(
            "GET", "/v1/obj/config/history", params={"limit": "1"}
        )
        assert len(limited.body["versions"]) == 1

    def test_branch_lifecycle(self, router):
        create = router.request(
            "POST", "/v1/obj/config/branches", body={"name": "dev"}
        )
        assert create.status == 201
        listed = router.request("GET", "/v1/obj/config/branches")
        assert listed.body["branches"] == ["master", "dev"]
        deleted = router.request("DELETE", "/v1/obj/config/branches/dev")
        assert deleted.ok

    def test_diff_and_merge(self, router):
        router.request("POST", "/v1/obj/config/branches", body={"name": "dev"})
        router.request(
            "PUT", "/v1/obj/config",
            params={"branch": "dev"},
            body={"value": {"mode": "fast", "level": "9"}},
        )
        diff = router.request(
            "GET", "/v1/obj/config/diff", params={"from": "master", "to": "dev"}
        )
        assert diff.body["changed"] == {"level": ["3", "9"]}
        merge = router.request(
            "POST", "/v1/obj/config/merge", body={"from_branch": "dev"}
        )
        assert merge.ok
        assert router.request("GET", "/v1/obj/config").body["value"]["level"] == "9"

    def test_merge_conflict_409(self, router):
        router.request("POST", "/v1/obj/config/branches", body={"name": "dev"})
        router.request("PUT", "/v1/obj/config", body={"value": {"mode": "a"}})
        router.request(
            "PUT", "/v1/obj/config", params={"branch": "dev"}, body={"value": {"mode": "b"}}
        )
        conflict = router.request(
            "POST", "/v1/obj/config/merge", body={"from_branch": "dev"}
        )
        assert conflict.status == 409
        resolved = router.request(
            "POST",
            "/v1/obj/config/merge",
            body={"from_branch": "dev", "strategy": "theirs"},
        )
        assert resolved.ok

    def test_verify_route(self, router):
        response = router.request("GET", "/v1/obj/config/verify")
        assert response.ok and response.body["valid"]

    def test_missing_key_404(self, router):
        assert router.request("GET", "/v1/obj/ghost").status == 404

    def test_unknown_route_404(self, router):
        assert router.request("GET", "/v1/nope").status == 404
        assert router.request("GET", "/v2/keys").status == 404

    def test_diff_requires_to(self, router):
        assert router.request("GET", "/v1/obj/config/diff").status == 400

    def test_bad_merge_strategy(self, router):
        router.request("POST", "/v1/obj/config/branches", body={"name": "dev"})
        response = router.request(
            "POST", "/v1/obj/config/merge",
            body={"from_branch": "dev", "strategy": "coin-flip"},
        )
        assert response.status == 400


class TestCli:
    def _run(self, tmp_path, capsys, *argv):
        code = cli_main(["--data-dir", str(tmp_path / "db"), *argv])
        captured = capsys.readouterr()
        return code, captured.out

    def test_put_get_list(self, tmp_path, capsys):
        code, out = self._run(tmp_path, capsys, "put", "k", "--json", '{"a": "1"}')
        assert code == 0 and "k@master" in out
        code, out = self._run(tmp_path, capsys, "get", "k")
        assert code == 0 and json.loads(out) == {"a": "1"}
        code, out = self._run(tmp_path, capsys, "list")
        assert out.strip() == "k"

    def test_string_and_blob_values(self, tmp_path, capsys):
        code, _ = self._run(tmp_path, capsys, "put", "s", "--string", "hello")
        assert code == 0
        code, out = self._run(tmp_path, capsys, "get", "s")
        assert json.loads(out) == "hello"

    def test_branch_diff_merge_flow(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "k", "--json", '{"a": "1", "b": "2"}')
        code, out = self._run(tmp_path, capsys, "branch", "k", "dev")
        assert code == 0 and "created dev" in out
        self._run(
            tmp_path, capsys, "put", "k", "--json", '{"a": "1", "b": "9"}',
            "--branch", "dev",
        )
        code, out = self._run(tmp_path, capsys, "diff", "k", "master", "dev")
        assert code == 0 and "~ b'b'" in out
        code, out = self._run(tmp_path, capsys, "merge", "k", "dev")
        assert code == 0
        code, out = self._run(tmp_path, capsys, "get", "k")
        assert json.loads(out)["b"] == "9"

    def test_history_and_head(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "k", "--json", '"v1"', "-m", "first")
        self._run(tmp_path, capsys, "put", "k", "--json", '"v2"', "-m", "second")
        code, out = self._run(tmp_path, capsys, "history", "k")
        assert out.count("version ") == 2 and "second" in out
        code, out = self._run(tmp_path, capsys, "head", "k")
        assert len(out.strip()) == 52

    def test_csv_flow(self, tmp_path, capsys):
        csv_path = tmp_path / "data.csv"
        csv_path.write_text("id,name\n1,apple\n2,banana\n", encoding="utf-8")
        code, out = self._run(
            tmp_path, capsys, "load-csv", "fruits", str(csv_path), "--pk", "id"
        )
        assert code == 0 and "loaded 2 rows" in out
        code, out = self._run(tmp_path, capsys, "export", "fruits")
        assert "banana" in out
        code, out = self._run(
            tmp_path, capsys, "select", "fruits", "--where", "name=apple"
        )
        assert json.loads(out.strip()) == {"id": "1", "name": "apple"}
        code, out = self._run(tmp_path, capsys, "stat", "fruits", "id")
        assert json.loads(out)["numeric"] is True

    def test_verify_command(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "k", "--json", '"v"')
        code, out = self._run(tmp_path, capsys, "verify", "k")
        assert code == 0 and "VALID" in out

    def test_error_exit_code(self, tmp_path, capsys):
        code = cli_main(["--data-dir", str(tmp_path / "db"), "get", "ghost"])
        assert code == 1

    def test_merge_conflict_exit_code(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "k", "--json", '"base"')
        self._run(tmp_path, capsys, "branch", "k", "dev")
        self._run(tmp_path, capsys, "put", "k", "--json", '"left"')
        self._run(tmp_path, capsys, "put", "k", "--json", '"right"', "--branch", "dev")
        code = cli_main(["--data-dir", str(tmp_path / "db"), "merge", "k", "dev"])
        assert code == 2


class TestDiffRenderers:
    @pytest.fixture
    def table_diff(self, engine):
        csv = "id,name,qty\n1,apple,10\n2,banana,20\n"
        table, _ = DataTable.load_csv(engine, "ds", csv, primary_key="id")
        table.branch("dev")
        table.update_cells("1", {"qty": "11"}, branch="dev")
        table.upsert_rows([{"id": "3", "name": "cherry", "qty": "30"}], branch="dev")
        table.delete_rows(["2"], branch="dev")
        return table.diff("master", "dev")

    def test_text_rendering(self, table_diff):
        text = render_diff_text(table_diff, "ds")
        assert "+1 -1 ~1" in text
        assert "+ 3" in text and "- 2" in text and "~ 1" in text
        assert "'10' -> '11'" in text

    def test_html_rendering(self, table_diff):
        html = render_diff_html(table_diff, "ds")
        assert html.startswith("<!DOCTYPE html>")
        assert "cherry" in html
        assert "class='old'" in html and "class='new'" in html

    def test_html_escapes(self, engine):
        csv = 'id,note\n1,"<script>alert(1)</script>"\n'
        table, _ = DataTable.load_csv(engine, "x", csv, primary_key="id")
        table.branch("dev")
        table.update_cells("1", {"note": "<b>safe</b>"}, branch="dev")
        html = render_diff_html(table.diff("master", "dev"), "x")
        assert "<script>" not in html

    def test_history_rendering(self, engine):
        engine.put("k", "v1", message="first")
        engine.put("k", "v2", message="second")
        text = render_history_text(engine.history("k"))
        assert text.count("version ") == 2
        assert "second" in text and "first" in text


class TestCliExtensions:
    def _run(self, tmp_path, capsys, *argv):
        code = cli_main(["--data-dir", str(tmp_path / "db"), *argv])
        captured = capsys.readouterr()
        return code, captured.out

    def test_diff_datasets_command(self, tmp_path, capsys):
        csv_path = tmp_path / "a.csv"
        csv_path.write_text("id,name\n1,apple\n2,banana\n", encoding="utf-8")
        csv_path_2 = tmp_path / "b.csv"
        csv_path_2.write_text("id,name\n1,apple\n2,cherry\n", encoding="utf-8")
        self._run(tmp_path, capsys, "load-csv", "d1", str(csv_path), "--pk", "id")
        self._run(tmp_path, capsys, "load-csv", "d2", str(csv_path_2), "--pk", "id")
        code, out = self._run(tmp_path, capsys, "diff-datasets", "d1", "d2")
        assert code == 0
        assert "~ 2" in out and "'banana' -> 'cherry'" in out

    def test_gc_dry_run(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "keep", "--json", '"v"')
        self._run(tmp_path, capsys, "put", "drop", "--json", '"x"')
        code, out = self._run(tmp_path, capsys, "rename-branch", "drop", "master", "gone")
        # deleting the only branch drops the key entirely
        eng_dir = str(tmp_path / "db")
        from repro.db import ForkBase
        with ForkBase.open(eng_dir) as engine:
            engine.delete_branch("drop", "gone")
        code, out = self._run(tmp_path, capsys, "gc", "--dry-run")
        assert code == 0 and "reclaimable=" in out and "[dry run]" in out

    def test_gc_preserves_pack_layout(self, tmp_path, capsys):
        # Regression: gc used to compact every durable backend into a
        # FileStore layout, silently converting a pack DB on sweep.
        eng_dir = str(tmp_path / "db")
        from repro.db import ForkBase
        from repro.store.packstore import PackStore
        with ForkBase.open(eng_dir, backend="pack") as engine:
            engine.put("keep", {"a": "1"})
            engine.put("drop", {"big": "x"})
            engine.delete_branch("drop", "master")
        code, out = self._run(tmp_path, capsys, "gc")
        assert code == 0 and "[compacted]" in out
        assert (tmp_path / "db" / "chunks" / "packs").is_dir()
        with ForkBase.open(eng_dir) as engine:
            assert isinstance(engine.store, PackStore)
        code, out = self._run(tmp_path, capsys, "get", "keep")
        assert code == 0 and json.loads(out) == {"a": "1"}
        code, _ = self._run(tmp_path, capsys, "verify", "keep")
        assert code == 0

    def test_gc_compacts_file_store(self, tmp_path, capsys):
        self._run(tmp_path, capsys, "put", "keep", "--json", '{"a": "1"}')
        self._run(tmp_path, capsys, "put", "drop", "--json", '{"big": "x"}')
        eng_dir = str(tmp_path / "db")
        from repro.db import ForkBase
        with ForkBase.open(eng_dir) as engine:
            engine.delete_branch("drop", "master")
        code, out = self._run(tmp_path, capsys, "gc")
        assert code == 0 and "[compacted]" in out
        # Data still served after compaction.
        code, out = self._run(tmp_path, capsys, "get", "keep")
        assert code == 0 and json.loads(out) == {"a": "1"}
        code, _ = self._run(tmp_path, capsys, "verify", "keep")
        assert code == 0
