"""Property test: PackStore is observationally identical to InMemoryStore.

Any sequence of put / put_many / delete / gc-style sweep applied to both
stores must leave identical uid sets and bit-identical chunk bytes —
with compression on and off, and across a close/reopen of the pack.  This
is the drop-in guarantee the backend selection in ``ForkBase.open`` rests
on: nothing above the chunk layer can tell the backends apart.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chunk import Chunk, ChunkType
from repro.store import InMemoryStore, PackStore

_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: (op, payload-seed) programs.  Deletes reference previously-put chunks
#: by index so they usually hit.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(min_size=0, max_size=120)),
        st.tuples(
            st.just("put_many"),
            st.lists(st.binary(min_size=0, max_size=60), min_size=0, max_size=8),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=40)),
    ),
    max_size=40,
)


def _chunk(payload: bytes) -> Chunk:
    return Chunk(ChunkType.BLOB, payload)


def _apply(store, program: List[Tuple[str, object]]) -> None:
    seen: List[Chunk] = []
    for op, arg in program:
        if op == "put":
            chunk = _chunk(arg)  # type: ignore[arg-type]
            store.put(chunk)
            seen.append(chunk)
        elif op == "put_many":
            chunks = [_chunk(payload) for payload in arg]  # type: ignore[union-attr]
            store.put_many(chunks)
            seen.extend(chunks)
        else:  # delete
            if seen:
                store.delete(seen[arg % len(seen)].uid)  # type: ignore[operator]


def _observe(store) -> dict:
    return {uid.digest: store.get(uid).data for uid in store.ids()}


@pytest.mark.parametrize("compression", ["none", "zlib", "auto"])
@given(program=ops_strategy)
@_settings
def test_packstore_matches_memory_model(tmp_path_factory, compression, program):
    reference = InMemoryStore()
    _apply(reference, program)

    directory = str(tmp_path_factory.mktemp("prop") / "ps")
    pack = PackStore(directory, segment_limit=1024, compression=compression)
    _apply(pack, program)

    assert _observe(pack) == _observe(reference)
    assert len(pack) == len(reference)

    # The equivalence survives compaction and a full close/reopen cycle.
    pack.compact_segments()
    assert _observe(pack) == _observe(reference)
    pack.close()
    reopened = PackStore(directory)
    assert _observe(reopened) == _observe(reference)
    reopened.close()
