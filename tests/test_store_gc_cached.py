"""Deeper coverage for repro.store.gc and repro.store.cached.

Three scenarios the basic suites skip: sweeping with live roots explicitly
pinned (version archival on top of GC), cache accounting when the backing
store verifies every read, and cache coherence across deletes.
"""

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.cluster import ClusterStore
from repro.db import ForkBase
from repro.errors import ChunkCorruptionError, ChunkNotFoundError
from repro.faults import flip_at
from repro.store import CachedStore, InMemoryStore, NodeCacheStore
from repro.store.gc import collect_garbage, mark_live


def _chunk(payload: bytes) -> Chunk:
    return Chunk(ChunkType.BLOB, payload)


class TestSweepWithPinnedRoots:
    def test_pinned_version_survives_then_dies_unpinned(self):
        """A pinned unreachable head keeps its whole subtree alive; dropping
        the pin makes the next sweep reclaim it."""
        engine = ForkBase(clock=lambda: 0.0)
        engine.put("keep", {f"k{i:03d}": "v" for i in range(200)})
        engine.put("doomed", {f"d{i:03d}": "x" * 40 for i in range(200)})
        pinned_head = engine.head("doomed")
        pinned_set = mark_live(engine.store, [pinned_head])
        engine.delete_branch("doomed", "master")

        collect_garbage(engine, extra_roots=[pinned_head])
        # Every chunk of the pinned version is still present.
        for uid in pinned_set:
            assert engine.store.has(uid)

        report = collect_garbage(engine)  # pin dropped
        assert report.swept_chunks > 0
        assert not engine.store.has(pinned_head)
        # The live branch never noticed either sweep.
        assert engine.get_value("keep")[b"k000"] == b"v"

    def test_post_sweep_store_is_exactly_the_live_set(self):
        engine = ForkBase(clock=lambda: 0.0)
        engine.put("keep", {f"k{i:03d}": "v" for i in range(300)})
        engine.put("doomed", {f"d{i:03d}": "y" * 30 for i in range(300)})
        engine.delete_branch("doomed", "master")
        collect_garbage(engine)
        heads = [head for _, _, head in engine.branch_table.all_heads()]
        live = mark_live(engine.store, heads)
        assert set(engine.store.ids()) == live

    def test_report_accounting_matches_physical_sizes(self):
        engine = ForkBase(clock=lambda: 0.0)
        engine.put("keep", {f"k{i:03d}": "v" for i in range(100)})
        engine.put("doomed", {f"d{i:03d}": "z" * 20 for i in range(100)})
        engine.delete_branch("doomed", "master")
        before = engine.store.physical_size()
        dry = collect_garbage(engine, dry_run=True)
        assert dry.live_bytes + dry.swept_bytes == before

        wet = collect_garbage(engine)
        assert (wet.live_chunks, wet.swept_chunks) == (dry.live_chunks, dry.swept_chunks)
        assert engine.store.physical_size() == dry.live_bytes
        assert collect_garbage(engine, dry_run=True).swept_chunks == 0


class TestCachedStoreVerifyReads:
    def test_corrupt_backing_chunk_caught_through_cache(self):
        backing = InMemoryStore(verify_reads=True)
        cache = CachedStore(backing, capacity=4)
        bad = Chunk(ChunkType.BLOB, b"evil", uid=Uid.of(b"claimed"))
        backing._insert(bad)
        with pytest.raises(ChunkCorruptionError):
            cache.get(bad.uid)
        # The corrupt chunk must not have been cached by the failed read.
        with pytest.raises(ChunkCorruptionError):
            cache.get(bad.uid)

    def test_eviction_accounting_is_exact(self):
        backing = InMemoryStore(verify_reads=True)
        cache = CachedStore(backing, capacity=2)
        a, b, c = _chunk(b"a"), _chunk(b"b"), _chunk(b"c")
        for chunk in (a, b, c):  # puts warm the cache; c evicts a (LRU)
            cache.put(chunk)
        assert len(cache._cache) == 2

        assert cache.get(b.uid).data == b"b"  # hit
        assert cache.get(a.uid).data == b"a"  # miss: refetched, evicts c
        assert cache.get(c.uid).data == b"c"  # miss again
        assert (cache.lookups, cache.hits) == (3, 1)
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_hits_are_not_reverified(self):
        """A cache hit serves the already-verified decoded chunk; only
        backing reads pay the verification hash."""
        backing = InMemoryStore(verify_reads=True)
        cache = CachedStore(backing, capacity=4)
        chunk = _chunk(b"payload")
        backing.put(chunk)

        assert cache.get(chunk.uid).data == b"payload"  # verified fetch
        # Corrupt the backing copy in place; the cached entry still serves.
        backing._chunks[chunk.uid] = Chunk(ChunkType.BLOB, b"tampered", uid=chunk.uid)
        assert cache.get(chunk.uid).data == b"payload"
        assert cache.hits == 1


class TestDeleteWhileCached:
    def test_delete_through_wrapper_drops_cache_entry(self):
        backing = InMemoryStore()
        cache = CachedStore(backing, capacity=4)
        chunk = _chunk(b"gone")
        cache.put(chunk)
        assert cache.get(chunk.uid).data == b"gone"  # now cached

        assert cache.delete(chunk.uid) is True
        assert not cache.has(chunk.uid)
        assert cache.get_maybe(chunk.uid) is None
        with pytest.raises(ChunkNotFoundError):
            cache.get(chunk.uid)

    def test_backing_delete_then_wrapper_delete_is_coherent(self):
        backing = InMemoryStore()
        cache = CachedStore(backing, capacity=4)
        chunk = _chunk(b"stale")
        cache.put(chunk)
        cache.get(chunk.uid)

        backing.delete(chunk.uid)  # out-of-band delete: cache is now stale
        assert cache.delete(chunk.uid) is False  # backing already empty...
        assert cache.get_maybe(chunk.uid) is None  # ...but the entry is gone

    def test_reinsert_after_delete_serves_fresh_chunk(self):
        backing = InMemoryStore()
        cache = CachedStore(backing, capacity=4)
        chunk = _chunk(b"again")
        cache.put(chunk)
        cache.delete(chunk.uid)
        cache.put(chunk)
        assert cache.get(chunk.uid).data == b"again"
        assert backing.has(chunk.uid)


class TestSweepInvalidationBus:
    """GC and quarantine resync delete *around* cache wrappers; the
    physical store's sweep bus must keep every subscribed cache coherent."""

    def test_gc_then_cached_descent_misses_swept_chunks(self):
        backing = InMemoryStore()
        engine = ForkBase(store=backing, clock=lambda: 0.0)
        engine.put("keep", {f"k{i:03d}": "v" for i in range(100)})
        engine.put("doomed", {f"d{i:03d}": "x" * 40 for i in range(200)})
        doomed_head = engine.head("doomed")
        doomed_only = mark_live(backing, [doomed_head]) - mark_live(
            backing, [engine.head("keep")]
        )
        # Two independent cached readers over the same physical store,
        # both warmed with the doomed subtree before the sweep.
        raw_cache = CachedStore(backing, capacity=4096)
        node_cache = NodeCacheStore(backing, capacity=4096)
        for uid in doomed_only:
            assert raw_cache.get(uid) is not None
        node_cache.get_node(doomed_head)
        assert any(uid in raw_cache._cache for uid in doomed_only)
        assert doomed_head in node_cache._nodes

        engine.delete_branch("doomed", "master")
        report = collect_garbage(engine)
        assert report.swept_chunks > 0
        # The sweep fanned out: neither cache may serve a chunk the
        # physical layer no longer holds.
        for uid in doomed_only:
            if not backing.has(uid):
                assert raw_cache.get_maybe(uid) is None
        assert not backing.has(doomed_head)
        assert doomed_head not in node_cache._nodes
        with pytest.raises(ChunkNotFoundError):
            node_cache.get_node(doomed_head)
        # The live branch's descent is untouched.
        assert engine.get_value("keep")[b"k000"] == b"v"

    def test_quarantine_resync_invalidates_shared_cache(self):
        cluster = ClusterStore(node_count=3, replication=2)
        cache = CachedStore(cluster, capacity=64)
        chunks = [_chunk(b"resync-%d" % n) for n in range(30)]
        cluster.put_many(chunks)
        victim = "node-01"
        node = cluster.nodes[victim]
        held = [c for c in chunks if node.store.has(c.uid)][:4]
        assert held
        for chunk in held:  # warm the shared cache through the cluster
            assert cache.get(chunk.uid).data == chunk.data
        for chunk in held:  # the node's copies rot while it is quarantined
            node.store.delete(chunk.uid)
            node.store._insert(
                Chunk(chunk.type, flip_at(chunk.data, 0), uid=chunk.uid)
            )
        board = cluster.accountability
        board.record_strike("t", victim, held[0].uid, op="get", kind="audit-mismatch")
        board.record_strike("t", victim, held[1].uid, op="get", kind="audit-mismatch")
        assert board.is_quarantined(victim)

        dropped = cluster.readmit(victim)
        assert dropped == len(held)
        for chunk in held:
            # The resync's drops were broadcast: no stale entries survive,
            # and a re-read refetches the repaired copy through the cluster.
            assert chunk.uid not in cache._cache
            assert cache.get(chunk.uid).data == chunk.data
