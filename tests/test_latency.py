"""Unit tests for the gray-failure building blocks.

:class:`~repro.cluster.latency.LatencyStats` /
:class:`~repro.cluster.latency.LatencyTracker` (EWMA + windowed
quantiles on an injected logical clock),
:class:`~repro.cluster.latency.Deadline` (tick budgets), the
:class:`~repro.cluster.breaker.CircuitBreaker` state machine, and the
deadline-aware :meth:`~repro.faults.retry.RetryPolicy.call`.
"""

import pytest

from repro.cluster import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    LatencyStats,
    LatencyTracker,
    LogicalClock,
)
from repro.errors import DeadlineExceededError, TransientError, TransientStoreError
from repro.faults import RetryPolicy


class TestLatencyStats:
    def test_ewma_initialises_to_first_sample(self):
        stats = LatencyStats(alpha=0.5)
        stats.observe(10)
        assert stats.ewma == 10.0
        stats.observe(20)
        assert stats.ewma == 15.0

    def test_quantiles_over_window(self):
        stats = LatencyStats(window=100)
        for ticks in range(1, 101):
            stats.observe(ticks)
        assert stats.quantile(0.0) == 1
        assert stats.quantile(0.5) == 51
        assert stats.quantile(0.95) == 96
        assert stats.quantile(1.0) == 100

    def test_window_evicts_oldest(self):
        stats = LatencyStats(window=4)
        for ticks in (100, 100, 100, 100, 1, 1, 1, 1):
            stats.observe(ticks)
        assert stats.quantile(1.0) == 1  # the 100s have been pushed out
        assert stats.count == 8  # but the lifetime count remembers them

    def test_empty_quantile_is_none(self):
        assert LatencyStats().quantile(0.95) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyStats(alpha=0.0)
        with pytest.raises(ValueError):
            LatencyStats(window=0)
        with pytest.raises(ValueError):
            LatencyStats().observe(-1)
        with pytest.raises(ValueError):
            LatencyStats().quantile(1.5)

    def test_snapshot_is_jsonable(self):
        stats = LatencyStats()
        stats.observe(3)
        snap = stats.snapshot()
        assert snap["count"] == 1 and snap["p95"] == 3

    def test_deterministic_replay(self):
        def run():
            stats = LatencyStats(alpha=0.3, window=16)
            for ticks in [5, 80, 2, 2, 41, 3, 3, 99, 1]:
                stats.observe(ticks)
            return (stats.ewma, stats.quantile(0.5), stats.quantile(0.99))

        assert run() == run()


class TestLatencyTracker:
    def test_streams_are_independent(self):
        tracker = LatencyTracker()
        tracker.observe("a", "node-00", "get", 5)
        tracker.observe("a", "node-01", "get", 50)
        assert tracker.ewma("a", "node-00", "get") == 5.0
        assert tracker.ewma("a", "node-01", "get") == 50.0
        assert tracker.ewma("b", "node-00", "get") is None
        assert tracker.samples("a", "node-00", "get") == 1

    def test_hedge_threshold_needs_min_samples(self):
        tracker = LatencyTracker()
        for _ in range(7):
            tracker.observe("a", "n", "get", 2)
        assert tracker.hedge_threshold("a", "n", "get", min_samples=8) is None
        tracker.observe("a", "n", "get", 2)
        assert tracker.hedge_threshold("a", "n", "get", min_samples=8) == 2

    def test_snapshot_keys(self):
        tracker = LatencyTracker()
        tracker.observe("a", "n", "get", 1)
        assert "a->n:get" in tracker.snapshot()

    def test_uses_injected_clock(self):
        clock = LogicalClock(start=7)
        tracker = LatencyTracker(clock=clock)
        assert tracker.clock.now() == 7


class TestDeadline:
    def test_budget_elapses_on_the_clock(self):
        clock = LogicalClock()
        deadline = Deadline(10, clock.now)
        assert deadline.remaining() == 10 and not deadline.expired()
        clock.advance(4)
        assert deadline.remaining() == 6 and deadline.elapsed() == 4
        clock.advance(100)
        assert deadline.remaining() == 0 and deadline.expired()

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0, LogicalClock().now)


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, cooldown=10):
        return CircuitBreaker(threshold, cooldown, clock.now)

    def test_opens_after_consecutive_failures(self):
        clock = LogicalClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.state == CLOSED
        breaker.record(ok=False)
        assert breaker.state == OPEN and breaker.opens == 1

    def test_success_resets_the_strike_count(self):
        clock = LogicalClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record(ok=False)
        breaker.record(ok=True)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        clock = LogicalClock()
        breaker = self._breaker(clock, cooldown=10)
        for _ in range(3):
            breaker.record(ok=False)
        assert not breaker.begin_attempt()  # still cooling down
        clock.advance(10)
        assert breaker.begin_attempt()  # the half-open probe
        assert breaker.state == HALF_OPEN and breaker.probes == 1

    def test_probe_success_snaps_closed(self):
        clock = LogicalClock()
        breaker = self._breaker(clock, cooldown=5)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(5)
        assert breaker.begin_attempt()
        breaker.record(ok=True)
        assert breaker.state == CLOSED and breaker.snap_backs == 1

    def test_probe_failure_restarts_cooldown(self):
        clock = LogicalClock()
        breaker = self._breaker(clock, cooldown=5)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(5)
        assert breaker.begin_attempt()
        breaker.record(ok=False)
        assert breaker.state == OPEN
        assert not breaker.begin_attempt()
        clock.advance(5)
        assert breaker.begin_attempt()


class TestBreakerBoard:
    def test_disabled_board_admits_everything(self):
        board = BreakerBoard(threshold=None)
        for _ in range(50):
            board.record("a", "n", ok=False)
        assert board.begin_attempt("a", "n")
        assert board.state("a", "n") == CLOSED
        assert board.snapshot() == {}

    def test_breakers_are_per_origin(self):
        clock = LogicalClock()
        board = BreakerBoard(threshold=2, cooldown=8, now=clock.now)
        for _ in range(2):
            board.record("a", "n", ok=False)
        assert not board.begin_attempt("a", "n")
        assert board.begin_attempt("b", "n")  # b has its own evidence
        assert board.open_for("a") == ["n"]
        assert board.open_for("b") == []
        assert board.snapshot()["a->n"]["state"] == OPEN


class TestRetryDeadline:
    def _flaky(self, failures):
        state = {"left": failures, "calls": 0}

        def fn():
            state["calls"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientStoreError("flaky")
            return "ok"

        return fn, state

    def test_no_deadline_is_the_seed_behaviour(self):
        policy = RetryPolicy.instant(attempts=4)
        fn, state = self._flaky(3)
        assert policy.call(fn) == "ok"
        assert state["calls"] == 4 and policy.deadline_stops == 0

    def test_spent_budget_stops_before_first_attempt(self):
        clock = LogicalClock()
        deadline = Deadline(5, clock.now)
        clock.advance(5)
        policy = RetryPolicy.instant(attempts=4)
        fn, state = self._flaky(0)
        with pytest.raises(DeadlineExceededError):
            policy.call(fn, deadline=deadline)
        assert state["calls"] == 0 and policy.deadline_stops == 1

    def test_stops_when_budget_cannot_cover_another_attempt(self):
        clock = LogicalClock()
        deadline = Deadline(10, clock.now)
        policy = RetryPolicy.instant(attempts=4)

        def fn():
            clock.advance(4)  # each attempt costs 4 of the 10 ticks
            raise TransientStoreError("slow and failing")

        with pytest.raises(DeadlineExceededError) as excinfo:
            policy.call(fn, deadline=deadline)
        # Attempt 1: 6 left covers another 4-tick try -> retry.
        # Attempt 2: 2 left cannot cover 4 -> deadline stop.
        assert policy.retries == 1 and policy.deadline_stops == 1
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_deadline_error_is_transient_but_not_self_retried(self):
        """DeadlineExceededError sits in the transient taxonomy (a fresh
        budget may succeed) yet the policy raises it instead of chewing
        the remaining attempts on a budget that is already gone."""
        assert issubclass(DeadlineExceededError, TransientError)
        clock = LogicalClock()
        deadline = Deadline(2, clock.now)
        policy = RetryPolicy.instant(attempts=4)

        def fn():
            clock.advance(2)
            raise TransientStoreError("boom")

        with pytest.raises(DeadlineExceededError):
            policy.call(fn, deadline=deadline)
        assert policy.retries == 0
