"""Tests for the relational semantic view (repro.table)."""

import pytest

from repro.errors import SchemaError, UnknownKeyError
from repro.table import DataTable, Schema
from repro.table.csvio import parse_csv, render_csv
from repro.table.schema import ROW_PREFIX
from repro.workloads import generate_csv, mutate_csv_one_word

CSV = """id,name,qty
1,apple,10
2,banana,20
3,cherry,30
"""


class TestSchema:
    def test_validation(self):
        with pytest.raises(SchemaError):
            Schema.of([], "id")
        with pytest.raises(SchemaError):
            Schema.of(["a", "a"], "a")
        with pytest.raises(SchemaError):
            Schema.of(["a"], "b")

    def test_encode_decode(self):
        schema = Schema.of(["id", "name"], "id")
        assert Schema.decode(schema.encode()) == schema

    def test_row_codec_round_trip(self):
        schema = Schema.of(["id", "name", "qty"], "id")
        row = {"id": "7", "name": "x,y \"quoted\"", "qty": ""}
        assert schema.decode_row(schema.encode_row(row)) == row

    def test_row_codec_rejects_bad_rows(self):
        schema = Schema.of(["id", "name"], "id")
        with pytest.raises(SchemaError):
            schema.encode_row({"id": "1"})  # missing column
        with pytest.raises(SchemaError):
            schema.encode_row({"id": "1", "name": "n", "extra": "e"})

    def test_row_keys(self):
        schema = Schema.of(["id"], "id")
        key = schema.row_key({"id": "42"})
        assert key == ROW_PREFIX + b"42"
        assert schema.pk_of(key) == "42"
        with pytest.raises(SchemaError):
            schema.pk_of(b"not-a-row-key")

    def test_changed_columns(self):
        schema = Schema.of(["id", "a", "b"], "id")
        old = schema.encode_row({"id": "1", "a": "x", "b": "y"})
        new = schema.encode_row({"id": "1", "a": "x", "b": "z"})
        assert schema.changed_columns(old, new) == ["b"]


class TestCsvIo:
    def test_parse(self):
        header, rows = parse_csv(CSV)
        assert header == ["id", "name", "qty"]
        assert rows[1] == {"id": "2", "name": "banana", "qty": "20"}

    def test_render_round_trip(self):
        header, rows = parse_csv(CSV)
        assert parse_csv(render_csv(header, iter(rows))) == (header, rows)

    def test_quoted_fields(self):
        text = 'id,note\n1,"hello, world"\n'
        _, rows = parse_csv(text)
        assert rows[0]["note"] == "hello, world"

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            parse_csv("")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            parse_csv("a,b\n1\n")


class TestDataTable:
    @pytest.fixture
    def table(self, engine):
        table, _ = DataTable.load_csv(engine, "fruits", CSV, primary_key="id")
        return table

    def test_load_report(self, engine):
        _, report = DataTable.load_csv(engine, "fruits", CSV, primary_key="id")
        assert report.rows_loaded == 3
        assert report.physical_bytes_added > 0
        assert "loaded 3 rows" in report.describe()

    def test_row_count_and_get(self, table):
        assert table.row_count() == 3
        assert table.get_row("2") == {"id": "2", "name": "banana", "qty": "20"}
        assert table.get_row("99") is None

    def test_rows_ordered_by_pk(self, table):
        assert [row["id"] for row in table.rows()] == ["1", "2", "3"]

    def test_select(self, table):
        rows = table.select(where=lambda r: int(r["qty"]) > 15)
        assert [r["id"] for r in rows] == ["2", "3"]
        projected = table.select(columns=["name"], limit=1)
        assert projected == [{"name": "apple"}]

    def test_stat_numeric(self, table):
        stat = table.stat("qty")
        assert stat.numeric
        assert stat.minimum == 10 and stat.maximum == 30
        assert stat.mean == 20
        assert stat.count == 3 and stat.distinct == 3

    def test_stat_text(self, table):
        stat = table.stat("name")
        assert not stat.numeric
        assert stat.minimum == "apple" and stat.maximum == "cherry"

    def test_stat_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.stat("ghost")

    def test_export_round_trip(self, table):
        exported = table.export_csv()
        header, rows = parse_csv(exported)
        assert header == ["id", "name", "qty"]
        assert len(rows) == 3

    def test_upsert_and_delete(self, table):
        table.upsert_rows([{"id": "4", "name": "date", "qty": "40"}])
        assert table.row_count() == 4
        table.delete_rows(["1", "4"])
        assert table.row_count() == 2
        assert table.get_row("1") is None

    def test_update_cells(self, table):
        table.update_cells("2", {"qty": "99"})
        assert table.get_row("2")["qty"] == "99"
        with pytest.raises(UnknownKeyError):
            table.update_cells("404", {"qty": "0"})
        with pytest.raises(SchemaError):
            table.update_cells("2", {"ghost": "x"})

    def test_each_write_creates_version(self, table):
        before = len(table.engine.history("fruits"))
        table.update_cells("2", {"qty": "1"})
        table.upsert_rows([{"id": "9", "name": "fig", "qty": "5"}])
        assert len(table.engine.history("fruits")) == before + 2


class TestBranchDiffMerge:
    @pytest.fixture
    def table(self, engine):
        table, _ = DataTable.load_csv(engine, "ds", CSV, primary_key="id")
        table.branch("vendorX")
        return table

    def test_diff_detects_all_kinds(self, table):
        table.update_cells("1", {"qty": "11"}, branch="vendorX")
        table.upsert_rows(
            [{"id": "4", "name": "date", "qty": "40"}], branch="vendorX"
        )
        table.delete_rows(["3"], branch="vendorX")
        diff = table.diff("master", "vendorX")
        assert [r.pk for r in diff.added] == ["4"]
        assert [r.pk for r in diff.removed] == ["3"]
        assert [r.pk for r in diff.changed] == ["1"]
        assert diff.changed[0].changed_columns == ("qty",)
        assert not diff.schema_changed

    def test_diff_empty(self, table):
        assert table.diff("master", "vendorX").is_empty()

    def test_merge_row_granular(self, table):
        table.update_cells("1", {"qty": "100"}, branch="master")
        table.update_cells("3", {"qty": "300"}, branch="vendorX")
        table.merge("vendorX", into_branch="master")
        assert table.get_row("1", branch="master")["qty"] == "100"
        assert table.get_row("3", branch="master")["qty"] == "300"

    def test_version_time_travel(self, engine):
        table, report = DataTable.load_csv(engine, "tt", CSV, primary_key="id")
        v1 = report.version
        table.update_cells("1", {"qty": "999"})
        assert table.get_row("1", version=v1.uid)["qty"] == "10"
        assert table.get_row("1")["qty"] == "999"


class TestFig4Scenario:
    def test_near_duplicate_load_is_cheap(self, engine):
        """The headline demo: the second, one-word-different CSV costs a
        tiny fraction of the first load's storage."""
        csv_1 = generate_csv(2000, seed=11)
        csv_2 = mutate_csv_one_word(csv_1, seed=13)
        assert csv_1 != csv_2
        _, report_1 = DataTable.load_csv(engine, "d1", csv_1, primary_key="id")
        _, report_2 = DataTable.load_csv(engine, "d2", csv_2, primary_key="id")
        assert report_2.physical_bytes_added < report_1.physical_bytes_added * 0.05
        assert report_2.dedup_savings > 0.95

    def test_identical_load_costs_almost_nothing(self, engine):
        csv_1 = generate_csv(1000, seed=17)
        _, report_1 = DataTable.load_csv(engine, "d1", csv_1, primary_key="id")
        _, report_2 = DataTable.load_csv(engine, "d2", csv_1, primary_key="id")
        # Value trees are identical: only the new FNode is materialized.
        assert report_2.chunks_new <= 1
