"""Crash-point torture: kill the engine at *every* durability boundary.

The workload below crosses every boundary kind the version layer marks —
journal appends and fsyncs, snapshot write/fsync/replace during
compaction, and the journal truncation rename.  A census run counts the
boundaries; then, for each boundary ``n``, a fresh engine runs the same
workload under ``CrashPlan(crash_at=n)``, dies there (with torn writes),
and is reopened.  Recovery must show either the state after the last
*acknowledged* operation or the state after the one in-flight operation
(which may have become durable before the ack) — never anything else —
and every surviving head must verify.

Honors ``FORKBASE_FAULT_SEED`` like the chaos suite; the seed varies the
torn-write prefixes, not the boundary schedule.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.chunk import Uid
from repro.db.engine import ForkBase
from repro.errors import SimulatedCrash
from repro.faults import CrashPlan, crash_zone

SEED = int(os.environ.get("FORKBASE_FAULT_SEED", "20260805"))

#: Small enough to force several compactions mid-workload.
JOURNAL_LIMIT = 700

HeadMap = Dict[Tuple[str, str], Uid]


def _heads(engine: ForkBase) -> HeadMap:
    return {(key, branch): head for key, branch, head in engine.branch_table.all_heads()}


def _ops(engine: ForkBase) -> List:
    """The scripted workload: every journaled verb, plus enough volume
    to push the journal past its compaction limit more than once."""
    ops = [
        lambda: engine.put("doc", {"a": "1"}),
        lambda: engine.put("doc", {"a": "2", "pad": "x" * 48}),
        lambda: engine.branch("doc", "dev"),
        lambda: engine.put("doc", {"a": "3", "pad": "x" * 48}, branch="dev"),
        lambda: engine.merge("doc", "dev", "master"),  # fast-forward
        lambda: engine.rename_branch("doc", "dev", "stable"),
        lambda: engine.delete_branch("doc", "stable"),
        lambda: engine.put("blob", "payload " * 6),
        lambda: engine.rename("blob", "data"),
        lambda: engine.put("tmp", ["1", "2"]),
        lambda: engine.drop("tmp"),
    ]
    for i in range(8):
        ops.append(lambda i=i: engine.put("bulk", {"i": str(i)}))
    return ops


def _run_workload(directory: str, acked: List[HeadMap]) -> None:
    """Run the workload, appending a head-map snapshot to ``acked`` after
    every acknowledged operation.  On a simulated crash, append the
    engine's in-memory state last: the in-flight op may or may not have
    reached the disk, so recovery may legitimately land on either of the
    final two snapshots."""
    engine: Optional[ForkBase] = None
    try:
        # Pinned to the file backend: the census below asserts the exact
        # journal/snapshot boundary kinds of the seed layout, so a
        # FORKBASE_BACKEND=pack environment must not redirect this suite
        # (the pack boundaries get the same treatment in
        # test_packstore_crash.py and test_pack_dropin.py).
        engine = ForkBase.open(
            directory, fsync="always", journal_limit=JOURNAL_LIMIT, backend="file"
        )
        acked.append(_heads(engine))
        for op in _ops(engine):
            op()
            acked.append(_heads(engine))
        engine.close()
    except SimulatedCrash:
        acked.append(_heads(engine) if engine is not None else {})
        if engine is not None:
            engine.abandon()
        raise


def _census(directory: str) -> List[str]:
    """Count the workload's boundaries; return their replay stamps."""
    with crash_zone(CrashPlan(seed=SEED)) as clock:
        _run_workload(directory, [])
    return [hit.stamp for hit in clock.trace]


def test_census_is_deterministic(tmp_path):
    first = _census(str(tmp_path / "a"))
    second = _census(str(tmp_path / "b"))
    assert first == second
    # The workload must actually cross every boundary kind we guard.
    with crash_zone(CrashPlan(seed=SEED)) as clock:
        _run_workload(str(tmp_path / "c"), [])
    kinds = {hit.kind for hit in clock.trace}
    assert kinds == {
        "journal-write",
        "journal-fsync",
        "journal-replace",
        "snapshot-write",
        "snapshot-fsync",
        "snapshot-replace",
    }


def test_torture_every_crash_point(tmp_path):
    total = len(_census(str(tmp_path / "census")))
    assert total > 40, "workload too small to be a torture test"

    for boundary in range(total):
        directory = str(tmp_path / f"crash{boundary}")
        acked: List[HeadMap] = []
        with pytest.raises(SimulatedCrash):
            with crash_zone(CrashPlan(crash_at=boundary, seed=SEED)):
                _run_workload(directory, acked)

        # acked[-1] is the engine's in-memory state at the crash (the
        # in-flight op, if it got far enough); acked[-2] the last state
        # actually acknowledged to the caller.
        allowed = [acked[-1]]
        if len(acked) > 1:
            allowed.append(acked[-2])

        recovered = ForkBase.open(directory)
        state = _heads(recovered)
        assert state in allowed, (
            f"boundary {boundary}: recovered {sorted(state)} is neither the "
            f"acknowledged state nor the in-flight one"
        )
        # Every surviving head resolves and passes tamper validation.
        for (key, branch) in state:
            assert recovered.verify(key, branch).ok, f"boundary {boundary}"
        recovered.close()

        # Replay idempotence: recovery reaches a fixed point — a second
        # (and third) open sees the identical head map.
        again = ForkBase.open(directory)
        assert _heads(again) == state, f"boundary {boundary}: replay not idempotent"
        again.close()
        once_more = ForkBase.open(directory)
        assert _heads(once_more) == state
        once_more.close()


def test_crash_during_recovery_is_survivable(tmp_path):
    # Kill *recovery itself* at each boundary it crosses: a crash loop
    # must never make things worse.  Recovery only writes when it has to
    # (re)create the journal, so stage a snapshot-only directory — the
    # upgrade path from the pre-journal format.
    directory = str(tmp_path / "db")
    engine = ForkBase.open(directory)
    engine.put("k", {"a": "1"})
    engine.close()
    state = {("k", "master"): engine.branch_table.head("k", "master")}
    journal_path = os.path.join(directory, "journal.wal")

    os.remove(journal_path)
    with crash_zone(CrashPlan(seed=SEED)) as clock:
        probe = ForkBase.open(directory)
        probe.abandon()
    assert clock.count > 0  # journal creation is instrumented

    for boundary in range(clock.count):
        os.remove(journal_path)
        with crash_zone(CrashPlan(crash_at=boundary, seed=SEED)):
            crashed = None
            try:
                crashed = ForkBase.open(directory)
            except SimulatedCrash:
                pass
            if crashed is not None:
                crashed.abandon()
        final = ForkBase.open(directory)
        assert _heads(final) == state, f"recovery crash at boundary {boundary}"
        final.close()
