"""Tests for failure detection and membership (repro.cluster.membership)."""

import pytest

from repro.chunk import Chunk, ChunkType
from repro.cluster import ALIVE, DEAD, SUSPECT, ClusterStore, LogicalClock
from repro.errors import NodeDownError, QuorumWriteError
from repro.faults import NetworkPlan, PartitionedTransport, RetryPolicy


def _chunk(n: int, size: int = 64) -> Chunk:
    return Chunk(ChunkType.BLOB, (b"member-%d-" % n) * (size // 10 + 1))


def _cluster(**kwargs) -> ClusterStore:
    kwargs.setdefault("retry", RetryPolicy.instant(attempts=2))
    return ClusterStore(**kwargs)


class TestLogicalClock:
    def test_monotonic_ticks(self):
        clock = LogicalClock()
        assert clock.now() == 0
        assert clock.advance() == 1
        assert clock.advance(5) == 6

    def test_time_never_reverses(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1)


class TestFailureDetector:
    def test_all_alive_on_healthy_cluster(self):
        cluster = _cluster(node_count=3)
        detector = cluster.failure_detector()
        states = detector.probe_round()
        assert set(states.values()) == {ALIVE}
        assert detector.suspected() == []

    def test_dead_node_decays_to_suspect_then_dead(self):
        cluster = _cluster(node_count=3, suspicion_threshold=2)
        detector = cluster.failure_detector()
        cluster.kill_node("node-01")
        detector.probe_round()
        assert detector.state("node-01") == ALIVE  # one miss is not enough
        detector.probe_round()
        assert detector.state("node-01") == SUSPECT
        detector.probe_round()
        detector.probe_round()
        assert detector.state("node-01") == DEAD
        assert detector.suspected() == ["node-01"]

    def test_recovery_snaps_back_to_alive(self):
        cluster = _cluster(node_count=3, suspicion_threshold=1)
        detector = cluster.failure_detector()
        cluster.kill_node("node-02")
        detector.probe_round()
        assert detector.is_suspect("node-02")
        cluster.revive_node("node-02")
        detector.probe_round()
        assert detector.state("node-02") == ALIVE
        assert detector.missed("node-02") == 0
        assert detector.report()["recoveries"] == 1

    def test_isolated_drop_does_not_trigger_suspicion(self):
        # drop_rate > 0 loses individual heartbeats; the threshold absorbs
        # them as long as losses are not consecutive enough.
        transport = PartitionedTransport(NetworkPlan(seed=3, drop_rate=0.15))
        cluster = _cluster(node_count=3, transport=transport, suspicion_threshold=3)
        detector = cluster.failure_detector()
        for _ in range(20):
            detector.probe_round()
        assert detector.suspected() == []

    def test_partition_is_suspected_per_origin(self):
        transport = PartitionedTransport()
        cluster = _cluster(node_count=4, transport=transport, suspicion_threshold=2)
        left = cluster.failure_detector("left")
        right = cluster.failure_detector("right")
        transport.partition(
            {"left", "node-00", "node-01"}, {"right", "node-02", "node-03"}
        )
        for _ in range(3):
            left.probe_round()
            right.probe_round()
        # Split-brain: each side suspects exactly the other side's nodes.
        assert left.suspected() == ["node-02", "node-03"]
        assert right.suspected() == ["node-00", "node-01"]
        transport.heal()
        left.probe_round()
        right.probe_round()
        assert left.suspected() == []
        assert right.suspected() == []

    def test_threshold_validation(self):
        cluster = _cluster(node_count=2)
        from repro.cluster import FailureDetector

        with pytest.raises(ValueError):
            FailureDetector(cluster, suspicion_threshold=0)
        with pytest.raises(ValueError):
            FailureDetector(cluster, suspicion_threshold=4, dead_threshold=2)

    def test_probe_rounds_are_deterministic(self):
        def run():
            transport = PartitionedTransport(NetworkPlan(seed=77, drop_rate=0.3))
            cluster = _cluster(node_count=3, transport=transport)
            detector = cluster.failure_detector()
            trace = []
            for _ in range(12):
                trace.append(tuple(sorted(detector.probe_round().items())))
            return trace

        assert run() == run()


class TestSuspicionRouting:
    def test_writes_route_around_suspected_nodes(self):
        transport = PartitionedTransport()
        cluster = _cluster(
            node_count=4, replication=2, transport=transport, suspicion_threshold=1
        )
        chunk = _chunk(1)
        victim = cluster.replica_nodes(chunk.uid)[0].name
        others = {name for name in cluster.nodes if name != victim}
        transport.partition(others | {"client"}, {victim})
        cluster.tick()  # one round at threshold 1 is enough to suspect
        assert cluster.failure_detector().is_suspect(victim)
        cluster.put(chunk)
        # The suspected home replica was skipped without burning retries,
        # got a hint instead, and a stand-in took the write.
        assert cluster.suspect_skips >= 1
        assert not cluster.nodes[victim].store.has(chunk.uid)
        assert cluster.pending_hints().get(victim) == 1
        holders = [n for n in cluster.nodes.values() if n.store.has(chunk.uid)]
        assert len(holders) >= 1

    def test_sloppy_quorum_meets_quorum_via_standin(self):
        transport = PartitionedTransport()
        cluster = _cluster(
            node_count=4,
            replication=2,
            write_quorum=2,
            transport=transport,
            suspicion_threshold=1,
        )
        chunk = _chunk(2)
        home = [node.name for node in cluster.replica_nodes(chunk.uid)]
        transport.partition(
            {"client"} | {n for n in cluster.nodes if n not in home[:1]}, {home[0]}
        )
        cluster.tick()
        cluster.put(chunk)  # would fail quorum without the sloppy extension
        assert cluster.sloppy_writes >= 1
        holders = [n.name for n in cluster.nodes.values() if n.store.has(chunk.uid)]
        assert len(holders) >= 2

    def test_quorum_error_only_when_no_reachable_quorum(self):
        transport = PartitionedTransport()
        cluster = _cluster(
            node_count=3, replication=2, write_quorum=2, transport=transport
        )
        # Client alone on its side: nobody reachable at all.
        transport.partition({"client"}, set(cluster.nodes))
        chunk = _chunk(3)
        with pytest.raises(NodeDownError):
            cluster.put(chunk)
        # One node reachable, quorum needs two: typed quorum failure.
        transport.partition({"client", "node-00"}, {"node-01", "node-02"})
        chunk2 = _chunk(4)
        with pytest.raises(QuorumWriteError) as info:
            cluster.put(chunk2)
        assert info.value.acked == 1
        assert info.value.required == 2

    def test_heartbeat_interval_probes_in_background(self):
        transport = PartitionedTransport()
        cluster = _cluster(
            node_count=3,
            transport=transport,
            heartbeat_interval=5,
            suspicion_threshold=1,
        )
        for i in range(25):
            cluster.put(_chunk(100 + i))
        detector = cluster.failure_detector("client")
        assert detector.rounds >= 4

    def test_clients_keep_separate_views(self):
        transport = PartitionedTransport()
        cluster = _cluster(node_count=2, transport=transport, suspicion_threshold=1)
        a = cluster.client("client-a")
        b = cluster.client("client-b")
        transport.partition({"client-a", "node-00", "node-01"}, {"client-b"})
        a.tick()
        b.tick()
        assert a.failure_detector().suspected() == []
        assert b.failure_detector().suspected() == ["node-00", "node-01"]
