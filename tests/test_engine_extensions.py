"""Tests for engine extensions: cross-key diff, verify, GC wiring,
and cross-dataset table diffs."""

import pytest

from repro.db import ForkBase
from repro.errors import SchemaError, TypeMismatchError
from repro.security import TamperingStore
from repro.store import InMemoryStore
from repro.table import DataTable
from repro.workloads import generate_csv, mutate_csv_one_word


class TestDiffObjects:
    def test_cross_key_diff(self, engine):
        engine.put("left", {"a": "1", "b": "2"})
        engine.put("right", {"a": "1", "b": "3", "c": "4"})
        diff = engine.diff_objects("left", "right")
        assert diff.changed == {b"b": (b"2", b"3")}
        assert diff.added == {b"c": b"4"}

    def test_cross_key_diff_prunes(self, engine):
        state = {f"k{i:05d}": "v" for i in range(5000)}
        engine.put("left", state)
        engine.put("right", {**state, "k00001": "edited"})
        diff = engine.diff_objects("left", "right")
        assert diff.edit_count == 1
        assert diff.nodes_loaded < 40

    def test_type_mismatch(self, engine):
        engine.put("m", {"a": "1"})
        engine.put("s", "text")
        with pytest.raises(TypeMismatchError):
            engine.diff_objects("m", "s")

    def test_with_branches_and_versions(self, engine):
        v1 = engine.put("x", {"a": "1"})
        engine.put("x", {"a": "2"})
        engine.put("y", {"a": "1"})
        diff = engine.diff_objects("x", "y", version_a=v1.uid)
        assert diff.is_empty()  # identical content, different keys


class TestEngineVerify:
    def test_verify_clean(self, engine):
        engine.put("k", {"a": "1"})
        assert engine.verify("k").ok

    def test_verify_detects(self):
        provider = TamperingStore(InMemoryStore())
        engine = ForkBase(store=provider, clock=lambda: 0.0)
        engine.put("k", {"a": "1"})
        fnode = engine.graph.load(engine.head("k"))
        provider.flip_byte(fnode.value_root)
        assert not engine.verify("k").ok

    def test_verify_specific_version(self, engine):
        v1 = engine.put("k", {"a": "1"})
        engine.put("k", {"a": "2"})
        assert engine.verify("k", version=v1.uid).ok


class TestEngineGc:
    def test_collect_garbage_wiring(self, engine):
        engine.put("keep", {"a": "1"})
        engine.put("drop", {"b": "x" * 100})
        engine.delete_branch("drop", "master")
        report = engine.collect_garbage(dry_run=True)
        assert report.swept_chunks > 0
        engine.collect_garbage()
        assert engine.get_value("keep") == {b"a": b"1"}
        assert engine.collect_garbage().swept_chunks == 0


class TestCrossDatasetDiff:
    def test_fig4_datasets_compare(self, engine):
        """The demo loads Dataset-1 and Dataset-2 and compares them."""
        csv_1 = generate_csv(800, seed=1)
        csv_2 = mutate_csv_one_word(csv_1, seed=2)
        t1, _ = DataTable.load_csv(engine, "Dataset-1", csv_1, primary_key="id")
        t2, _ = DataTable.load_csv(engine, "Dataset-2", csv_2, primary_key="id")
        diff = t1.diff_against(t2)
        assert len(diff.changed) == 1
        assert len(diff.added) == 0 and len(diff.removed) == 0
        assert diff.changed[0].changed_columns == ("note",)
        assert diff.subtrees_pruned > 0

    def test_schema_mismatch_rejected(self, engine):
        DataTable.load_csv(engine, "a", "id,x\n1,2\n", primary_key="id")
        DataTable.load_csv(engine, "b", "id,y\n1,2\n", primary_key="id")
        with pytest.raises(SchemaError):
            DataTable(engine, "a").diff_against(DataTable(engine, "b"))

    def test_identical_datasets_empty_diff(self, engine):
        csv = generate_csv(100, seed=3)
        t1, _ = DataTable.load_csv(engine, "d1", csv, primary_key="id")
        t2, _ = DataTable.load_csv(engine, "d2", csv, primary_key="id")
        assert t1.diff_against(t2).is_empty()
