"""Tests for the vectorized chunker (repro.rolling.fast).

The one property that matters: bit-identical spans to the reference
streaming chunker, under every configuration and input shape.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rolling.chunker import ChunkerConfig, iter_chunk_spans
from repro.rolling.fast import fast_chunk_bytes, fast_chunk_spans, numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

CFG = ChunkerConfig(pattern_bits=7, min_size=16, max_size=2048)

_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestEquivalence:
    @given(data=st.binary(max_size=6000))
    @_settings
    def test_matches_reference(self, data):
        assert fast_chunk_spans(data, CFG) == list(iter_chunk_spans(data, CFG))

    @given(data=st.binary(max_size=3000), preceding=st.binary(max_size=64))
    @_settings
    def test_matches_reference_with_seed(self, data, preceding):
        assert fast_chunk_spans(data, CFG, preceding=preceding) == list(
            iter_chunk_spans(data, CFG, preceding=preceding)
        )

    @pytest.mark.parametrize("pattern_bits,min_size,max_size", [
        (4, 8, 64), (7, 16, 2048), (12, 1024, 65536),
    ])
    def test_matches_across_configs(self, pattern_bits, min_size, max_size):
        config = ChunkerConfig(
            pattern_bits=pattern_bits, min_size=min_size, max_size=max_size
        )
        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(40_000))
        assert fast_chunk_spans(data, config) == list(
            iter_chunk_spans(data, config)
        )

    def test_degenerate_constant_input(self):
        data = b"\x00" * 30_000
        assert fast_chunk_spans(data, CFG) == list(iter_chunk_spans(data, CFG))

    def test_empty(self):
        assert fast_chunk_spans(b"", CFG) == []

    def test_rabin_karp_falls_back(self):
        config = ChunkerConfig(
            pattern_bits=7, min_size=16, max_size=2048, algorithm="rabin-karp"
        )
        data = os.urandom(10_000)
        assert fast_chunk_spans(data, config) == list(
            iter_chunk_spans(data, config)
        )

    def test_fast_chunk_bytes_reassembles(self):
        data = os.urandom(20_000)
        assert b"".join(fast_chunk_bytes(data, CFG)) == data


class TestBlobIntegration:
    def test_blob_tree_uses_identical_spans(self, store):
        """BlobTree built through the fast path equals a tree built from
        reference spans (content addressing proves span equality)."""
        from repro.chunk import Chunk, ChunkType
        from repro.postree.listtree import BlobTree

        data = os.urandom(150_000)
        blob = BlobTree.from_bytes(store, data)
        reference_chunks = [
            Chunk(ChunkType.BLOB, data[s:e]).uid
            for s, e in iter_chunk_spans(data)
        ]
        leaf_uids = [chunk.uid for chunk in blob.iter_chunks()]
        assert leaf_uids == reference_chunks

    def test_speedup_exists(self):
        """Not a strict benchmark, but the fast path must not be slower."""
        import time

        data = os.urandom(1_000_000)
        start = time.perf_counter()
        list(iter_chunk_spans(data))
        pure = time.perf_counter() - start
        start = time.perf_counter()
        fast_chunk_spans(data)
        fast = time.perf_counter() - start
        assert fast < pure
