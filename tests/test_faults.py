"""Tests for the deterministic fault-injection layer (repro.faults)."""

import dataclasses

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import NodeDownError, TransientStoreError
from repro.faults import FaultPlan, FaultyStore, RetryPolicy, with_retry
from repro.store.memory import InMemoryStore


def _chunk(n: int, size: int = 32) -> Chunk:
    return Chunk(ChunkType.BLOB, (b"payload-%d-" % n) * (size // 10 + 1))


class TestFaultPlan:
    def test_draws_are_deterministic(self):
        plan_a = FaultPlan(seed=7, corrupt_read_rate=0.5)
        plan_b = FaultPlan(seed=7, corrupt_read_rate=0.5)
        uid = Uid.of(b"x")
        for attempt in range(20):
            assert plan_a.draw("corrupt-read", uid, attempt) == plan_b.draw(
                "corrupt-read", uid, attempt
            )

    def test_different_seeds_differ(self):
        uid = Uid.of(b"x")
        draws_a = [FaultPlan(seed=1).draw("op", uid, i) for i in range(32)]
        draws_b = [FaultPlan(seed=2).draw("op", uid, i) for i in range(32)]
        assert draws_a != draws_b

    def test_attempts_redraw(self):
        """Successive attempts on the same uid get independent draws."""
        plan = FaultPlan(seed=3)
        uid = Uid.of(b"y")
        draws = {plan.draw("op", uid, attempt) for attempt in range(64)}
        assert len(draws) > 60

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_read_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_put_rate=-0.1)

    def test_mutate_always_changes(self):
        plan = FaultPlan(seed=5)
        uid = Uid.of(b"z")
        for attempt in range(10):
            data = b"some payload bytes"
            assert plan.mutate(data, uid, attempt) != data
        assert plan.mutate(b"", uid, 0) != b""

    def test_tear_is_strict_prefix(self):
        plan = FaultPlan(seed=5)
        uid = Uid.of(b"t")
        data = b"0123456789abcdef"
        torn = plan.tear(data, uid, 0)
        assert len(torn) < len(data)
        assert data.startswith(torn)

    def test_scoped_plans_decorrelate(self):
        """Replicas must not fail in lockstep: scoping re-derives the seed."""
        plan = FaultPlan(seed=17, transient_error_rate=0.5)
        uid = Uid.of(b"w")
        draws_a = [plan.scoped("node-a").draw("op", uid, i) for i in range(32)]
        draws_b = [plan.scoped("node-b").draw("op", uid, i) for i in range(32)]
        assert draws_a != draws_b
        assert draws_a == [plan.scoped("node-a").draw("op", uid, i) for i in range(32)]
        assert plan.scoped("node-a").transient_error_rate == 0.5

    def test_rng_streams_are_stable_and_named(self):
        plan = FaultPlan(seed=11)
        assert plan.rng("flaps").random() == plan.rng("flaps").random()
        assert plan.rng("flaps").random() != plan.rng("other").random()

    def test_flap_schedule_deterministic(self):
        plan = FaultPlan(seed=13)
        nodes = ["n0", "n1", "n2"]
        schedule = plan.flap_schedule(nodes, flaps=4, horizon=1000)
        assert schedule == plan.flap_schedule(nodes, flaps=4, horizon=1000)
        assert len(schedule) == 4
        assert all(0 <= op < 1000 and name in nodes and down >= 1
                   for op, name, down in schedule)
        assert schedule == sorted(schedule)


class TestFaultyStore:
    def test_no_faults_is_transparent(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=1))
        chunks = [_chunk(i) for i in range(50)]
        store.put_many(chunks)
        for chunk in chunks:
            got = store.get(chunk.uid)
            assert got.data == chunk.data and got.is_valid()

    def test_corrupt_reads_injected_at_roughly_the_rate(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=2, corrupt_read_rate=0.2))
        chunks = [_chunk(i) for i in range(200)]
        store.put_many(chunks)
        bad = sum(1 for c in chunks if not store.get(c.uid).is_valid())
        assert bad == store.injected_corrupt_reads
        assert 15 <= bad <= 90  # ~40 expected

    def test_corrupt_read_keeps_claimed_uid(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=4, corrupt_read_rate=1.0))
        chunk = _chunk(0)
        store.put(chunk)
        got = store.get(chunk.uid)
        assert got.uid == chunk.uid and not got.is_valid()

    def test_dropped_puts_never_materialize(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=5, drop_put_rate=1.0))
        chunk = _chunk(1)
        store.put(chunk)  # acked...
        assert store.injected_dropped_puts == 1
        assert store.get_maybe(chunk.uid) is None  # ...but lost

    def test_torn_puts_materialize_rot(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=6, torn_put_rate=1.0))
        chunk = _chunk(2)
        store.put(chunk)
        got = store.get_maybe(chunk.uid)
        assert got is not None and not got.is_valid()
        assert len(got.data) < len(chunk.data)

    def test_transient_errors_raise_and_redraw(self):
        store = FaultyStore(
            InMemoryStore(), FaultPlan(seed=7, transient_error_rate=0.5)
        )
        chunks = [_chunk(i) for i in range(100)]
        failures = 0
        for chunk in chunks:
            try:
                store.put(chunk)
            except TransientStoreError:
                failures += 1
        assert failures == store.injected_transient_errors
        assert failures > 10

    def test_transient_error_type_configurable(self):
        store = FaultyStore(
            InMemoryStore(),
            FaultPlan(seed=8, transient_error_rate=1.0),
            transient_error=NodeDownError,
        )
        with pytest.raises(NodeDownError):
            store.put(_chunk(3))

    def test_replay_is_exact(self):
        """Two stores driven by the same plan fail identically."""
        def run():
            store = FaultyStore(
                InMemoryStore(),
                FaultPlan(seed=9, corrupt_read_rate=0.3, drop_put_rate=0.2,
                          torn_put_rate=0.1, transient_error_rate=0.1),
            )
            log = []
            for i in range(120):
                chunk = _chunk(i)
                try:
                    store.put(chunk)
                except TransientStoreError:
                    log.append(("put-fail", i))
            for i in range(120):
                chunk = _chunk(i)
                try:
                    got = store.get_maybe(chunk.uid)
                except TransientStoreError:
                    log.append(("get-fail", i))
                    continue
                if got is None:
                    log.append(("miss", i))
                elif not got.is_valid():
                    log.append(("rot", i, got.data))
            return log

        first, second = run(), run()
        assert first == second and len(first) > 0

    def test_latency_accumulates(self):
        store = FaultyStore(InMemoryStore(), FaultPlan(seed=10, latency_ms=0.5))
        store.put(_chunk(0))
        store.get_maybe(_chunk(0).uid)
        assert store.simulated_ms == pytest.approx(1.0)


class TestRetryPolicy:
    def test_retries_transient_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientStoreError("flap")
            return "ok"

        assert with_retry(flaky, RetryPolicy.instant(attempts=4)) == "ok"
        assert len(calls) == 3

    def test_reraises_last_error_when_exhausted(self):
        policy = RetryPolicy.instant(attempts=3)
        calls = []

        def always_down():
            calls.append(1)
            raise NodeDownError("still down")

        with pytest.raises(NodeDownError):
            policy.call(always_down)
        assert len(calls) == 3
        assert policy.retries == 2

    def test_non_transient_errors_pass_through(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            with_retry(broken, RetryPolicy.instant())
        assert len(calls) == 1

    def test_backoff_delays_grow_and_cap(self):
        policy = RetryPolicy(attempts=6, base_delay=0.01, multiplier=2.0,
                             max_delay=0.05, jitter=0.0, sleep=lambda _s: None)
        delays = list(policy.delays())
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_sleep_is_injectable(self):
        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.0,
                             sleep=slept.append)

        def once():
            if not slept:
                raise TransientStoreError("one flap")
            return 42

        assert policy.call(once) == 42
        assert slept == [0.1]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(attempts=6, base_delay=0.01, seed=7, sleep=lambda _s: None)
        b = RetryPolicy(attempts=6, base_delay=0.01, seed=7, sleep=lambda _s: None)
        assert list(a.delays()) == list(b.delays())

    def test_jitter_decorrelates_seeds(self):
        a = RetryPolicy(attempts=6, base_delay=0.01, seed=1, sleep=lambda _s: None)
        b = RetryPolicy(attempts=6, base_delay=0.01, seed=2, sleep=lambda _s: None)
        assert list(a.delays()) != list(b.delays())

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(attempts=8, base_delay=0.01, multiplier=2.0,
                             max_delay=0.05, jitter=0.25, seed=3,
                             sleep=lambda _s: None)
        bare = RetryPolicy(attempts=8, base_delay=0.01, multiplier=2.0,
                           max_delay=0.05, jitter=0.0, sleep=lambda _s: None)
        for jittered, exact in zip(policy.delays(), bare.delays()):
            # Jitter only derates: never above the exact schedule, never
            # below (1 - jitter) of it.
            assert exact * (1 - 0.25) <= jittered <= exact

    def test_with_retry_threads_seed_through(self):
        slept_a, slept_b = [], []

        def fail_then_ok(log):
            def fn():
                if not log:
                    raise TransientStoreError("flap")
                return "ok"
            return fn

        base = RetryPolicy(attempts=2, base_delay=0.05)
        assert with_retry(fail_then_ok(slept_a),
                          dataclasses.replace(base, sleep=slept_a.append),
                          seed=10) == "ok"
        assert with_retry(fail_then_ok(slept_b),
                          dataclasses.replace(base, sleep=slept_b.append),
                          seed=11) == "ok"
        # Both retried exactly once, but on decorrelated schedules.
        assert len(slept_a) == len(slept_b) == 1
        assert slept_a != slept_b
