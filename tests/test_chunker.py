"""Tests for content-defined chunking (repro.rolling.chunker / detector)."""

import random

import pytest

from repro.rolling.chunker import (
    ChunkerConfig,
    EntryChunker,
    chunk_bytes,
    chunk_entries,
    iter_chunk_spans,
)
from repro.rolling.detector import PatternDetector, make_hash


def _random_bytes(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkerConfig(window=0)
        with pytest.raises(ValueError):
            ChunkerConfig(pattern_bits=0)
        with pytest.raises(ValueError):
            ChunkerConfig(min_size=0)
        with pytest.raises(ValueError):
            ChunkerConfig(min_size=100, max_size=50)
        with pytest.raises(ValueError):
            ChunkerConfig(pattern_bits=40, hash_bits=31)

    def test_with_target_sets_q(self):
        config = ChunkerConfig().with_target(4096)
        assert config.pattern_bits == 12
        assert config.min_size == 1024
        assert config.max_size == 32768

    def test_make_hash_algorithms(self):
        assert ChunkerConfig(algorithm="cyclic").make_hash() is not None
        assert ChunkerConfig(algorithm="rabin-karp").make_hash() is not None
        with pytest.raises(ValueError):
            make_hash("nope", 16, 31, b"s")


class TestChunkBytes:
    CFG = ChunkerConfig(pattern_bits=7, min_size=16, max_size=2048)

    def test_reassembly(self):
        data = _random_bytes(50_000)
        parts = chunk_bytes(data, self.CFG)
        assert b"".join(parts) == data

    def test_determinism(self):
        data = _random_bytes(20_000, seed=1)
        assert chunk_bytes(data, self.CFG) == chunk_bytes(data, self.CFG)

    def test_empty_input(self):
        assert chunk_bytes(b"", self.CFG) == []

    def test_expected_chunk_size(self):
        data = _random_bytes(200_000, seed=2)
        parts = chunk_bytes(data, self.CFG)
        average = len(data) / len(parts)
        # q=7 → ~128B expected (min clamp pushes it slightly up).
        assert 64 < average < 512

    def test_min_size_respected(self):
        data = _random_bytes(50_000, seed=3)
        parts = chunk_bytes(data, self.CFG)
        assert all(len(part) >= 16 for part in parts[:-1])

    def test_max_size_respected(self):
        data = b"\x00" * 100_000  # degenerate constant input
        parts = chunk_bytes(data, self.CFG)
        assert all(len(part) <= 2048 for part in parts)

    def test_edit_locality(self):
        """A one-byte edit must dirty only a local neighbourhood."""
        data = _random_bytes(100_000, seed=4)
        edited = data[:50_000] + b"\xff" + data[50_001:]
        before = set(chunk_bytes(data, self.CFG))
        after = set(chunk_bytes(edited, self.CFG))
        shared = len(before & after)
        assert shared >= len(before) - 4

    def test_insertion_resynchronizes(self):
        """Insertions shift offsets but CDC boundaries resync."""
        data = _random_bytes(100_000, seed=5)
        edited = data[:50_000] + b"INSERTED-BYTES" + data[50_000:]
        before = set(chunk_bytes(data, self.CFG))
        after = set(chunk_bytes(edited, self.CFG))
        assert len(before & after) >= len(before) - 4

    def test_preceding_seed_changes_only_early_boundaries(self):
        data = _random_bytes(30_000, seed=6)
        plain = list(iter_chunk_spans(data, self.CFG))
        seeded = list(iter_chunk_spans(data, self.CFG, preceding=b"prefix-noise"))
        # Boundaries must converge once past the window influence.
        assert plain[-1] == seeded[-1]

    def test_rabin_karp_path(self):
        config = ChunkerConfig(
            pattern_bits=7, min_size=16, max_size=2048, algorithm="rabin-karp"
        )
        data = _random_bytes(30_000, seed=7)
        parts = chunk_bytes(data, config)
        assert b"".join(parts) == data
        assert len(parts) > 10


class TestEntryChunker:
    CFG = ChunkerConfig(pattern_bits=6, min_size=16, max_size=1024)

    def _entries(self, n, seed=0):
        rng = random.Random(seed)
        return [
            f"key{i:05d}={'v' * rng.randint(1, 30)}".encode() for i in range(n)
        ]

    def test_spans_partition_entries(self):
        entries = self._entries(3000)
        spans = chunk_entries(entries, self.CFG)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(entries)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_determinism(self):
        entries = self._entries(1000, seed=1)
        assert chunk_entries(entries, self.CFG) == chunk_entries(entries, self.CFG)

    def test_no_entry_split_across_nodes(self):
        """Spans are whole-entry by construction; sizes follow content."""
        entries = [b"x" * 700 for _ in range(10)]  # entries close to max
        spans = chunk_entries(entries, self.CFG)
        total = sum(end - start for start, end in spans)
        assert total == len(entries)

    def test_empty(self):
        assert chunk_entries([], self.CFG) == []

    def test_single_giant_entry(self):
        spans = chunk_entries([b"z" * 10_000], self.CFG)
        assert spans == [(0, 1)]

    def test_push_protocol(self):
        chunker = EntryChunker(self.CFG)
        entries = self._entries(500, seed=2)
        boundaries = [i for i, e in enumerate(entries) if chunker.push(e)]
        spans = chunk_entries(entries, self.CFG)
        closed = [end - 1 for _, end in spans[:-1]]
        # The last span may or may not end on a pattern: compare prefix.
        assert boundaries[: len(closed)] == closed

    def test_seeding_matches_midstream_state(self):
        """Chunking a suffix with a seeded window must agree with the
        full-stream boundaries — the property the tree editor relies on."""
        entries = self._entries(2000, seed=3)
        full_spans = chunk_entries(entries, self.CFG)
        # Restart at the third span boundary.
        restart = full_spans[2][1] if len(full_spans) > 3 else 0
        preceding = b"".join(entries[:restart])
        suffix_spans = chunk_entries(entries[restart:], self.CFG, preceding=preceding)
        expected = [
            (s - restart, e - restart) for s, e in full_spans if s >= restart
        ]
        assert suffix_spans == expected

    def test_generic_hash_fallback(self):
        config = ChunkerConfig(
            pattern_bits=6, min_size=16, max_size=1024, algorithm="rabin-karp"
        )
        entries = self._entries(500, seed=4)
        spans = chunk_entries(entries, config)
        assert spans[-1][1] == len(entries)


class TestPatternDetector:
    def test_min_size_suppresses_patterns(self):
        hasher = make_hash("cyclic", 16, 31, b"forkbase-gamma")
        detector = PatternDetector(hasher, pattern_bits=4, min_size=100)
        hits = list(detector.scan(_random_bytes(1000, seed=8)))
        for first, second in zip(hits, hits[1:]):
            assert second - first >= 100

    def test_max_size_forces_boundary(self):
        hasher = make_hash("cyclic", 16, 31, b"forkbase-gamma")
        detector = PatternDetector(hasher, pattern_bits=30, min_size=1, max_size=64)
        hits = list(detector.scan(b"\x00" * 1000))
        assert hits, "max_size must force boundaries on pattern-free input"
        assert hits[0] <= 64

    def test_validation(self):
        hasher = make_hash("cyclic", 16, 31, b"forkbase-gamma")
        with pytest.raises(ValueError):
            PatternDetector(hasher, pattern_bits=0)
        with pytest.raises(ValueError):
            PatternDetector(hasher, pattern_bits=4, min_size=0)
        with pytest.raises(ValueError):
            PatternDetector(hasher, pattern_bits=4, min_size=10, max_size=5)
