"""Tests for tamper evidence and access control (repro.security)."""

import pytest

from repro.db import ForkBase
from repro.errors import AccessDeniedError, TamperError
from repro.security import (
    AccessController,
    Permission,
    SecuredForkBase,
    TamperingStore,
    Verifier,
)
from repro.store import InMemoryStore


@pytest.fixture
def tampered_setup():
    """Engine over an adversary-controlled store with some history."""
    tampering = TamperingStore(InMemoryStore())
    engine = ForkBase(store=tampering, clock=lambda: 0.0)
    engine.put("data", {"k%02d" % i: "v%d" % i for i in range(200)}, message="v1")
    engine.put("data", {"k%02d" % i: "v%d" % i for i in range(201)}, message="v2")
    return engine, tampering


class TestVerifier:
    def test_honest_store_validates(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        report = Verifier(store).verify_version(head)
        assert report.ok
        assert report.chunks_checked > 1
        assert report.fnodes_checked == 2
        assert "VALID" in report.describe()

    def test_value_chunk_corruption_detected(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        store.flip_byte(fnode.value_root)
        report = Verifier(store).verify_version(head)
        assert not report.ok
        assert any("does not hash" in error for error in report.errors)

    def test_leaf_corruption_detected(self, tampered_setup):
        """Tampering deep in the value tree is caught, not just the root."""
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        from repro.postree.node import IndexNode, load_node

        node = load_node(store.get(fnode.value_root))
        if isinstance(node, IndexNode):
            store.flip_byte(node.entries[0].child)
            report = Verifier(store).verify_version(head)
            assert not report.ok

    def test_history_rewrite_detected(self, tampered_setup):
        """Rewriting an ancestor FNode breaks the hash chain."""
        engine, store = tampered_setup
        head = engine.head("data")
        parent = engine.graph.load(head).bases[0]
        store.flip_byte(parent)
        report = Verifier(store).verify_version(head)
        assert not report.ok

    def test_withholding_detected(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        store.drop_chunk(fnode.value_root)
        report = Verifier(store).verify_version(head)
        assert not report.ok
        assert any("missing" in error for error in report.errors)

    def test_substitution_detected(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        parent_fnode = engine.graph.load(fnode.bases[0])
        store.substitute(fnode.value_root, parent_fnode.value_root)
        report = Verifier(store).verify_version(head)
        assert not report.ok

    def test_heal_restores_validity(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        store.flip_byte(fnode.value_root)
        assert not Verifier(store).verify_version(head).ok
        store.heal()
        assert Verifier(store).verify_version(head).ok

    def test_verify_or_raise(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        Verifier(store).verify_or_raise(head)
        fnode = engine.graph.load(head)
        store.flip_byte(fnode.value_root)
        with pytest.raises(TamperError):
            Verifier(store).verify_or_raise(head)

    def test_skip_history_checks_value_only(self, tampered_setup):
        engine, store = tampered_setup
        head = engine.head("data")
        parent = engine.graph.load(head).bases[0]
        store.flip_byte(parent)
        report = Verifier(store).verify_version(head, check_history=False)
        assert report.ok  # value intact; history deliberately unchecked

    def test_detection_rate_is_total(self, tampered_setup):
        """Every single-chunk corruption across the value tree is caught."""
        engine, store = tampered_setup
        head = engine.head("data")
        fnode = engine.graph.load(head)
        verifier = Verifier(store)
        from repro.postree.tree import PosTree

        tree = PosTree(store, fnode.value_root)
        pages = sorted(tree.page_uids())
        detected = 0
        for page in pages:
            store.flip_byte(page)
            if not verifier.verify_version(head).ok:
                detected += 1
            store.heal(page)
        assert detected == len(pages)


class TestAccessControl:
    @pytest.fixture
    def setup(self, engine):
        engine.put("Dataset-1", {"a": "1"})
        engine.branch("Dataset-1", "vendorX")
        acl = AccessController()
        acl.grant("adminA", Permission.ADMIN)
        acl.grant("adminB", Permission.READ, key="Dataset-1", branch="master")
        acl.grant("adminB", Permission.WRITE, key="Dataset-1", branch="vendorX")
        return engine, acl

    def test_admin_can_do_everything(self, setup):
        engine, acl = setup
        admin = SecuredForkBase(engine, acl, "adminA")
        admin.put("Dataset-1", {"a": "2"}, branch="master")
        admin.get("Dataset-1")
        admin.branch("Dataset-1", "fresh")
        admin.delete_branch("Dataset-1", "fresh")

    def test_reader_cannot_write(self, setup):
        engine, acl = setup
        reader = SecuredForkBase(engine, acl, "adminB")
        reader.get("Dataset-1", branch="master")
        with pytest.raises(AccessDeniedError):
            reader.put("Dataset-1", {"a": "evil"}, branch="master")

    def test_branch_scoped_write(self, setup):
        engine, acl = setup
        tenant = SecuredForkBase(engine, acl, "adminB")
        info = tenant.put("Dataset-1", {"a": "vendor"}, branch="vendorX")
        assert info.author == "adminB"

    def test_unknown_principal_denied(self, setup):
        engine, acl = setup
        stranger = SecuredForkBase(engine, acl, "mallory")
        with pytest.raises(AccessDeniedError):
            stranger.get("Dataset-1")

    def test_revoke(self, setup):
        engine, acl = setup
        acl.revoke("adminB", key="Dataset-1", branch="vendorX")
        tenant = SecuredForkBase(engine, acl, "adminB")
        with pytest.raises(AccessDeniedError):
            tenant.put("Dataset-1", {"a": "x"}, branch="vendorX")

    def test_permission_ordering(self, setup):
        engine, acl = setup
        assert acl.level("adminA", "anything", "any") == Permission.ADMIN
        assert acl.level("adminB", "Dataset-1", "master") == Permission.READ
        assert acl.level("adminB", "Dataset-1", "vendorX") == Permission.WRITE
        assert acl.level("nobody", "Dataset-1", "master") == 0

    def test_merge_needs_both_sides(self, setup):
        engine, acl = setup
        engine.put("Dataset-1", {"a": "vx"}, branch="vendorX")
        tenant = SecuredForkBase(engine, acl, "adminB")
        with pytest.raises(AccessDeniedError):
            tenant.merge("Dataset-1", from_branch="vendorX", into_branch="master")
        admin = SecuredForkBase(engine, acl, "adminA")
        admin.merge("Dataset-1", from_branch="vendorX", into_branch="master")

    def test_grants_for(self, setup):
        _, acl = setup
        assert len(acl.grants_for("adminB")) == 2
        assert acl.grants_for("nobody") == []
