"""Tests for the physical chunk stores (repro.store)."""

import os

import pytest

from repro.chunk import Chunk, ChunkType, Uid
from repro.errors import ChunkCorruptionError, ChunkNotFoundError, StoreClosedError
from repro.store import CachedStore, FileStore, InMemoryStore
from repro.store.stats import StoreStats


def _chunk(payload: bytes, type_=ChunkType.BLOB) -> Chunk:
    return Chunk(type_, payload)


class TestInMemoryStore:
    def test_put_get_round_trip(self, store):
        chunk = _chunk(b"hello")
        assert store.put(chunk) is True
        assert store.get(chunk.uid).data == b"hello"

    def test_put_is_idempotent_dedup(self, store):
        chunk = _chunk(b"dup")
        assert store.put(chunk) is True
        assert store.put(chunk) is False
        assert len(store) == 1
        assert store.stats.puts_dup == 1

    def test_get_missing_raises(self, store):
        with pytest.raises(ChunkNotFoundError):
            store.get(Uid.of(b"missing"))

    def test_get_maybe(self, store):
        chunk = _chunk(b"x")
        store.put(chunk)
        assert store.get_maybe(chunk.uid) is not None
        assert store.get_maybe(Uid.of(b"nope")) is None

    def test_contains_and_has(self, store):
        chunk = _chunk(b"y")
        store.put(chunk)
        assert chunk.uid in store
        assert store.has(chunk.uid)
        assert Uid.of(b"z") not in store

    def test_ids_enumerates_everything(self, store):
        chunks = [_chunk(bytes([i])) for i in range(10)]
        store.put_many(chunks)
        assert set(store.ids()) == {c.uid for c in chunks}

    def test_physical_size(self, store):
        store.put(_chunk(b"12345"))
        store.put(_chunk(b"123"))
        assert store.physical_size() == 8

    def test_put_many_returns_new_count(self, store):
        chunk = _chunk(b"once")
        assert store.put_many([chunk, chunk, _chunk(b"two")]) == 2

    def test_verify_reads_catches_corruption(self):
        store = InMemoryStore(verify_reads=True)
        bad = Chunk(ChunkType.BLOB, b"evil", uid=Uid.of(b"claimed"))
        store._insert(bad)
        with pytest.raises(ChunkCorruptionError):
            store.get(bad.uid)


class TestStoreStats:
    def test_logical_vs_physical(self, store):
        chunk = _chunk(b"0123456789")
        store.put(chunk)
        store.put(chunk)
        assert store.stats.physical_bytes == 10
        assert store.stats.logical_bytes == 20
        assert store.stats.dedup_ratio == 2.0
        assert store.stats.dedup_hit_rate == 0.5

    def test_snapshot_delta(self, store):
        store.put(_chunk(b"aaa"))
        before = store.stats.snapshot()
        store.put(_chunk(b"bbbb"))
        delta = store.stats.delta(before)
        assert delta.puts_new == 1
        assert delta.physical_bytes == 4

    def test_by_type_accounting(self, store):
        store.put(_chunk(b"a", ChunkType.BLOB))
        store.put(_chunk(b"b", ChunkType.LEAF))
        store.put(_chunk(b"c", ChunkType.LEAF))
        assert store.stats.by_type == {"BLOB": 1, "LEAF": 2}

    def test_get_accounting(self, store):
        chunk = _chunk(b"g")
        store.put(chunk)
        store.get(chunk.uid)
        store.get_maybe(Uid.of(b"no"))
        assert store.stats.gets == 1
        assert store.stats.misses == 1

    def test_empty_stats_defaults(self):
        stats = StoreStats()
        assert stats.dedup_ratio == 1.0
        assert stats.dedup_hit_rate == 0.0
        assert "physical=0B" in stats.describe()


class TestFileStore:
    def test_round_trip_and_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        chunk = _chunk(b"persistent")
        with FileStore(path) as fs:
            fs.put(chunk)
        with FileStore(path) as fs:
            assert fs.get(chunk.uid).data == b"persistent"
            assert len(fs) == 1

    def test_index_rebuild_after_crash(self, tmp_path):
        path = str(tmp_path / "store")
        chunks = [_chunk(b"c%d" % i) for i in range(20)]
        fs = FileStore(path)
        fs.put_many(chunks)
        fs.close()
        os.remove(os.path.join(path, "index.dat"))
        with FileStore(path) as fs2:
            assert len(fs2) == 20
            for chunk in chunks:
                assert fs2.get(chunk.uid).data == chunk.data

    def test_unsaved_tail_recovered(self, tmp_path):
        """Records appended after the last index snapshot are found."""
        path = str(tmp_path / "store")
        first = _chunk(b"first")
        with FileStore(path) as fs:
            fs.put(first)
        fs2 = FileStore(path)
        second = _chunk(b"second")
        fs2.put(second)
        fs2._writer.flush()
        # Simulate crash: skip close() (no index rewrite).
        with FileStore(path) as fs3:
            assert fs3.get(first.uid).data == b"first"
            assert fs3.get(second.uid).data == b"second"

    def test_torn_record_ignored(self, tmp_path):
        path = str(tmp_path / "store")
        chunk = _chunk(b"whole")
        fs = FileStore(path)
        fs.put(chunk)
        fs._writer.flush()
        seg = fs._segment_path(fs._active)
        fs.close()
        os.remove(os.path.join(path, "index.dat"))
        with open(seg, "ab") as handle:
            handle.write(b"\x01\x00\x00\x01\x00ga")  # torn garbage tail
        with FileStore(path) as fs2:
            assert fs2.get(chunk.uid).data == b"whole"
            assert len(fs2) == 1

    def test_segment_rollover(self, tmp_path):
        path = str(tmp_path / "store")
        with FileStore(path, segment_limit=256) as fs:
            chunks = [_chunk(os.urandom(100)) for _ in range(10)]
            fs.put_many(chunks)
            assert len(fs._segments) > 1
            for chunk in chunks:
                assert fs.get(chunk.uid).data == chunk.data

    def test_closed_store_rejects_ops(self, tmp_path):
        fs = FileStore(str(tmp_path / "store"))
        fs.close()
        with pytest.raises(StoreClosedError):
            fs.put(_chunk(b"late"))
        fs.close()  # double close is fine

    def test_dedup_across_sessions(self, tmp_path):
        path = str(tmp_path / "store")
        chunk = _chunk(b"shared")
        with FileStore(path) as fs:
            fs.put(chunk)
        with FileStore(path) as fs:
            assert fs.put(chunk) is False  # already present after reopen


class TestCachedStore:
    def test_read_through_and_hits(self):
        backing = InMemoryStore()
        cache = CachedStore(backing, capacity=8)
        chunk = _chunk(b"cached")
        cache.put(chunk)
        cache.get(chunk.uid)
        cache.get(chunk.uid)
        assert cache.hits >= 1
        assert cache.hit_rate > 0

    def test_eviction_respects_capacity(self):
        cache = CachedStore(InMemoryStore(), capacity=2)
        chunks = [_chunk(bytes([i])) for i in range(5)]
        for chunk in chunks:
            cache.put(chunk)
        assert len(cache._cache) <= 2
        # Evicted chunks still come from backing.
        assert cache.get(chunks[0].uid).data == chunks[0].data

    def test_write_through(self):
        backing = InMemoryStore()
        cache = CachedStore(backing, capacity=4)
        chunk = _chunk(b"w")
        cache.put(chunk)
        assert backing.has(chunk.uid)

    def test_contains_checks_backing(self):
        backing = InMemoryStore()
        chunk = _chunk(b"b")
        backing.put(chunk)
        cache = CachedStore(backing, capacity=4)
        assert chunk.uid in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CachedStore(InMemoryStore(), capacity=0)

    def test_verify_reads_inherited_from_backing(self):
        # Regression: this layer used to hardcode verify_reads=False,
        # silently disabling the tamper check on every read through the
        # cache when the backing store had verification on.
        assert CachedStore(InMemoryStore(verify_reads=True), capacity=4).verify_reads
        assert not CachedStore(InMemoryStore(), capacity=4).verify_reads

    def test_verify_reads_explicit_override_wins(self):
        verifying = InMemoryStore(verify_reads=True)
        assert not CachedStore(verifying, capacity=4, verify_reads=False).verify_reads
        assert CachedStore(InMemoryStore(), capacity=4, verify_reads=True).verify_reads

    def test_cache_hit_is_verified(self):
        cache = CachedStore(InMemoryStore(verify_reads=True), capacity=4)
        bad = Chunk(ChunkType.BLOB, b"evil", uid=Uid.of(b"claimed"))
        with cache._lock:
            cache._remember(bad)  # plant a tampered chunk as a future hit
        with pytest.raises(ChunkCorruptionError):
            cache.get(bad.uid)
