"""Tests for the single-writer advisory lock on durable engines."""

import os

import pytest

from repro.db import ForkBase
from repro.errors import EngineLockedError

fcntl = pytest.importorskip("fcntl", reason="advisory locking is POSIX-only")


class TestEngineLock:
    def test_second_open_raises_typed_error(self, tmp_path):
        directory = str(tmp_path / "db")
        engine = ForkBase.open(directory)
        try:
            with pytest.raises(EngineLockedError) as info:
                ForkBase.open(directory)
            assert info.value.directory == directory
            assert "locked" in str(info.value)
        finally:
            engine.close()

    def test_close_releases_the_lock(self, tmp_path):
        directory = str(tmp_path / "db")
        engine = ForkBase.open(directory)
        engine.put("k", "v1")
        engine.close()
        reopened = ForkBase.open(directory)
        try:
            assert reopened.get_value("k") == "v1"
        finally:
            reopened.close()

    def test_context_manager_releases_the_lock(self, tmp_path):
        directory = str(tmp_path / "db")
        with ForkBase.open(directory) as engine:
            engine.put("k", "v1")
        with ForkBase.open(directory) as engine:
            assert engine.get_value("k") == "v1"

    def test_abandon_releases_the_lock(self, tmp_path):
        # abandon() is the in-process SIGKILL: OS handles (including the
        # flock) must be released even though nothing is persisted.
        directory = str(tmp_path / "db")
        engine = ForkBase.open(directory)
        engine.put("k", "v1")
        engine.abandon()
        with ForkBase.open(directory) as recovered:
            assert recovered.get_value("k") == "v1"  # journal replay

    def test_stale_lock_file_is_harmless(self, tmp_path):
        # A leftover .lock from a crashed process holds no flock: opening
        # over it must succeed (the lock dies with its holder).
        directory = str(tmp_path / "db")
        os.makedirs(directory)
        with open(os.path.join(directory, ".lock"), "w", encoding="utf-8") as handle:
            handle.write("stale")
        with ForkBase.open(directory) as engine:
            engine.put("k", "v1")

    def test_close_is_idempotent(self, tmp_path):
        directory = str(tmp_path / "db")
        engine = ForkBase.open(directory)
        engine.close()
        engine.close()  # second close must not blow up on the lock

    def test_two_directories_do_not_conflict(self, tmp_path):
        with ForkBase.open(str(tmp_path / "a")) as a:
            with ForkBase.open(str(tmp_path / "b")) as b:
                a.put("k", "from-a")
                b.put("k", "from-b")
                assert a.get_value("k") == "from-a"
                assert b.get_value("k") == "from-b"
