"""Tests for incremental POS-Tree editing (repro.postree.edit).

The central oracle: the splice editor must produce a root byte-identical
to bulk-building the edited record set from scratch (SIRI Property 1).
"""

import random

import pytest

from repro.postree import PosTree


def _reference(store, mapping):
    return PosTree.from_pairs(store, mapping.items())


class TestPointEdits:
    def test_update_existing_key(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        edited = tree.put(b"key00100", b"NEW")
        assert edited.get(b"key00100") == b"NEW"
        assert tree.get(b"key00100") == sample_pairs[b"key00100"]  # immutability
        expected = {**sample_pairs, b"key00100": b"NEW"}
        assert edited.root == _reference(store, expected).root

    def test_insert_middle(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        edited = tree.put(b"key01000x", b"mid")  # between key01000 and key01001
        expected = {**sample_pairs, b"key01000x": b"mid"}
        assert edited.get(b"key01000x") == b"mid"
        assert edited.root == _reference(store, expected).root

    def test_insert_before_first(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        edited = tree.put(b"aaa", b"first")
        expected = {**sample_pairs, b"aaa": b"first"}
        assert edited.root == _reference(store, expected).root
        assert next(edited.keys()) == b"aaa"

    def test_append_after_last(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        edited = tree.put(b"zzz", b"last")
        expected = {**sample_pairs, b"zzz": b"last"}
        assert edited.root == _reference(store, expected).root

    def test_delete_first_middle_last(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        keys = sorted(sample_pairs)
        for key in (keys[0], keys[len(keys) // 2], keys[-1]):
            edited = tree.delete(key)
            expected = {k: v for k, v in sample_pairs.items() if k != key}
            assert edited.root == _reference(store, expected).root

    def test_delete_missing_is_identity(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        assert tree.delete(b"not-there").root == tree.root

    def test_overwrite_same_value_is_identity(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        key = sorted(sample_pairs)[7]
        assert tree.put(key, sample_pairs[key]).root == tree.root

    def test_empty_batch_is_identity(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        assert tree.update().root == tree.root


class TestBatchEdits:
    def test_random_batches_match_bulk(self, store, sample_pairs):
        rng = random.Random(99)
        current = dict(sample_pairs)
        tree = _reference(store, current)
        for round_ in range(8):
            keys = rng.sample(sorted(current), 6)
            puts = {k: b"round-%d" % round_ for k in keys[:4]}
            puts[b"inserted-%03d" % round_] = b"fresh"
            deletes = keys[4:]
            tree = tree.update(puts=puts, deletes=deletes)
            current.update(puts)
            for key in deletes:
                current.pop(key, None)
            assert tree.root == _reference(store, current).root, f"round {round_}"
            tree.check_structure()

    def test_large_clustered_batch(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        keys = sorted(sample_pairs)[300:500]
        puts = {k: b"bulkedit" for k in keys}
        edited = tree.update(puts=puts)
        expected = {**sample_pairs, **puts}
        assert edited.root == _reference(store, expected).root

    def test_delete_contiguous_range(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        doomed = sorted(sample_pairs)[800:900]
        edited = tree.update(deletes=doomed)
        expected = {k: v for k, v in sample_pairs.items() if k not in set(doomed)}
        assert edited.root == _reference(store, expected).root
        assert len(edited) == len(sample_pairs) - 100

    def test_put_and_delete_same_key_put_wins(self, store, small_pairs):
        tree = _reference(store, small_pairs)
        edited = tree.update(puts={b"k005": b"kept"}, deletes=[b"k005"])
        assert edited.get(b"k005") == b"kept"

    def test_grow_from_empty(self, store, sample_pairs):
        tree = PosTree.empty(store)
        items = sorted(sample_pairs.items())
        for start in range(0, len(items), 250):
            tree = tree.update(puts=dict(items[start : start + 250]))
        assert tree.root == _reference(store, sample_pairs).root

    def test_shrink_to_empty(self, store, small_pairs):
        tree = _reference(store, small_pairs)
        tree = tree.update(deletes=list(small_pairs))
        assert len(tree) == 0
        assert tree.root == PosTree.empty(store).root

    def test_replace_everything(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        replacement = {b"x%04d" % i: b"y" for i in range(500)}
        tree = tree.update(puts=replacement, deletes=list(sample_pairs))
        assert tree.root == _reference(store, replacement).root

    def test_non_bytes_rejected(self, store, small_pairs):
        tree = _reference(store, small_pairs)
        with pytest.raises(TypeError):
            tree.update(puts={"str-key": b"v"})  # type: ignore[dict-item]
        with pytest.raises(TypeError):
            tree.update(puts={b"k": "str-value"})  # type: ignore[dict-item]


class TestEditEfficiency:
    def test_point_edit_dirties_few_pages(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        edited = tree.put(sorted(sample_pairs)[1000], b"dirty")
        new_pages = edited.page_uids() - tree.page_uids()
        # One leaf + its root path (+ occasional boundary neighbour).
        assert len(new_pages) <= tree.height() + 3

    def test_point_edit_chunk_writes_bounded(self, store, sample_pairs):
        tree = _reference(store, sample_pairs)
        before = store.stats.snapshot()
        tree.put(sorted(sample_pairs)[1500], b"x")
        delta = store.stats.delta(before)
        assert delta.puts_new <= tree.height() + 3

    def test_height_grows_and_shrinks(self, store):
        tree = PosTree.empty(store)
        assert tree.height() == 0
        big = {b"g%05d" % i: b"v" * 20 for i in range(3000)}
        tree = tree.update(puts=big)
        assert tree.height() >= 1
        tree = tree.update(deletes=list(big)[:-5])
        assert len(tree) == 5
        survivors = {k: v for k, v in big.items() if tree.get(k) is not None}
        reference = PosTree.from_pairs(store, survivors.items())
        assert tree.root == reference.root
        assert tree.height() == reference.height() == 0
